//! Shape checks for the figure data: the bimodal variability split of
//! Figure 2 and the signature-vs-measurement agreement of Figure 3.

use catalyze::report;
use catalyze_bench::{Harness, Scale};

#[test]
fn fig2_branch_variabilities_are_bimodal_around_tau() {
    let h = Harness::new(Scale::Fast);
    let d = h.branch().unwrap();
    let sorted = d.analysis.noise.sorted_variabilities();
    assert!(sorted.len() > 40, "enough non-discarded events plotted");
    let tau = d.analysis.config.tau;
    // A zero-noise cluster well below tau...
    let below = sorted.iter().filter(|&&v| v <= tau).count();
    assert!(below >= 5, "zero-noise cluster missing ({below})");
    for &v in sorted.iter().take(below) {
        assert!(v < 1e-12, "the clean cluster sits at ~0, got {v}");
    }
    // ...and a noisy tail above it, with a clean gap around tau (on this
    // inventory the quietest noisy counters sit at ~1e-8, so any tau in
    // [1e-12, 1e-9] separates the clusters unambiguously).
    let above = sorted.iter().filter(|&&v| v > 1e-9).count();
    assert_eq!(below + above, sorted.len(), "no events inside the gap around tau");
    assert!(above >= 10, "noisy tail missing");
}

#[test]
fn fig2_cache_variabilities_are_messier() {
    let h = Harness::new(Scale::Fast);
    let d = h.dcache().unwrap();
    let sorted = d.analysis.noise.sorted_variabilities();
    // Cache events populate the middle ground (no clean gap) — the reason
    // the paper needs the lenient tau = 1e-1 here.
    let mid = sorted.iter().filter(|&&v| v > 1e-12 && v < 1e-1).count();
    assert!(mid >= 10, "expected mid-range variabilities, got {mid}");
}

#[test]
fn fig2_data_format() {
    let h = Harness::new(Scale::Fast);
    let d = h.branch().unwrap();
    let data = report::figure2_data(&d.analysis.noise);
    let lines: Vec<&str> = data.lines().collect();
    assert!(lines[0].starts_with('#'));
    let fields: Vec<&str> = lines[1].split_whitespace().collect();
    assert_eq!(fields.len(), 2);
    fields[1].parse::<f64>().unwrap();
}

#[test]
fn fig3_rounded_combination_tracks_signature() {
    let h = Harness::new(Scale::Fast);
    let d = h.dcache().unwrap();
    for sig in &d.signatures {
        let data = report::figure3_data(&d.analysis, &d.basis, sig, &d.measurements.point_labels);
        for line in data.lines().filter(|l| !l.starts_with('#')) {
            let f: Vec<&str> = line.split_whitespace().collect();
            let signature: f64 = f[2].parse().unwrap();
            let raw: f64 = f[3].parse().unwrap();
            let rounded: f64 = f[4].parse().unwrap();
            assert!(
                (raw - signature).abs() < 0.08,
                "{}: raw combination {raw} vs signature {signature}",
                sig.name
            );
            assert!(
                (rounded - signature).abs() < 0.05,
                "{}: rounded combination {rounded} vs signature {signature}",
                sig.name
            );
        }
    }
}

#[test]
fn fig3_signature_curves_match_regions() {
    // The L1-hits signature must be 1 on L1-resident points and 0 elsewhere.
    let h = Harness::new(Scale::Fast);
    let d = h.dcache().unwrap();
    let sig = d.signatures.iter().find(|s| s.name == "L1 Hits.").unwrap();
    let curve = d.basis.matrix.matvec(&sig.coefficients).unwrap();
    for (p, label) in d.measurements.point_labels.iter().enumerate() {
        let expected = if label.ends_with("/L1") { 1.0 } else { 0.0 };
        assert_eq!(curve[p], expected, "{label}");
    }
}
