//! Portability across architectures — the paper's core premise. The same
//! benchmarks and the same pipeline run against a Zen-like event inventory
//! whose FP counters count *operations with no precision split* (§III-B:
//! "several AMD processors do not offer different events for strictly
//! single-precision, or strictly double-precision instructions") and whose
//! branch family lacks a direct taken-conditional event.
//!
//! The pipeline must give the *per-architecture correct* answers: metrics
//! composable on the SPR-like machine become non-composable here and vice
//! versa, with no configuration change beyond the event inventory.

use catalyze::basis::{self, Basis};
use catalyze::pipeline::{AnalysisConfig, AnalysisReport, AnalysisRequest};
use catalyze::signature::{self, MetricSignature};
use catalyze_cat::{measure_branch, measure_cpu_flops, MeasurementSet, RunnerConfig};
use catalyze_sim::zen_like;

fn cfg() -> RunnerConfig {
    let mut c = RunnerConfig::fast_test();
    c.flops_trips = 512;
    c.branch_iterations = 1024;
    c
}

/// Runs one Zen-domain analysis over `ms` via the request builder.
fn run_request(
    domain: &str,
    ms: &MeasurementSet,
    basis: &Basis,
    signatures: &[MetricSignature],
    config: AnalysisConfig,
) -> AnalysisReport {
    AnalysisRequest::new()
        .domain(domain)
        .events(&ms.events)
        .runs(&ms.runs)
        .basis(basis)
        .signatures(signatures)
        .config(config)
        .run()
        .unwrap()
}

#[test]
fn per_precision_metrics_not_composable_on_zen() {
    let set = zen_like();
    let ms = measure_cpu_flops(&set, &cfg(), &catalyze_obs::NoopObserver);
    let mut signatures = signature::cpu_flops_signatures();
    signatures.push(signature::all_fp_ops_signature());
    let report = run_request(
        "cpu-flops/zen",
        &ms,
        &basis::cpu_flops_basis(),
        &signatures,
        AnalysisConfig::cpu_flops(),
    );

    // The selection comes from the RETIRED_SSE_AVX_FLOPS family.
    assert!(!report.selection.events.is_empty());
    for e in &report.selection.events {
        assert!(e.name.starts_with("RETIRED_SSE_AVX_FLOPS"), "unexpected selection {}", e.name);
    }

    // Per-precision metrics cannot be composed: the hardware merges
    // precisions.
    for name in ["SP Ops.", "DP Ops.", "SP Instrs.", "DP Instrs."] {
        let m = report.metric(name).unwrap();
        assert!(m.error > 0.05, "{name} must be non-composable on Zen-like, error {}", m.error);
    }

    // The precision-agnostic total IS composable — as 1 x ANY (or the
    // equivalent class-event combination).
    let all = report.metric("All FP Ops.").unwrap();
    assert!(all.error < 1e-10, "All FP Ops error {}", all.error);
}

#[test]
fn branch_metrics_use_different_combinations_on_zen() {
    let set = zen_like();
    let ms = measure_branch(&set, &cfg(), &catalyze_obs::NoopObserver);
    let report = run_request(
        "branch/zen",
        &ms,
        &basis::branch_basis(),
        &signature::branch_signatures(),
        AnalysisConfig::branch(),
    );

    let coef = |m: &catalyze::DefinedMetric, ev: &str| {
        m.events.iter().position(|e| e == ev).map(|i| m.coefficients[i]).unwrap_or(0.0)
    };

    // Taken conditional branches: no direct event — composed as
    // TKN - BRN + COND (all-taken minus unconditional).
    let taken = report.metric("Conditional Branches Taken").unwrap();
    assert!(taken.error < 1e-8, "error {}", taken.error);
    assert!((coef(taken, "EX_RET_BRN_TKN") - 1.0).abs() < 1e-8, "{:?}", taken.coefficients);
    assert!((coef(taken, "EX_RET_BRN") + 1.0).abs() < 1e-8);
    assert!((coef(taken, "EX_RET_COND") - 1.0).abs() < 1e-8);

    // Unconditional = BRN - COND.
    let uncond = report.metric("Unconditional Branches").unwrap();
    assert!(uncond.error < 1e-8);
    assert!((coef(uncond, "EX_RET_BRN") - 1.0).abs() < 1e-8);
    assert!((coef(uncond, "EX_RET_COND") + 1.0).abs() < 1e-8);

    // Mispredicted: direct.
    let misp = report.metric("Mispredicted Branches").unwrap();
    assert!(misp.error < 1e-8);
    assert!((coef(misp, "EX_RET_BRN_MISP") - 1.0).abs() < 1e-8);

    // Executed: still not composable anywhere.
    let ex = report.metric("Conditional Branches Executed").unwrap();
    assert!((ex.error - 1.0).abs() < 1e-8);
}

#[test]
fn zen_flop_events_survive_noise_and_representation() {
    let set = zen_like();
    let ms = measure_cpu_flops(&set, &cfg(), &catalyze_obs::NoopObserver);
    let report = run_request(
        "cpu-flops/zen",
        &ms,
        &basis::cpu_flops_basis(),
        &signature::cpu_flops_signatures(),
        AnalysisConfig::cpu_flops(),
    );
    let kept: Vec<&str> = report.representation.kept.iter().map(|e| e.name.as_str()).collect();
    for name in [
        "RETIRED_SSE_AVX_FLOPS:ADD_SUB_FLOPS",
        "RETIRED_SSE_AVX_FLOPS:MULT_FLOPS",
        "RETIRED_SSE_AVX_FLOPS:MAC_FLOPS",
        "RETIRED_SSE_AVX_FLOPS:ANY",
    ] {
        assert!(kept.contains(&name), "{name} missing from representation; kept {kept:?}");
    }
}

#[test]
fn zen_cache_metrics_compose_from_amd_events() {
    // The cache story ports too: AMD has no load-retirement L1-hit event,
    // so L1 hits compose as `LS_DC_ACCESSES − LS_MAB_ALLOC` (accesses minus
    // miss-buffer allocations).
    use catalyze::basis::CacheRegion;
    use catalyze_cat::{dcache, measure_dcache};

    let set = zen_like();
    let cfg = cfg();
    let ms = measure_dcache(&set, &cfg, &catalyze_obs::NoopObserver);
    let regions: Vec<CacheRegion> = dcache::point_regions(&cfg.core.hierarchy)
        .into_iter()
        .map(|r| match r {
            dcache::Region::L1 => CacheRegion::L1,
            dcache::Region::L2 => CacheRegion::L2,
            dcache::Region::L3 => CacheRegion::L3,
            dcache::Region::Memory => CacheRegion::Memory,
        })
        .collect();
    let report = run_request(
        "dcache/zen",
        &ms,
        &basis::dcache_basis(&regions),
        &signature::dcache_signatures(),
        AnalysisConfig::dcache(),
    );
    assert_eq!(report.selection.events.len(), 4, "{:?}", report.selection.names());

    for m in &report.metrics {
        assert!(m.error < 1e-3, "{}: error {}", m.metric, m.error);
    }
    // L1 hits = (a loads counter) − (the miss-buffer counter): AMD has no
    // direct L1-hit event, so the combination must subtract. Which of the
    // two loads-counting events wins the tie-break is immaterial.
    let hits = report.metric("L1 Hits").unwrap();
    let loads_coef = hits
        .events
        .iter()
        .zip(&hits.coefficients)
        .find(|(e, _)| {
            e.as_str() == "LS_DC_ACCESSES:ALL" || e.as_str() == "LS_DISPATCH:LD_DISPATCH"
        })
        .map(|(_, &c)| c)
        .expect("a loads counter is selected");
    let mab_coef = hits
        .events
        .iter()
        .zip(&hits.coefficients)
        .find(|(e, _)| e.as_str() == "LS_MAB_ALLOC:LOADS")
        .map(|(_, &c)| c)
        .expect("the miss-buffer counter is selected");
    assert!(loads_coef > 0.9, "{:?} {:?}", hits.events, hits.coefficients);
    assert!(mab_coef < -0.9, "{:?} {:?}", hits.events, hits.coefficients);
}
