//! `SimRequest` end-to-end guarantees:
//!
//! * the unified builder produces byte-identical `MeasurementSet`s to the
//!   deprecated `run_*` / `run_*_obs` shims it replaced, for all six
//!   domains;
//! * the parallel `Replay` engine matches the sequential `Direct`
//!   reference engine through the public API;
//! * the validating `RunnerConfig` builder round-trips into requests.

#![allow(deprecated)]

use catalyze_cat::{
    measure_dcache_threads, run_branch, run_branch_obs, run_cpu_flops, run_cpu_flops_obs,
    run_dcache, run_dcache_obs, run_dcache_per_thread, run_dstore, run_dstore_obs, run_dtlb,
    run_dtlb_obs, run_gpu_flops, run_gpu_flops_obs, Domain, MeasurementSet, RunnerConfig,
    RunnerConfigBuilder, SimEngine, SimRequest,
};
use catalyze_obs::NoopObserver;
use catalyze_sim::cache::{CacheConfig, ReplacementPolicy};
use catalyze_sim::hierarchy::HierarchyConfig;
use catalyze_sim::{mi250x_like, sapphire_rapids_like};

fn request(domain: Domain, cfg: &RunnerConfig) -> MeasurementSet {
    let cpu = sapphire_rapids_like();
    let gpu = mi250x_like(cfg.gpu_devices);
    let req = SimRequest::new().domain(domain).config(cfg);
    let req = if domain.is_gpu() { req.gpu_events(&gpu) } else { req.events(&cpu) };
    req.run().expect("valid request")
}

fn bytes(ms: &MeasurementSet) -> Vec<u8> {
    serde_json::to_string(ms).expect("measurement sets serialize").into_bytes()
}

#[test]
fn request_matches_legacy_shims_for_all_six_domains() {
    let cpu = sapphire_rapids_like();
    let cfg = RunnerConfig::fast_test();
    let gpu = mi250x_like(cfg.gpu_devices);
    let legacy: [(Domain, MeasurementSet); 6] = [
        (Domain::CpuFlops, run_cpu_flops(&cpu, &cfg)),
        (Domain::Branch, run_branch(&cpu, &cfg)),
        (Domain::Dcache, run_dcache(&cpu, &cfg)),
        (Domain::Dtlb, run_dtlb(&cpu, &cfg)),
        (Domain::Dstore, run_dstore(&cpu, &cfg)),
        (Domain::GpuFlops, run_gpu_flops(&gpu, &cfg)),
    ];
    for (domain, shim) in &legacy {
        let new = request(*domain, &cfg);
        assert_eq!(bytes(&new), bytes(shim), "{domain}: SimRequest differs from legacy shim");
    }
}

#[test]
fn observer_shims_delegate_to_the_same_runners() {
    let cpu = sapphire_rapids_like();
    let cfg = RunnerConfig::fast_test();
    let gpu = mi250x_like(cfg.gpu_devices);
    let obs = &NoopObserver;
    let legacy: [(Domain, MeasurementSet); 6] = [
        (Domain::CpuFlops, run_cpu_flops_obs(&cpu, &cfg, obs)),
        (Domain::Branch, run_branch_obs(&cpu, &cfg, obs)),
        (Domain::Dcache, run_dcache_obs(&cpu, &cfg, obs)),
        (Domain::Dtlb, run_dtlb_obs(&cpu, &cfg, obs)),
        (Domain::Dstore, run_dstore_obs(&cpu, &cfg, obs)),
        (Domain::GpuFlops, run_gpu_flops_obs(&gpu, &cfg, obs)),
    ];
    for (domain, shim) in &legacy {
        let new = request(*domain, &cfg);
        assert_eq!(bytes(&new), bytes(shim), "{domain}: SimRequest differs from _obs shim");
    }
}

#[test]
fn per_thread_shim_matches_measure_dcache_threads() {
    let cpu = sapphire_rapids_like();
    let cfg = RunnerConfig::fast_test();
    let shim = run_dcache_per_thread(&cpu, &cfg);
    let new = measure_dcache_threads(&cpu, &cfg, &NoopObserver);
    assert_eq!(shim.len(), new.len());
    for (a, b) in shim.iter().zip(&new) {
        assert_eq!(bytes(a), bytes(b));
    }
}

#[test]
fn parallel_replay_engine_matches_direct_reference_byte_for_byte() {
    let cfg = RunnerConfig::fast_test();
    let cpu = sapphire_rapids_like();
    for domain in [Domain::CpuFlops, Domain::Branch, Domain::Dcache, Domain::Dtlb, Domain::Dstore] {
        let direct = SimRequest::new()
            .domain(domain)
            .events(&cpu)
            .config(&cfg)
            .engine(SimEngine::Direct)
            .run()
            .expect("valid request");
        let replay = SimRequest::new()
            .domain(domain)
            .events(&cpu)
            .config(&cfg)
            .engine(SimEngine::Replay)
            .run()
            .expect("valid request");
        assert_eq!(bytes(&direct), bytes(&replay), "{domain}: engines disagree");
    }
}

#[test]
fn replay_engine_matches_direct_across_policies_and_prefetch() {
    // The stream fast path must stay byte-identical to the reference
    // engine on every robustness-sweep configuration — tree pseudo-LRU,
    // random replacement, and the next-line prefetcher — not just the
    // true-LRU default it was first built for.
    let cpu = sapphire_rapids_like();
    let policies = [ReplacementPolicy::Lru, ReplacementPolicy::TreePlru, ReplacementPolicy::Random];
    for policy in policies {
        for prefetch in [false, true] {
            let mut cfg = RunnerConfig::fast_test();
            let mk = |size: u64, ways: u32| CacheConfig::with_policy(size, 64, ways, policy);
            cfg.core.hierarchy = HierarchyConfig {
                l1: mk(16 * 1024, 8),
                l2: mk(128 * 1024, 8),
                l3: mk(1024 * 1024, 16),
                prefetch_next_line: prefetch,
            };
            assert!(cfg.core.hierarchy.fast_path_eligible().is_ok());
            for domain in [Domain::Dcache, Domain::Dstore] {
                let run = |engine: SimEngine| {
                    SimRequest::new()
                        .domain(domain)
                        .events(&cpu)
                        .config(&cfg)
                        .engine(engine)
                        .run()
                        .expect("valid request")
                };
                assert_eq!(
                    bytes(&run(SimEngine::Direct)),
                    bytes(&run(SimEngine::Replay)),
                    "{domain}: engines disagree under {policy:?} prefetch={prefetch}"
                );
            }
        }
    }
}

#[test]
fn config_builder_feeds_requests() {
    let cpu = sapphire_rapids_like();
    let builder: RunnerConfigBuilder =
        RunnerConfig::builder().repetitions(2).branch_iterations(128).dcache_threads(1);
    let cfg = builder.build().expect("valid config");
    let ms = SimRequest::new()
        .domain(Domain::Branch)
        .events(&cpu)
        .config(&cfg)
        .run()
        .expect("valid request");
    assert_eq!(ms.num_runs(), 2);
    assert!(RunnerConfig::builder().repetitions(0).build().is_err());
}
