//! Determinism guarantees: identical configurations must reproduce every
//! measurement and every analysis artifact bit-for-bit — the property that
//! makes the `repro` harness trustworthy.

use catalyze::basis;
use catalyze::pipeline::{AnalysisConfig, AnalysisRequest};
use catalyze::signature;
use catalyze_cat::{measure_branch, measure_cpu_flops, measure_gpu_flops, RunnerConfig};
use catalyze_sim::{mi250x_like, sapphire_rapids_like};

fn cfg() -> RunnerConfig {
    let mut c = RunnerConfig::fast_test();
    c.flops_trips = 128;
    c.branch_iterations = 256;
    c
}

#[test]
fn branch_measurements_bitwise_reproducible() {
    let set = sapphire_rapids_like();
    let a = measure_branch(&set, &cfg(), &catalyze_obs::NoopObserver);
    let b = measure_branch(&set, &cfg(), &catalyze_obs::NoopObserver);
    assert_eq!(a, b);
}

#[test]
fn cpu_flops_measurements_bitwise_reproducible() {
    let set = sapphire_rapids_like();
    let a = measure_cpu_flops(&set, &cfg(), &catalyze_obs::NoopObserver);
    let b = measure_cpu_flops(&set, &cfg(), &catalyze_obs::NoopObserver);
    assert_eq!(a, b);
}

#[test]
fn gpu_measurements_bitwise_reproducible() {
    let set = mi250x_like(2);
    let a = measure_gpu_flops(&set, &cfg(), &catalyze_obs::NoopObserver);
    let b = measure_gpu_flops(&set, &cfg(), &catalyze_obs::NoopObserver);
    assert_eq!(a, b);
}

#[test]
fn different_pmu_seed_changes_noisy_reads_only() {
    let set = sapphire_rapids_like();
    let mut c1 = cfg();
    let mut c2 = cfg();
    c1.pmu.seed = 1;
    c2.pmu.seed = 2;
    let a = measure_branch(&set, &c1, &catalyze_obs::NoopObserver);
    let b = measure_branch(&set, &c2, &catalyze_obs::NoopObserver);
    // Architectural counters identical...
    let cond = a.event_index("BR_INST_RETIRED:COND").unwrap();
    assert_eq!(a.runs[0][cond], b.runs[0][cond]);
    // ...noisy ones differ.
    let cycles = a.event_index("CPU_CLK_UNHALTED:THREAD").unwrap();
    assert_ne!(a.runs[0][cycles], b.runs[0][cycles]);
}

#[test]
fn analysis_is_a_pure_function_of_measurements() {
    let set = sapphire_rapids_like();
    let ms = measure_branch(&set, &cfg(), &catalyze_obs::NoopObserver);
    let basis = basis::branch_basis();
    let signatures = signature::branch_signatures();
    let run = || {
        AnalysisRequest::new()
            .domain("branch")
            .events(&ms.events)
            .runs(&ms.runs)
            .basis(&basis)
            .signatures(&signatures)
            .config(AnalysisConfig::branch())
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.selection.events.iter().map(|e| &e.name).collect::<Vec<_>>(),
        b.selection.events.iter().map(|e| &e.name).collect::<Vec<_>>()
    );
    for (x, y) in a.metrics.iter().zip(&b.metrics) {
        assert_eq!(x.coefficients, y.coefficients, "{}", x.metric);
        assert_eq!(x.error, y.error);
    }
}
