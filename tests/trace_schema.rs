//! Schema and non-perturbation guarantees of the observability layer over a
//! real end-to-end analysis: the trace JSON keeps its documented shape
//! (version, span nesting, reconciling funnel, linalg counters), and
//! observing a run never changes its result.

use catalyze::pipeline::AnalysisRequest;
use catalyze_bench::{Harness, Scale};
use catalyze_obs::TraceCollector;
use serde_json::Value;

fn traced_branch() -> (Value, String) {
    let h = Harness::new(Scale::Fast);
    let trace = TraceCollector::new();
    let d = h.domain_obs("branch", &trace).unwrap().unwrap();
    let report = serde_json::to_string(&d.analysis).unwrap();
    (serde_json::from_str(&trace.render_json()).unwrap(), report)
}

#[test]
fn trace_json_has_versioned_nested_spans() {
    let (trace, _) = traced_branch();
    assert_eq!(trace["version"].as_u64(), Some(1));

    let roots = trace["spans"].as_array().unwrap();
    // Two top-level spans: the benchmark run and the analysis.
    let names: Vec<&str> = roots.iter().map(|s| s["name"].as_str().unwrap()).collect();
    assert_eq!(names, ["run/branch", "analyze/branch"]);

    // The four pipeline stages nest under the analysis root, in order.
    let analyze = &roots[1];
    let stages: Vec<&str> = analyze["children"]
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s["name"].as_str().unwrap())
        .collect();
    assert_eq!(stages, ["noise", "represent", "select", "define"]);

    // Every span closed: durations are concrete numbers, and children start
    // no earlier than their parent.
    fn check(span: &Value) {
        assert!(span["duration_ns"].as_u64().is_some(), "open span {span:?}");
        let start = span["start_ns"].as_u64().unwrap();
        for child in span["children"].as_array().unwrap() {
            assert!(child["start_ns"].as_u64().unwrap() >= start);
            check(child);
        }
    }
    for span in roots {
        check(span);
    }
}

#[test]
fn trace_funnel_reconciles_and_counters_cover_linalg() {
    let (trace, _) = traced_branch();

    let funnel = trace["funnel"].as_array().unwrap();
    let stages: Vec<&str> = funnel.iter().map(|f| f["stage"].as_str().unwrap()).collect();
    assert_eq!(stages, ["noise", "represent", "select", "define"]);
    for f in funnel {
        let events_in = f["in"].as_u64().unwrap();
        let kept = f["kept"].as_u64().unwrap();
        let dropped: u64 =
            f["dropped"].as_array().unwrap().iter().map(|d| d["count"].as_u64().unwrap()).sum();
        assert_eq!(kept + dropped, events_in, "unreconciled stage {f:?}");
    }

    let counters = trace["counters"].as_array().unwrap();
    let get = |name: &str| {
        counters.iter().find(|c| c["name"].as_str() == Some(name)).and_then(|c| c["value"].as_u64())
    };
    assert!(get("linalg.lstsq_solves").unwrap() > 0);
    assert!(get("linalg.qr_factorizations").unwrap() > 0);
    assert_eq!(get("linalg.spqrcp_runs"), Some(1));
    // Stage-attributed solve counts cannot exceed the pipeline total.
    let total = get("linalg.lstsq_solves").unwrap();
    let staged = get("represent.lstsq_solves").unwrap() + get("define.lstsq_solves").unwrap();
    assert!(staged <= total, "staged {staged} vs total {total}");
    // Factorization reuse: each hot stage factors its matrix and computes
    // its spectral norm exactly once, no matter how many systems it solves.
    assert_eq!(get("represent.qr_factorizations"), Some(1));
    assert_eq!(get("represent.spectral_norms"), Some(1));
    assert_eq!(get("define.qr_factorizations"), Some(1));
    assert_eq!(get("define.spectral_norms"), Some(1));
    // Every solve past each stage's first reused a factorization and a
    // cached norm.
    let solves = staged;
    assert!(get("linalg.qr_factorizations_avoided").unwrap() >= solves - 2);
    assert!(get("linalg.spectral_norms_cached").unwrap() >= solves - 2);

    // The simulator runner reports its engine choice and stream-memo
    // bookkeeping as counters on every CPU domain run.
    assert_eq!(get("runner.engine"), Some(1), "fast-test config must take the replay fast path");
    assert!(get("stream.memo_hits").is_some());
    assert!(get("stream.memo_misses").is_some());
    assert!(get("stream.passes_collapsed").is_some());
}

#[test]
fn cache_domain_traces_show_stream_collapse_counters() {
    // The dcache sweep drives long steady-state streams, so its trace must
    // show actual collapse work: passes skipped via canonical fixed points
    // and warmup->measure reuse through the keyed stream memo.
    let h = Harness::new(Scale::Fast);
    let trace = TraceCollector::new();
    h.domain_obs("dcache", &trace).unwrap().unwrap();
    let json: Value = serde_json::from_str(&trace.render_json()).unwrap();
    let counters = json["counters"].as_array().unwrap();
    let get = |name: &str| {
        counters.iter().find(|c| c["name"].as_str() == Some(name)).and_then(|c| c["value"].as_u64())
    };
    assert_eq!(get("runner.engine"), Some(1));
    assert!(get("stream.passes_collapsed").unwrap() > 0, "steady passes must collapse");
    assert!(get("stream.memo_hits").unwrap() > 0, "measure phase must reuse warmup fixed points");
}

#[test]
fn noop_observed_runs_are_byte_identical() {
    let h = Harness::new(Scale::Fast);
    let ms = h.measure("branch", &catalyze_obs::NoopObserver).unwrap();
    let (basis, signatures, config) = h.domain_inputs("branch").unwrap();
    let run =
        |request: AnalysisRequest<'_>| serde_json::to_string(&request.run().unwrap()).unwrap();
    let base = AnalysisRequest::new()
        .domain("branch")
        .events(&ms.events)
        .runs(&ms.runs)
        .basis(&basis)
        .signatures(&signatures)
        .config(config);

    // Default observer (noop), explicit noop, and a live trace collector
    // must all produce byte-identical reports.
    let plain = run(base);
    let noop = run(base.observer(&catalyze_obs::NOOP));
    let trace = TraceCollector::new();
    let traced = run(base.observer(&trace));
    assert_eq!(plain, noop);
    assert_eq!(plain, traced);
    assert!(trace.span_count() >= 5, "got {}", trace.span_count());
}
