//! End-to-end checks for the data-TLB extension domain — the methodology
//! applied to a hardware attribute beyond the paper's four, per its stated
//! future work.

use catalyze_bench::{Harness, Scale};

#[test]
fn dtlb_pipeline_composes_tlb_metrics() {
    let h = Harness::new(Scale::Fast);
    let d = h.dtlb().unwrap();

    // The benchmark: 6 points, 3 per region.
    assert_eq!(d.measurements.num_points(), 8);
    assert_eq!(d.basis.dim(), 2);

    // Selection: a page-walk counter plus a load counter (no raw event
    // counts TLB hits directly on this machine).
    let names: Vec<&str> = d.analysis.selection.names();
    assert_eq!(names.len(), 2, "selection {names:?}");
    assert!(
        names.iter().any(|n| n.starts_with("DTLB_LOAD_MISSES")),
        "a walk counter must be selected: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("MEM_INST_RETIRED")),
        "a load counter must be selected: {names:?}"
    );

    // All three metrics compose: misses directly, hits as loads - walks.
    for m in &d.analysis.metrics {
        assert!(m.error < 1e-3, "{}: error {}", m.metric, m.error);
    }
    let hits = d.analysis.metric("TLB Hits").unwrap();
    let walk_idx = hits.events.iter().position(|e| e.starts_with("DTLB")).unwrap();
    let load_idx = hits.events.iter().position(|e| e.starts_with("MEM_INST")).unwrap();
    assert!(hits.coefficients[walk_idx] < -0.9, "hits subtract walks: {:?}", hits.coefficients);
    assert!(hits.coefficients[load_idx] > 0.9, "hits add loads: {:?}", hits.coefficients);
}

#[test]
fn dtlb_measurements_have_clean_regions() {
    let h = Harness::new(Scale::Fast);
    let ms = catalyze_cat::measure_dtlb(&h.cpu_events, &h.cfg, &catalyze_obs::NoopObserver);
    ms.validate().unwrap();
    let walks = ms.event_index("DTLB_LOAD_MISSES:MISS_CAUSES_A_WALK").unwrap();
    let v = ms.mean_vector(walks);
    for (p, &walks_per_access) in v.iter().enumerate().take(5) {
        assert!(walks_per_access < 0.01, "hit-region point {p} shows walks: {walks_per_access}");
    }
    for (p, &walks_per_access) in v.iter().enumerate().take(8).skip(5) {
        assert!(walks_per_access > 0.9, "miss-region point {p} lacks walks: {walks_per_access}");
    }
}

#[test]
fn dtlb_cache_events_do_not_masquerade() {
    // The TLB sweep also moves the working set through cache levels; the
    // cache events must be rejected by the representation stage (their
    // curves do not match the 2-dimensional TLB basis), not selected.
    let h = Harness::new(Scale::Fast);
    let d = h.dtlb().unwrap();
    for e in &d.analysis.selection.events {
        assert!(
            !e.name.starts_with("MEM_LOAD_RETIRED") && !e.name.starts_with("L2_RQSTS"),
            "cache event selected in TLB domain: {}",
            e.name
        );
    }
}
