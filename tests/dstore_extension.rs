//! End-to-end checks for the store-path (write/RFO) extension domain.

use catalyze_bench::{Harness, Scale};

#[test]
fn dstore_pipeline_composes_write_metrics() {
    let h = Harness::new(Scale::Fast);
    let d = h.dstore().unwrap();

    assert_eq!(d.measurements.num_points(), 8);
    assert_eq!(d.basis.dim(), 4);

    // Selection: the two RFO events plus the store counter — no per-level
    // store-retirement events exist on this machine.
    let names = d.analysis.selection.names();
    assert_eq!(names.len(), 3, "{names:?}");
    assert!(names.contains(&"L2_RQSTS:RFO_HIT"));
    assert!(names.contains(&"MEM_INST_RETIRED:ALL_STORES"));
    assert!(
        names.contains(&"L2_RQSTS:ALL_RFO") || names.contains(&"L2_RQSTS:RFO_MISS"),
        "{names:?}"
    );

    // Composable write metrics.
    for name in [
        "L1 Store Misses (RFOs).",
        "L1 Store Hits.",
        "All Stores.",
        "L2 Store Hits.",
        "L2 Store Misses.",
    ] {
        let m = d.analysis.metric(name).unwrap();
        // The RFO events carry multiplicative observation noise with
        // sigma ~1e-2 and Scale::Fast takes the median of only three
        // repetitions, so a few-1e-3 backward error is statistically
        // expected; the non-composable contrast below sits near 1.0.
        assert!(m.error < 5e-3, "{name} error {}", m.error);
    }

    // L1 Store Hits = stores - RFOs: positive stores coefficient, negative
    // RFO coefficient.
    let hits = d.analysis.metric("L1 Store Hits").unwrap();
    let coef = |ev: &str| {
        hits.events.iter().position(|e| e == ev).map(|i| hits.coefficients[i]).unwrap_or(0.0)
    };
    assert!(coef("MEM_INST_RETIRED:ALL_STORES") > 0.9, "{:?}", hits.coefficients);
    assert!(coef("L2_RQSTS:ALL_RFO") < -0.9, "{:?}", hits.coefficients);

    // No event counts L3-level store hits: honestly non-composable.
    let l3 = d.analysis.metric("L3 Store Hits").unwrap();
    assert!(l3.error > 0.9, "L3 store hits must be non-composable, error {}", l3.error);
}

#[test]
fn dstore_sync_runner_matches_the_observed_variant() {
    // `measure_dstore` is a certified-deterministic entry point
    // (`// lint: contract(deterministic)`): two runs, and the observed
    // variant under a noop observer, must agree bit for bit.
    let h = Harness::new(Scale::Fast);
    let first = catalyze_cat::measure_dstore(&h.cpu_events, &h.cfg, &catalyze_obs::NoopObserver);
    first.validate().unwrap();
    let second = catalyze_cat::measure_dstore(&h.cpu_events, &h.cfg, &catalyze_obs::NoopObserver);
    let observed = catalyze_cat::measure_dstore(&h.cpu_events, &h.cfg, &catalyze_obs::NoopObserver);
    assert_eq!(first, second, "repeated sync runs must be bit-identical");
    assert_eq!(first, observed, "observation must not perturb the measurements");
}

#[test]
fn dstore_load_events_stay_out() {
    // The store benchmark performs no loads; the load-side events must be
    // discarded as all-zero, never selected.
    let h = Harness::new(Scale::Fast);
    let d = h.dstore().unwrap();
    for e in &d.analysis.selection.events {
        assert!(
            !e.name.starts_with("MEM_LOAD_RETIRED"),
            "load event selected in store domain: {}",
            e.name
        );
    }
    let ms = &d.measurements;
    let l1h = ms.event_index("MEM_LOAD_RETIRED:L1_HIT").unwrap();
    assert!(ms.mean_vector(l1h).iter().all(|&v| v == 0.0));
}
