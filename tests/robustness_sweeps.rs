//! Robustness of the end-to-end conclusions to modeling choices the paper
//! has no control over on real hardware: the PMU noise seed (a different
//! "day" on the machine) and the caches' replacement policy.

use catalyze::basis::{self, CacheRegion};
use catalyze::pipeline::{AnalysisConfig, AnalysisRequest};
use catalyze::signature;
use catalyze_cat::{dcache, measure_branch, measure_dcache, RunnerConfig};
use catalyze_sim::cache::{CacheConfig, ReplacementPolicy};
use catalyze_sim::hierarchy::HierarchyConfig;
use catalyze_sim::sapphire_rapids_like;

fn fast() -> RunnerConfig {
    let mut c = RunnerConfig::fast_test();
    c.branch_iterations = 1024;
    c
}

#[test]
fn branch_selection_is_seed_invariant() {
    let set = sapphire_rapids_like();
    let mut selections = Vec::new();
    for seed in [1u64, 0xDEAD_BEEF, 42_424_242] {
        let mut cfg = fast();
        cfg.pmu.seed = seed;
        let ms = measure_branch(&set, &cfg, &catalyze_obs::NoopObserver);
        let basis = basis::branch_basis();
        let signatures = signature::branch_signatures();
        let report = AnalysisRequest::new()
            .domain("branch")
            .events(&ms.events)
            .runs(&ms.runs)
            .basis(&basis)
            .signatures(&signatures)
            .config(AnalysisConfig::branch())
            .run()
            .unwrap();
        let mut names: Vec<String> =
            report.selection.events.iter().map(|e| e.name.clone()).collect();
        names.sort();
        selections.push(names);
    }
    assert_eq!(selections[0], selections[1]);
    assert_eq!(selections[1], selections[2]);
    assert_eq!(selections[0].len(), 4);
}

fn dcache_report_under(policy: ReplacementPolicy) -> catalyze::AnalysisReport {
    let mut cfg = fast();
    let mk = |size: u64, ways: u32| CacheConfig::with_policy(size, 64, ways, policy);
    cfg.core.hierarchy = HierarchyConfig {
        l1: mk(16 * 1024, 8),
        l2: mk(128 * 1024, 8),
        l3: mk(1024 * 1024, 16),
        prefetch_next_line: false,
    };
    let set = sapphire_rapids_like();
    let ms = measure_dcache(&set, &cfg, &catalyze_obs::NoopObserver);
    let regions: Vec<CacheRegion> = dcache::point_regions(&cfg.core.hierarchy)
        .into_iter()
        .map(|r| match r {
            dcache::Region::L1 => CacheRegion::L1,
            dcache::Region::L2 => CacheRegion::L2,
            dcache::Region::L3 => CacheRegion::L3,
            dcache::Region::Memory => CacheRegion::Memory,
        })
        .collect();
    let basis = basis::dcache_basis(&regions);
    let signatures = signature::dcache_signatures();
    AnalysisRequest::new()
        .domain("dcache")
        .events(&ms.events)
        .runs(&ms.runs)
        .basis(&basis)
        .signatures(&signatures)
        .config(AnalysisConfig::dcache())
        .run()
        .unwrap()
}

fn sorted_selection(report: &catalyze::AnalysisReport) -> Vec<String> {
    let mut names: Vec<String> = report.selection.events.iter().map(|e| e.name.clone()).collect();
    names.sort();
    names
}

#[test]
fn dcache_selection_survives_pseudo_lru() {
    // Real hardware uses tree pseudo-LRU, not the true LRU the analysis was
    // calibrated on; the benchmark's working sets sit far from the
    // capacities, so the selected events must not change.
    let lru = dcache_report_under(ReplacementPolicy::Lru);
    let plru = dcache_report_under(ReplacementPolicy::TreePlru);
    assert_eq!(
        sorted_selection(&lru),
        sorted_selection(&plru),
        "pseudo-LRU must not change the selected events"
    );
}

#[test]
fn dcache_metrics_survive_random_replacement() {
    // Random replacement genuinely blurs the hit/miss steps (resident sets
    // self-evict), so the *specific* events chosen may shift toward
    // composite counters — but the methodology's conclusion must hold: a
    // full-rank selection exists and every cache metric still composes.
    let report = dcache_report_under(ReplacementPolicy::Random);
    assert_eq!(report.selection.events.len(), 4, "{:?}", sorted_selection(&report));
    for m in &report.metrics {
        assert!(
            m.error < 5e-2,
            "{} must remain composable under random replacement, error {}",
            m.metric,
            m.error
        );
    }
}
