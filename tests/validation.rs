//! The pay-off test: metric definitions produced by the *pipeline* (not
//! hand-written) must predict the simulator's architectural ground truth on
//! an independent mixed workload.

use catalyze_bench::{Harness, Scale};
use catalyze_cat::validate_presets;
use catalyze_events::Preset;

fn pipeline_presets(domain: &str, h: &Harness) -> Vec<Preset> {
    let d = h.domain(domain).expect("known domain").expect("domain analyzes");
    d.analysis.composable_metrics().iter().map(|m| m.to_preset(1e-6)).collect()
}

#[test]
fn cpu_flops_presets_predict_ground_truth() {
    let h = Harness::new(Scale::Fast);
    let presets = pipeline_presets("cpu-flops", &h);
    assert!(presets.len() >= 4, "SP/DP Instrs and Ops must be composable");
    let outcomes = validate_presets(&presets, &h.cpu_events, h.cfg.core, h.cfg.pmu, 99);
    assert!(outcomes.len() >= 4);
    for o in &outcomes {
        assert!(o.ground_truth > 0.0, "{} saw no activity", o.metric);
        assert!(
            o.relative_error < 1e-9,
            "{}: predicted {} vs truth {} (err {})",
            o.metric,
            o.predicted,
            o.ground_truth,
            o.relative_error
        );
        assert_eq!(o.missing_events, 0, "{}", o.metric);
    }
}

#[test]
fn branch_presets_predict_ground_truth() {
    let h = Harness::new(Scale::Fast);
    let presets = pipeline_presets("branch", &h);
    assert_eq!(presets.len(), 6, "six of seven branch metrics compose");
    let outcomes = validate_presets(&presets, &h.cpu_events, h.cfg.core, h.cfg.pmu, 77);
    assert_eq!(outcomes.len(), 6);
    for o in &outcomes {
        assert!(
            o.relative_error < 1e-9,
            "{}: predicted {} vs truth {} (err {})",
            o.metric,
            o.predicted,
            o.ground_truth,
            o.relative_error
        );
    }
}

#[test]
fn dcache_presets_predict_ground_truth_within_noise() {
    let h = Harness::new(Scale::Fast);
    let presets = pipeline_presets("dcache", &h);
    assert_eq!(presets.len(), 6);
    let outcomes = validate_presets(&presets, &h.cpu_events, h.cfg.core, h.cfg.pmu, 55);
    assert_eq!(outcomes.len(), 6);
    for o in &outcomes {
        // Cache events are noisy and the rounded coefficients carry a few
        // percent of slack; validation must still land within ~5 %.
        assert!(
            o.relative_error < 0.05,
            "{}: predicted {} vs truth {} (err {})",
            o.metric,
            o.predicted,
            o.ground_truth,
            o.relative_error
        );
    }
}

#[test]
fn gpu_presets_predict_ground_truth() {
    let h = Harness::new(Scale::Fast);
    let presets = pipeline_presets("gpu-flops", &h);
    // The four composable Table-VI metrics (Add and Sub + three All Ops).
    assert!(presets.len() >= 4, "got {}", presets.len());
    let outcomes = catalyze_cat::validate::validate_gpu_presets(
        &presets,
        &h.gpu_events,
        h.cfg.gpu_devices,
        h.cfg.pmu,
        88,
    );
    assert!(outcomes.len() >= 4);
    for o in &outcomes {
        assert!(o.ground_truth > 0.0, "{}", o.metric);
        assert!(
            o.relative_error < 1e-9,
            "{}: predicted {} vs truth {} (err {})",
            o.metric,
            o.predicted,
            o.ground_truth,
            o.relative_error
        );
    }
}

#[test]
fn validation_workload_differs_from_cat_kernels() {
    // Sanity: the validation workload exercises several attributes at once,
    // unlike any single CAT kernel.
    use catalyze_sim::{CoreConfig, Cpu, Precision};
    let mut cpu = Cpu::new(CoreConfig::default_sim());
    cpu.run(&catalyze_cat::validation_workload(1, 64));
    let s = cpu.stats();
    assert!(s.flops(Precision::Double) > 0);
    assert!(s.flops(Precision::Single) > 0);
    assert!(s.branch.mispredicted > 0);
    assert!(s.branch.uncond_retired > 0);
    assert!(s.loads > 0);
    assert!(s.int_total() > 0);
}
