//! Guards the structural alignment between the benchmark crate
//! (`catalyze-cat`) and the analysis crate (`catalyze`): the expectation
//! bases assume a specific kernel ordering and loop sizing, and these tests
//! fail loudly if either side drifts.

use catalyze::basis;
use catalyze_cat::{branch, flops_cpu, flops_gpu};

#[test]
fn cpu_flops_kernel_order_matches_basis_labels() {
    let labels = basis::cpu_flops_labels();
    let kernels = flops_cpu::kernel_space();
    assert_eq!(labels.len(), kernels.len());
    for (label, kernel) in labels.iter().zip(&kernels) {
        assert_eq!(label, &kernel.symbol(), "basis/kernel order drift");
    }
}

#[test]
fn cpu_flops_loop_sizes_match_basis_constants() {
    for k in flops_cpu::kernel_space() {
        let expected = if k.fma { basis::CPU_FLOPS_FMA_SIZES } else { basis::CPU_FLOPS_SIZES };
        let actual: Vec<f64> = k.loop_sizes().iter().map(|&v| v as f64).collect();
        assert_eq!(actual, expected.to_vec(), "{}", k.symbol());
    }
}

#[test]
fn cpu_flops_point_count_matches_basis() {
    assert_eq!(flops_cpu::point_labels().len(), basis::cpu_flops_basis().points());
}

#[test]
fn branch_expectations_match_basis_rows() {
    let b = basis::branch_basis();
    let kernels = branch::kernel_space();
    assert_eq!(kernels.len(), b.points());
    for (i, k) in kernels.iter().enumerate() {
        for (j, &v) in k.expectation.iter().enumerate() {
            assert_eq!(b.matrix[(i, j)], v, "kernel {} column {j}", k.name);
        }
    }
}

#[test]
fn gpu_kernel_order_matches_basis_labels() {
    let labels = basis::gpu_flops_labels();
    let kernels = flops_gpu::kernel_space();
    assert_eq!(labels.len(), kernels.len());
    for (label, kernel) in labels.iter().zip(&kernels) {
        assert_eq!(label, &kernel.symbol());
    }
}

#[test]
fn gpu_sizes_match_basis_constants() {
    let sizes: Vec<f64> = flops_gpu::SIZES.iter().map(|&v| v as f64).collect();
    assert_eq!(sizes, basis::GPU_FLOPS_SIZES.to_vec());
    assert_eq!(flops_gpu::point_labels().len(), basis::gpu_flops_basis().points());
}

#[test]
fn dcache_regions_produce_full_rank_basis() {
    use catalyze::basis::CacheRegion;
    use catalyze_sim::hierarchy::HierarchyConfig;
    let h = HierarchyConfig::default_sim();
    let regions: Vec<CacheRegion> = catalyze_cat::dcache::point_regions(&h)
        .into_iter()
        .map(|r| match r {
            catalyze_cat::dcache::Region::L1 => CacheRegion::L1,
            catalyze_cat::dcache::Region::L2 => CacheRegion::L2,
            catalyze_cat::dcache::Region::L3 => CacheRegion::L3,
            catalyze_cat::dcache::Region::Memory => CacheRegion::Memory,
        })
        .collect();
    let b = basis::dcache_basis(&regions);
    assert_eq!(b.points(), regions.len());
    let svd = catalyze_linalg::singular_values(&b.matrix).unwrap();
    assert_eq!(svd.rank(1e-10), 4, "all four cache expectations must be independent");
}
