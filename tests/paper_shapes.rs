//! End-to-end reproduction checks: run the CAT benchmarks on the simulated
//! platform, push the measurements through the full analysis pipeline, and
//! pin the *shapes* the paper reports — which events the specialized QRCP
//! selects per domain (§V), which metrics compose and which do not
//! (Tables V–VIII), and the characteristic failure errors (0.236, 0.414,
//! 1.0) that are analytic properties of the event semantics.

use catalyze::basis::{self, CacheRegion};
use catalyze::pipeline::{AnalysisConfig, AnalysisReport, AnalysisRequest};
use catalyze::signature;
use catalyze_cat::{
    dcache, measure_branch, measure_cpu_flops, measure_dcache, measure_gpu_flops, RunnerConfig,
};
use catalyze_sim::{mi250x_like, sapphire_rapids_like};

fn cfg() -> RunnerConfig {
    // Down-scaled but structurally identical to the full harness settings.
    let mut c = RunnerConfig::fast_test();
    c.repetitions = 3;
    c.flops_trips = 512;
    c.branch_iterations = 1024;
    c
}

fn regions(core: &catalyze_sim::CoreConfig) -> Vec<CacheRegion> {
    dcache::point_regions(&core.hierarchy)
        .into_iter()
        .map(|r| match r {
            dcache::Region::L1 => CacheRegion::L1,
            dcache::Region::L2 => CacheRegion::L2,
            dcache::Region::L3 => CacheRegion::L3,
            dcache::Region::Memory => CacheRegion::Memory,
        })
        .collect()
}

/// Runs one domain's pipeline over `ms` via the request builder.
fn run_request(
    domain: &str,
    ms: &catalyze_cat::MeasurementSet,
    basis: &basis::Basis,
    signatures: &[signature::MetricSignature],
    config: AnalysisConfig,
) -> AnalysisReport {
    AnalysisRequest::new()
        .domain(domain)
        .events(&ms.events)
        .runs(&ms.runs)
        .basis(basis)
        .signatures(signatures)
        .config(config)
        .run()
        .unwrap()
}

fn cpu_flops_report() -> AnalysisReport {
    let set = sapphire_rapids_like();
    let c = cfg();
    let ms = measure_cpu_flops(&set, &c, &catalyze_obs::NoopObserver);
    run_request(
        "cpu-flops",
        &ms,
        &basis::cpu_flops_basis(),
        &signature::cpu_flops_signatures(),
        AnalysisConfig::cpu_flops(),
    )
}

#[test]
fn cpu_flops_selection_matches_section_5a() {
    let report = cpu_flops_report();
    let mut selected: Vec<String> =
        report.selection.events.iter().map(|e| e.name.clone()).collect();
    selected.sort();
    let mut expected: Vec<String> = [
        "FP_ARITH_INST_RETIRED:SCALAR_SINGLE",
        "FP_ARITH_INST_RETIRED:SCALAR_DOUBLE",
        "FP_ARITH_INST_RETIRED:128B_PACKED_SINGLE",
        "FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE",
        "FP_ARITH_INST_RETIRED:256B_PACKED_SINGLE",
        "FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE",
        "FP_ARITH_INST_RETIRED:512B_PACKED_SINGLE",
        "FP_ARITH_INST_RETIRED:512B_PACKED_DOUBLE",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    expected.sort();
    assert_eq!(selected, expected, "QR must select exactly the 8 clean FP events");
}

#[test]
fn cpu_flops_metrics_match_table5() {
    let report = cpu_flops_report();
    // SP/DP Instrs and Ops compose with tiny error.
    for name in ["SP Instrs.", "SP Ops.", "DP Instrs.", "DP Ops."] {
        let m = report.metric(name).unwrap();
        assert!(m.error < 1e-10, "{name} error {}", m.error);
    }
    // DP Ops coefficients: 1x scalar, 2x 128, 4x 256, 8x 512 (Table V).
    let dp = report.metric("DP Ops.").unwrap();
    let coef = |ev: &str| {
        dp.events
            .iter()
            .position(|e| e == ev)
            .map(|i| dp.coefficients[i])
            .unwrap_or_else(|| panic!("{ev} not in selection"))
    };
    assert!((coef("FP_ARITH_INST_RETIRED:SCALAR_DOUBLE") - 1.0).abs() < 1e-9);
    assert!((coef("FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE") - 2.0).abs() < 1e-9);
    assert!((coef("FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE") - 4.0).abs() < 1e-9);
    assert!((coef("FP_ARITH_INST_RETIRED:512B_PACKED_DOUBLE") - 8.0).abs() < 1e-9);
    assert!(coef("FP_ARITH_INST_RETIRED:SCALAR_SINGLE").abs() < 1e-9);

    // FMA metrics: NOT composable — 0.8 coefficients, error 2.36e-1.
    for name in ["SP FMA Instrs.", "DP FMA Instrs."] {
        let m = report.metric(name).unwrap();
        assert!((m.error - 0.236).abs() < 0.01, "{name} error {}", m.error);
        let big: Vec<f64> = m.coefficients.iter().filter(|c| c.abs() > 1e-6).cloned().collect();
        assert_eq!(big.len(), 4, "{name}: four 0.8-coefficients");
        for c in big {
            assert!((c - 0.8).abs() < 1e-6, "{name} coefficient {c}");
        }
    }
}

#[test]
fn branch_selection_and_metrics_match_section_5c_and_table7() {
    let set = sapphire_rapids_like();
    let c = cfg();
    let ms = measure_branch(&set, &c, &catalyze_obs::NoopObserver);
    let report = run_request(
        "branch",
        &ms,
        &basis::branch_basis(),
        &signature::branch_signatures(),
        AnalysisConfig::branch(),
    );
    let mut selected: Vec<String> =
        report.selection.events.iter().map(|e| e.name.clone()).collect();
    selected.sort();
    let mut expected: Vec<String> = [
        "BR_MISP_RETIRED:ALL_BRANCHES",
        "BR_INST_RETIRED:COND",
        "BR_INST_RETIRED:COND_TAKEN",
        "BR_INST_RETIRED:ALL_BRANCHES",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    expected.sort();
    assert_eq!(selected, expected, "§V.C selection");

    // Six of seven metrics compose.
    for name in [
        "Unconditional Branches.",
        "Conditional Branches Taken.",
        "Conditional Branches Not Taken.",
        "Mispredicted Branches.",
        "Correctly Predicted Branches.",
        "Conditional Branches Retired.",
    ] {
        let m = report.metric(name).unwrap();
        assert!(m.error < 1e-8, "{name} error {}", m.error);
    }
    // Conditional Branches Executed cannot be composed: error 1.0.
    let ex = report.metric("Conditional Branches Executed").unwrap();
    assert!((ex.error - 1.0).abs() < 1e-8, "error {}", ex.error);

    // Unconditional = ALL_BRANCHES - COND (Table VII row 1).
    let uncond = report.metric("Unconditional").unwrap();
    let coef = |m: &catalyze::DefinedMetric, ev: &str| {
        m.events.iter().position(|e| e == ev).map(|i| m.coefficients[i]).unwrap()
    };
    assert!((coef(uncond, "BR_INST_RETIRED:ALL_BRANCHES") - 1.0).abs() < 1e-8);
    assert!((coef(uncond, "BR_INST_RETIRED:COND") + 1.0).abs() < 1e-8);
}

#[test]
fn gpu_selection_and_metrics_match_section_5b_and_table6() {
    let set = mi250x_like(2);
    let c = cfg();
    let ms = measure_gpu_flops(&set, &c, &catalyze_obs::NoopObserver);
    let report = run_request(
        "gpu-flops",
        &ms,
        &basis::gpu_flops_basis(),
        &signature::gpu_flops_signatures(),
        AnalysisConfig::gpu_flops(),
    );
    // §V.B: SQ_INSTS_VALU_[ADD|MUL|TRANS|FMA]_F[16|32|64], device 0.
    assert_eq!(report.selection.events.len(), 12);
    for class in ["ADD", "MUL", "TRANS", "FMA"] {
        for prec in ["16", "32", "64"] {
            let name = format!("rocm:::SQ_INSTS_VALU_{class}_F{prec}:device=0");
            assert!(report.selection.events.iter().any(|e| e.name == name), "missing {name}");
        }
    }

    // Table VI: HP Add / HP Sub in isolation fail with error 4.14e-1 and a
    // 0.5 coefficient on the fused ADD event.
    for name in ["HP Add Ops.", "HP Sub Ops."] {
        let m = report.metric(name).unwrap();
        assert!((m.error - 0.414).abs() < 0.01, "{name} error {}", m.error);
        let add_idx =
            m.events.iter().position(|e| e == "rocm:::SQ_INSTS_VALU_ADD_F16:device=0").unwrap();
        assert!((m.coefficients[add_idx] - 0.5).abs() < 1e-6);
    }
    // HP Add and Sub together compose exactly.
    let both = report.metric("HP Add and Sub Ops.").unwrap();
    assert!(both.error < 1e-10, "error {}", both.error);
    // All {HP,SP,DP} Ops compose with FMA weighted 2x.
    for name in ["All HP Ops.", "All SP Ops.", "All DP Ops."] {
        let m = report.metric(name).unwrap();
        assert!(m.error < 1e-10, "{name} error {}", m.error);
    }
}

#[test]
fn dcache_selection_and_metrics_match_section_5d_and_table8() {
    let set = sapphire_rapids_like();
    let c = cfg();
    let ms = measure_dcache(&set, &c, &catalyze_obs::NoopObserver);
    let report = run_request(
        "dcache",
        &ms,
        &basis::dcache_basis(&regions(&c.core)),
        &signature::dcache_signatures(),
        AnalysisConfig::dcache(),
    );
    let mut selected: Vec<String> =
        report.selection.events.iter().map(|e| e.name.clone()).collect();
    selected.sort();
    let mut expected: Vec<String> = [
        "MEM_LOAD_RETIRED:L3_HIT",
        "L2_RQSTS:DEMAND_DATA_RD_HIT",
        "MEM_LOAD_RETIRED:L1_MISS",
        "MEM_LOAD_RETIRED:L1_HIT",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    expected.sort();
    assert_eq!(selected, expected, "§V.D selection");

    // Table VIII: all six metrics compose; coefficients are near 0/1 but
    // not exact (noise), and rounding recovers clean combinations.
    for m in &report.metrics {
        assert!(m.error < 1e-3, "{} error {}", m.metric, m.error);
        for (c, r) in m.coefficients.iter().zip(&m.rounded) {
            let rounded =
                r.unwrap_or_else(|| panic!("{}: coefficient {c} did not round", m.metric));
            assert!((c - rounded).abs() <= 0.05, "{}: {c} vs {rounded}", m.metric);
        }
        assert!(
            m.rounded_error.unwrap() < 0.05,
            "{} rounded error {:?}",
            m.metric,
            m.rounded_error
        );
    }
}
