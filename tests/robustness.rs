//! Failure-injection and robustness tests for the analysis pipeline:
//! degenerate inputs must degrade gracefully, never silently produce wrong
//! metric definitions.

use catalyze::basis::{branch_basis, Basis};
use catalyze::pipeline::{AnalysisConfig, AnalysisReport, AnalysisRequest};
use catalyze::signature::branch_signatures;
use catalyze_cat::MeasurementSet;

fn names(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Runs the branch-domain pipeline over ad-hoc inputs via the builder.
fn branch_analysis(events: &[String], runs: &[Vec<Vec<f64>>], basis: &Basis) -> AnalysisReport {
    let signatures = branch_signatures();
    AnalysisRequest::new()
        .domain("x")
        .events(events)
        .runs(runs)
        .basis(basis)
        .signatures(&signatures)
        .config(AnalysisConfig::branch())
        .run()
        .unwrap()
}

#[test]
fn all_noisy_input_yields_no_metrics() {
    // Every event fluctuates wildly: the noise stage must drop everything
    // and the pipeline must return an empty (not bogus) result.
    let n = names(&["A", "B"]);
    let runs: Vec<Vec<Vec<f64>>> = (0..3)
        .map(|r| {
            let f = (r + 1) as f64;
            vec![vec![f; 11], vec![10.0 * f * f; 11]]
        })
        .collect();
    let report = branch_analysis(&n, &runs, &branch_basis());
    assert!(report.noise.kept().is_empty());
    assert!(report.selection.events.is_empty());
    assert!(report.metrics.is_empty());
    assert!(report.composable_metrics().is_empty());
}

#[test]
fn all_zero_input_yields_no_metrics() {
    let n = names(&["Z1", "Z2"]);
    let runs = vec![vec![vec![0.0; 11], vec![0.0; 11]]; 2];
    let report = branch_analysis(&n, &runs, &branch_basis());
    assert_eq!(report.noise.discarded_zero().len(), 2);
    assert!(report.metrics.is_empty());
}

#[test]
fn unrepresentable_events_yield_empty_selection() {
    // Clean (noise-free) events that the basis cannot express.
    let n = names(&["C1", "C2"]);
    let ramp: Vec<f64> = (0..11).map(|i| (i * i) as f64).collect();
    let runs = vec![vec![vec![5.0; 11], ramp]; 2];
    let report = branch_analysis(&n, &runs, &branch_basis());
    assert_eq!(report.noise.kept().len(), 2);
    assert_eq!(report.representation.rejected.len(), 2);
    assert!(report.selection.events.is_empty());
    assert!(report.metrics.is_empty());
}

#[test]
fn duplicated_events_collapse_to_one() {
    let b = branch_basis();
    let cr: Vec<f64> = (0..11).map(|i| b.matrix[(i, 1)]).collect();
    let n = names(&["COND_A", "COND_B", "COND_C"]);
    let runs = vec![vec![cr.clone(), cr.clone(), cr]; 2];
    let report = branch_analysis(&n, &runs, &b);
    assert_eq!(report.selection.events.len(), 1, "duplicates must not inflate rank");
    // Retired is composable from the single survivor; Taken is not.
    assert!(report.metric("Conditional Branches Retired").unwrap().error < 1e-10);
    assert!(report.metric("Conditional Branches Taken").unwrap().error > 0.1);
}

#[test]
fn partial_coverage_reports_honest_errors() {
    // Only COND_TAKEN exists: most metrics must come out non-composable.
    let b = branch_basis();
    let t: Vec<f64> = (0..11).map(|i| b.matrix[(i, 2)]).collect();
    let n = names(&["BR_INST_RETIRED:COND_TAKEN"]);
    let runs = vec![vec![t]; 2];
    let report = branch_analysis(&n, &runs, &b);
    assert!(report.metric("Conditional Branches Taken").unwrap().error < 1e-10);
    for name in ["Mispredicted Branches", "Unconditional Branches", "Conditional Branches Executed"]
    {
        let m = report.metric(name).unwrap();
        assert!(m.error > 0.5, "{name} must be non-composable, error {}", m.error);
    }
}

#[test]
fn single_repetition_is_accepted() {
    // One run: no pairs for RNMSE, variability defined as zero.
    let b = branch_basis();
    let cr: Vec<f64> = (0..11).map(|i| b.matrix[(i, 1)]).collect();
    let n = names(&["COND"]);
    let runs = vec![vec![cr]];
    let report = branch_analysis(&n, &runs, &b);
    assert_eq!(report.noise.kept().len(), 1);
    assert!(report.metric("Conditional Branches Retired").unwrap().error < 1e-10);
}

#[test]
fn measurement_set_json_roundtrip_preserves_analysis() {
    let b = branch_basis();
    let cr: Vec<f64> = (0..11).map(|i| b.matrix[(i, 1)]).collect();
    let ms = MeasurementSet {
        domain: "branch".into(),
        point_labels: (0..11).map(|i| format!("k{i}")).collect(),
        events: vec!["COND".into()],
        runs: vec![vec![cr]],
    };
    ms.validate().unwrap();
    let json = serde_json::to_string(&ms).unwrap();
    let back: MeasurementSet = serde_json::from_str(&json).unwrap();
    assert_eq!(back, ms);
    let r1 = branch_analysis(&ms.events, &ms.runs, &b);
    let r2 = branch_analysis(&back.events, &back.runs, &b);
    assert_eq!(r1.metrics.len(), r2.metrics.len());
    for (a, b) in r1.metrics.iter().zip(&r2.metrics) {
        assert_eq!(a.coefficients, b.coefficients);
        assert_eq!(a.error, b.error);
    }
}

#[test]
fn analysis_report_serializes() {
    let b = branch_basis();
    let cr: Vec<f64> = (0..11).map(|i| b.matrix[(i, 1)]).collect();
    let n = names(&["COND"]);
    let runs = vec![vec![cr]];
    let report = branch_analysis(&n, &runs, &b);
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("Conditional Branches Retired"));
}
