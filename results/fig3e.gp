# gnuplot script — regenerate with the repro harness
set terminal pngcairo size 900,600
set output 'fig3e.png'
set title 'L2 Misses.'
set xlabel 'Pointer Chain Size'
set ylabel 'Normalized Event Counts'
set yrange [0:3]
set xtics rotate by -45
set key top right
plot 'fig3e.dat' using 1:4:xtic(2) with linespoints pt 5 title 'Raw-event combination', \
     'fig3e.dat' using 1:3 with linespoints pt 9 dt 2 title 'Signature', \
     'fig3e.dat' using 1:5 with points pt 2 title 'Rounded combination'
