# gnuplot script — regenerate with the repro harness
set terminal pngcairo size 900,600
set output 'fig2b.png'
set title 'Figure 2b: CAT CPU-FLOPs benchmark variabilities'
set xlabel 'Event Index'
set ylabel 'Max. RNMSE Variability'
set logscale y
set yrange [1e-16:1e2]
set format y '10^{%L}'
set key top left
tau = 1e-10
plot 'fig2b.dat' using 1:2 with points pt 7 ps 0.6 title 'Sorted Event Variabilities', \
     tau with lines lw 2 dt 2 title sprintf('tau = %.1e', tau)
