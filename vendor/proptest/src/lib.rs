//! Workspace-local, offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use: integer/float range strategies, a regex-subset string strategy
//! (`[class]{n,m}` atoms, `.`, literal characters), `collection::vec`,
//! `option::of`, `any::<T>()`, tuples up to arity 4, `prop_map` /
//! `prop_flat_map`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! / `prop_assume!` macros. Case generation is deterministic: the RNG stream
//! is seeded from a hash of the test name, so failures reproduce exactly.
//! Unlike upstream there is no shrinking — a failing case reports the
//! assertion message only.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Vendored third-party stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of accepted cases each property runs.
pub const CASES: u32 = 128;

/// Ceiling on `prop_assume!` rejections before the property errors out.
pub const MAX_REJECTS: u32 = 65_536;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Strategy,
        TestCaseError, TestRng,
    };
}

/// Deterministic random source handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }

    /// Uniform draw from a half-open integer range.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "TestRng::index on empty range");
        self.inner.gen_range(0..n)
    }

    /// Uniform `[0, 1)` draw.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Access to the underlying generator for range sampling.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property's assertion failed.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be redrawn.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Drives one property: draws cases until [`CASES`] accept or one fails.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < CASES {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(what)) => {
                rejected += 1;
                if rejected > MAX_REJECTS {
                    panic!(
                        "[{name}] gave up: {rejected} rejections \
                         (last assume: {what}) with only {passed} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("[{name}] property failed after {passed} passing cases: {msg}")
            }
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// A string-literal strategy: a small regex subset.
///
/// Supported syntax: character classes `[a-zA-Z0-9_. ]` (with `-` ranges),
/// `.` for any printable ASCII character, literal characters, and `{n}` /
/// `{n,m}` repetition on the preceding atom.
impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    // `chars[i]` is the first char after '['.
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        if chars[i + 1..].first() == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    set.push(c);
                }
            }
            i += 3;
        } else {
            set.push(chars[i]);
            i += 1;
        }
    }
    (set, i + 1) // skip ']'
}

fn parse_repeat(chars: &[char], mut i: usize) -> (usize, usize, usize) {
    // `chars[i]` is the first char after '{'. Returns (lo, hi, next index).
    let mut lo = 0usize;
    while chars[i].is_ascii_digit() {
        lo = lo * 10 + chars[i] as usize - '0' as usize;
        i += 1;
    }
    let mut hi = lo;
    if chars[i] == ',' {
        i += 1;
        hi = 0;
        while chars[i].is_ascii_digit() {
            hi = hi * 10 + chars[i] as usize - '0' as usize;
            i += 1;
        }
    }
    (lo, hi, i + 1) // skip '}'
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1);
                i = next;
                set
            }
            '.' => {
                i += 1;
                (0x20u8..0x7F).map(char::from).collect()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let (lo, hi, next) = parse_repeat(&chars, i + 1);
            i = next;
            (lo, hi)
        } else {
            (1, 1)
        };
        let count = if hi > lo { lo + rng.index(hi - lo + 1) } else { lo };
        if !set.is_empty() {
            for _ in 0..count {
                out.push(set[rng.index(set.len())]);
            }
        }
    }
    out
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Bounded but sign-symmetric; plenty for property exploration.
        (rng.unit() - 0.5) * 2e6
    }
}

/// Strategy over the whole domain of `T`.
pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Returns the whole-domain strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: core::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as the size argument of [`vec`].
    pub trait SizeBound {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeBound for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeBound for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "vec size: empty range");
            self.start + rng.index(self.end - self.start)
        }
    }

    /// Strategy producing `Vec<S::Value>` with length drawn from `B`.
    pub struct VecStrategy<S, B> {
        element: S,
        size: B,
    }

    /// Builds a vector strategy.
    pub fn vec<S: Strategy, B: SizeBound>(element: S, size: B) -> VecStrategy<S, B> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, B: SizeBound> Strategy for VecStrategy<S, B> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Builds an option strategy (`Some` roughly three times in four).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit() < 0.25 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

/// Declares property tests. Each `arg in strategy` binding is drawn fresh
/// per case; the body runs until [`CASES`](crate::CASES) cases accept.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |prop_rng__| {
                    $(let $arg = $crate::Strategy::gen_value(&($strat), prop_rng__);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property body (fails the case, not the
/// process, so the runner can report the case count).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left_ = &$left;
        let right_ = &$right;
        if !(left_ == right_) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left_, right_
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left_ = &$left;
        let right_ = &$right;
        if !(left_ == right_) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), left_, right_
            )));
        }
    }};
}

/// Rejects the current case (redrawn without counting against the budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = TestRng::from_name("string_pattern_shapes");
        for _ in 0..500 {
            let s = Strategy::gen_value(&"[A-Za-z][A-Za-z0-9_.]{0,14}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 15, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.'));
            let t = Strategy::gen_value(&".{0,40}", &mut rng);
            assert!(t.len() <= 40);
            let u = Strategy::gen_value(&"ab{3}c", &mut rng);
            assert_eq!(u, "abbbc");
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(
                Strategy::gen_value(&(0u64..1000), &mut a),
                Strategy::gen_value(&(0u64..1000), &mut b)
            );
        }
    }

    proptest! {
        #[test]
        fn self_test_ranges(x in 3usize..10, y in -2.0..2.0f64, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(b || !b);
        }

        #[test]
        fn self_test_combinators(
            v in crate::collection::vec(0u32..5, 2..6),
            o in crate::option::of(1u8..3),
            t in (0u8..2, 10u8..12).prop_map(|(a, b)| (b, a)),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
            if let Some(x) = o {
                prop_assert!(x >= 1 && x < 3);
            }
            prop_assert!(t.0 >= 10);
            prop_assert_eq!(t.0 - 10 + t.1, t.1 + t.0 - 10);
        }

        #[test]
        fn self_test_assume(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
