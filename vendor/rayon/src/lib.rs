//! Workspace-local, offline stand-in for the `rayon` crate.
//!
//! Implements the exact parallel-iterator shapes this workspace uses —
//! `.par_iter().map(..).collect()`, `.par_iter().enumerate().map(..).collect()`
//! and `.par_chunks_mut(n).enumerate().for_each(..)` — with real parallelism
//! via `std::thread::scope` and static contiguous partitioning. Work items in
//! this workspace (simulated kernels, matmul columns) are uniform enough that
//! static partitioning matches work stealing in practice.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Vendored third-party stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::num::NonZeroUsize;

/// Import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use super::{IntoParallelRefIterator, ParallelSliceMut};
}

fn thread_count(work_items: usize) -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(work_items).max(1)
}

/// Maps `f` over `items` in parallel, preserving order of results.
fn parallel_map<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &'a T) -> R + Sync,
{
    let n = items.len();
    let threads = thread_count(n);
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let per = n.div_ceil(threads);
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * per;
                let hi = ((t + 1) * per).min(n);
                let f = &f;
                scope.spawn(move || {
                    items[lo..hi].iter().enumerate().map(|(i, x)| f(lo + i, x)).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("rayon stub: worker thread panicked"));
        }
    });
    out
}

/// Borrowing entry point: `collection.par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;

    /// Returns a parallel iterator borrowing the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over `&'a T` items.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Applies `f` to each item in parallel.
    pub fn map<R, F>(self, f: F) -> MapIter<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        MapIter { items: self.items, f }
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> EnumIter<'a, T> {
        EnumIter { items: self.items }
    }
}

/// Result of [`ParIter::map`].
pub struct MapIter<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> MapIter<'a, T, F> {
    /// Runs the map in parallel and collects the ordered results.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        let f = self.f;
        parallel_map(self.items, |_, x| f(x)).into_iter().collect()
    }
}

/// Result of [`ParIter::enumerate`].
pub struct EnumIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> EnumIter<'a, T> {
    /// Applies `f` to each `(index, item)` pair in parallel.
    pub fn map<R, F>(self, f: F) -> EnumMapIter<'a, T, F>
    where
        R: Send,
        F: Fn((usize, &'a T)) -> R + Sync,
    {
        EnumMapIter { items: self.items, f }
    }
}

/// Result of [`EnumIter::map`].
pub struct EnumMapIter<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> EnumMapIter<'a, T, F> {
    /// Runs the map in parallel and collects the ordered results.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn((usize, &'a T)) -> R + Sync,
        C: FromIterator<R>,
    {
        let f = self.f;
        parallel_map(self.items, |i, x| f((i, x))).into_iter().collect()
    }
}

/// Mutable-chunk entry point: `slice.par_chunks_mut(n)`.
pub trait ParallelSliceMut<T: Send> {
    /// Returns a parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be nonzero");
        ParChunksMut { data: self, chunk_size }
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumChunksMut<'a, T> {
        EnumChunksMut { inner: self }
    }

    /// Runs `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Result of [`ParChunksMut::enumerate`].
pub struct EnumChunksMut<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> EnumChunksMut<'a, T> {
    /// Runs `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunks: Vec<(usize, &'a mut [T])> =
            self.inner.data.chunks_mut(self.inner.chunk_size).enumerate().collect();
        let n = chunks.len();
        let threads = thread_count(n);
        if threads <= 1 {
            for pair in chunks {
                f(pair);
            }
            return;
        }
        // Hand each worker a contiguous run of chunks; ownership of the
        // `&mut` chunk references moves into exactly one worker.
        let per = n.div_ceil(threads);
        let mut groups: Vec<Vec<(usize, &'a mut [T])>> = Vec::with_capacity(threads);
        let mut iter = chunks.into_iter();
        for _ in 0..threads {
            groups.push(iter.by_ref().take(per).collect());
        }
        std::thread::scope(|scope| {
            for group in groups {
                let f = &f;
                scope.spawn(move || {
                    for pair in group {
                        f(pair);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_map_collect() {
        let input = vec!["a", "b", "c", "d"];
        let out: Vec<String> =
            input.par_iter().enumerate().map(|(i, s)| format!("{i}{s}")).collect();
        assert_eq!(out, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn chunks_mut_for_each_touches_every_chunk() {
        let mut data = vec![0u64; 97];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u64 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[96], 10);
    }

    #[test]
    fn empty_inputs() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let mut data: Vec<u32> = Vec::new();
        data.par_chunks_mut(4).for_each(|_c| {});
    }
}
