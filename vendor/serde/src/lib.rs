//! Workspace-local, offline stand-in for the `serde` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! small slice of serde it actually uses: `Serialize`/`Deserialize` traits
//! driven by a JSON-shaped [`Value`] model, plus derive macros re-exported
//! from the companion `serde_derive` stub. The derive output and the
//! external-tagging conventions mirror real serde so the JSON produced by
//! `serde_json` (also vendored) is byte-compatible for the shapes this
//! workspace serializes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Vendored third-party stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value: the intermediate representation every
/// `Serialize`/`Deserialize` implementation converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (kept exact, not routed through f64).
    I64(i64),
    /// Non-negative integer (kept exact, not routed through f64).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string content when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content widened to `f64` when this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Non-negative integer content when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// Boolean content when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup on arrays.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(index),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    /// Human-readable reason.
    pub message: String,
}

impl DeError {
    /// Builds an error from anything displayable.
    pub fn new(message: impl fmt::Display) -> Self {
        Self { message: message.to_string() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Converts a type into the dynamic [`Value`] model.
pub trait Serialize {
    /// The value-model form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs a type from the dynamic [`Value`] model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a value; errors carry a shape description.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Fallback used by derived struct deserializers when a field is absent
    /// from the object. `Option<T>` reads as `None`; everything else errors.
    fn absent() -> Option<Self> {
        None
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new(format!("expected bool, got {v:?}")))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| DeError::new(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::I64(x) => x,
                    Value::U64(x) => i64::try_from(x)
                        .map_err(|_| DeError::new(format!("{x} out of i64 range")))?,
                    _ => return Err(DeError::new(format!("expected integer, got {v:?}"))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            // Real serde_json writes non-finite floats as null; accept the
            // same on the way back in.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| DeError::new(format!("expected number, got {v:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected single-char string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!("expected single-char string, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {got}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_array().ok_or_else(|| DeError::new("expected 2-element array"))?;
        if a.len() != 2 {
            return Err(DeError::new(format!("expected 2-element array, got {}", a.len())));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_array().ok_or_else(|| DeError::new("expected 3-element array"))?;
        if a.len() != 3 {
            return Err(DeError::new(format!("expected 3-element array, got {}", a.len())));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?, C::from_value(&a[2])?))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => {
                fields.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            _ => Err(DeError::new(format!("expected object, got {v:?}"))),
        }
    }
}

/// Support routines the derive macros expand against. Not part of the public
/// API contract; the module is public only so generated code can reach it.
pub mod derive_support {
    use super::{DeError, Deserialize, Value};

    /// Views a value as an object, citing `type_name` on mismatch.
    pub fn as_object<'v>(v: &'v Value, type_name: &str) -> Result<&'v [(String, Value)], DeError> {
        match v {
            Value::Object(fields) => Ok(fields),
            _ => Err(DeError::new(format!("expected {type_name} object, got {v:?}"))),
        }
    }

    /// Views a value as an array, citing `type_name` on mismatch.
    pub fn as_array<'v>(v: &'v Value, type_name: &str) -> Result<&'v [Value], DeError> {
        match v {
            Value::Array(items) => Ok(items),
            _ => Err(DeError::new(format!("expected {type_name} array, got {v:?}"))),
        }
    }

    /// Reads one named struct field, falling back to `T::absent()` (e.g.
    /// `None` for options) when the key is missing.
    pub fn field<T: Deserialize>(
        fields: &[(String, Value)],
        key: &str,
        type_name: &str,
    ) -> Result<T, DeError> {
        match fields.iter().find(|(k, _)| k == key) {
            Some((_, v)) => T::from_value(v)
                .map_err(|e| DeError::new(format!("{type_name}.{key}: {}", e.message))),
            None => T::absent()
                .ok_or_else(|| DeError::new(format!("{type_name}: missing field `{key}`"))),
        }
    }

    /// Reads one positional tuple-struct field.
    pub fn element<T: Deserialize>(
        items: &[Value],
        index: usize,
        type_name: &str,
    ) -> Result<T, DeError> {
        let v = items
            .get(index)
            .ok_or_else(|| DeError::new(format!("{type_name}: missing tuple element {index}")))?;
        T::from_value(v).map_err(|e| DeError::new(format!("{type_name}.{index}: {}", e.message)))
    }

    /// Decomposes an externally tagged enum value into `(variant, payload)`.
    /// Unit variants arrive as plain strings and yield a `Null` payload.
    pub fn variant<'v>(v: &'v Value, type_name: &str) -> Result<(&'v str, &'v Value), DeError> {
        match v {
            Value::Str(name) => Ok((name.as_str(), &Value::Null)),
            Value::Object(fields) if fields.len() == 1 => Ok((fields[0].0.as_str(), &fields[0].1)),
            _ => Err(DeError::new(format!(
                "expected {type_name} variant (string or single-key object), got {v:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
    }

    #[test]
    fn options_and_vecs() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(3)).unwrap(), Some(3));
        let xs = vec![1.0f64, 2.0];
        assert_eq!(Vec::<f64>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn arrays_roundtrip() {
        let a = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_value(&a.to_value()).unwrap(), a);
        assert!(<[f64; 2]>::from_value(&a.to_value()).is_err());
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("x".into(), Value::Array(vec![Value::U64(1)]))]);
        assert_eq!(v["x"].as_array().unwrap().len(), 1);
        assert_eq!(v["x"][0].as_u64(), Some(1));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn absent_fields() {
        use derive_support::field;
        let fields: Vec<(String, Value)> = vec![];
        let opt: Option<u32> = field(&fields, "x", "T").unwrap();
        assert_eq!(opt, None);
        assert!(field::<u32>(&fields, "x", "T").is_err());
    }
}
