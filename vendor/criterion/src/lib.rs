//! Workspace-local, offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmarking harness exposing the API surface this
//! workspace's benches use: `benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. Reports median
//! nanoseconds per iteration to stdout; no statistics files, no plots.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Vendored third-party stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock spend per benchmark (all samples together).
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_samples: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.default_samples,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.default_samples, None, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_one(&label, self.samples, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_one(&label, self.samples, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    /// Only a parameter value (the group name supplies the function).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { function: Some(name.to_string()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { function: Some(name), parameter: None }
    }
}

/// Work performed by one iteration, for ops/sec reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times the routine under measurement.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, recording one duration per sample.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warmup + calibration: size iterations so one sample is measurable
        // but the whole benchmark stays within the time budget.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.budget / self.samples.capacity().max(1) as u32;
        self.iters_per_sample = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1000) as u64;

        for _ in 0..self.samples.capacity() {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one<F>(label: &str, samples: usize, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        iters_per_sample: 1,
        budget: TARGET_SAMPLE_TIME,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> =
        b.samples.iter().map(|d| d.as_nanos() as f64 / b.iters_per_sample as f64).collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:.1} Melem/s", n as f64 / median * 1e3)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:.1} MiB/s", n as f64 / median * 1e9 / (1024.0 * 1024.0) / 1e6)
        }
        _ => String::new(),
    };
    println!(
        "{label:<48} median {:>12.1} ns/iter ({} samples x {} iters){rate}",
        median,
        per_iter.len(),
        b.iters_per_sample
    );
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` invoking each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        let input = vec![1u64; 64];
        g.bench_with_input(BenchmarkId::from_parameter(64), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        g.bench_function("named", |b| b.iter(|| 1 + 1));
        g.finish();
        c.bench_function("ungrouped", |b| b.iter(|| 2 * 2));
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("4x4").label(), "4x4");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }
}
