//! Workspace-local, offline stand-in for the `rand` crate.
//!
//! Provides the slice of the rand 0.8 API this workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] over
//! integer and float ranges, and [`Rng::gen_bool`], with
//! [`rngs::StdRng`] backed by xoshiro256++ seeded through SplitMix64.
//! Streams are deterministic per seed (the property the simulator's noise
//! models rely on) but are not bit-compatible with upstream `StdRng` —
//! nothing in the workspace depends on upstream's exact streams.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Vendored third-party stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform bits;
    /// `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand a 64-bit seed into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is absorbing; SplitMix64 cannot
            // produce four zero outputs from any seed, but keep the guard
            // explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace does not distinguish small/std generators.
    pub type SmallRng = StdRng;
}

/// Distributions and range sampling.
pub mod distributions {
    use super::RngCore;

    /// A way of producing values of `T` from uniform bits.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform bits for integers, uniform
    /// `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform bits into [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A range that can be sampled from directly (`rng.gen_range(a..b)`).
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Types with a uniform draw over an interval. The single blanket
    /// `SampleRange` impl below mirrors upstream rand so integer-literal
    /// ranges unify with the type demanded at the use site.
    pub trait SampleUniform: Copy {
        /// Uniform draw from `[lo, hi)`.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        /// Uniform draw from `[lo, hi]`.
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
    }

    /// Unbiased-enough integer draw from `[0, span)` via 128-bit widening
    /// multiply (Lemire's method without the rejection step; bias is
    /// below 2^-64 for the spans this workspace uses).
    fn widening_bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
        ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    lo.wrapping_add(widening_bounded(rng, span) as $t)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(widening_bounded(rng, span + 1) as $t)
                }
            }
        )*};
    }

    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_sample_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                    assert!(lo < hi, "gen_range: empty range");
                    let unit: f64 =
                        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let flo = lo as f64;
                    let fhi = hi as f64;
                    let v = flo + (fhi - flo) * unit;
                    // Floating rounding can land exactly on `hi`; fold back
                    // to keep the half-open contract.
                    (if v < fhi { v } else { flo }) as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                    assert!(lo <= hi, "gen_range: empty range");
                    let unit: f64 =
                        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let flo = lo as f64;
                    let fhi = hi as f64;
                    (flo + (fhi - flo) * unit) as $t
                }
            }
        )*};
    }

    impl_sample_uniform_float!(f32, f64);
}

pub use distributions::{Distribution, Standard};

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_ne!(a[0], c);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(3u64..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(0usize..=4);
            assert!(y <= 4);
            let z = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn uniform_mean() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
