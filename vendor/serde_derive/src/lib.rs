//! Workspace-local stand-in for `serde_derive`.
//!
//! Derives `Serialize`/`Deserialize` for the item shapes this workspace
//! declares: named structs, tuple structs, unit structs, and enums whose
//! variants are unit, newtype, tuple, or struct-like. External tagging and
//! `#[serde(skip)]` follow real serde's conventions. The input item is
//! parsed directly from the `proc_macro` token stream — the offline build
//! container has no `syn`/`quote` — and the implementation is emitted as a
//! source string parsed back into a token stream.
//!
//! Unsupported shapes (generic types, lifetimes, unions, other `#[serde]`
//! attributes) produce a `compile_error!` naming the construct, so misuse
//! fails loudly rather than silently misbehaving.

// Vendored third-party stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the workspace `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let src = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    src.parse().unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}")))
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("literal error message parses")
}

/// One field of a struct or struct variant.
struct Field {
    name: String,
    skip: bool,
}

enum VariantShape {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum ItemShape {
    NamedStruct(Vec<Field>),
    TupleStruct { arity: usize, skipped: Vec<bool> },
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: ItemShape,
}

/// True when an attribute group body is `serde(... skip ...)`.
fn attr_is_serde_skip(body: &[TokenTree]) -> Result<bool, String> {
    let mut it = body.iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(false),
    }
    match it.next() {
        Some(TokenTree::Group(g)) => {
            let inner: Vec<String> = g.stream().into_iter().map(|t| t.to_string()).collect();
            if inner.len() == 1 && inner[0] == "skip" {
                Ok(true)
            } else {
                Err(format!(
                    "unsupported #[serde({})] — the vendored derive only knows `skip`",
                    inner.join("")
                ))
            }
        }
        _ => Err("malformed #[serde] attribute".into()),
    }
}

/// Consumes leading `#[...]` attributes, reporting whether any is
/// `#[serde(skip)]`.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> Result<bool, String> {
    let mut skip = false;
    while *pos + 1 < tokens.len() {
        match (&tokens[*pos], &tokens[*pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                skip |= attr_is_serde_skip(&body)?;
                *pos += 2;
            }
            _ => break,
        }
    }
    Ok(skip)
}

/// Consumes a visibility marker (`pub`, `pub(crate)`, ...), if present.
fn take_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Skips a type expression: everything up to a top-level `,` (angle-bracket
/// depth tracked through `<`/`>`).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = take_attrs(&tokens, &mut pos)?;
        take_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut pos);
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn parse_tuple_fields(group: &proc_macro::Group) -> Result<Vec<bool>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut skipped = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = take_attrs(&tokens, &mut pos)?;
        take_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        skipped.push(skip);
    }
    Ok(skipped)
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        take_attrs(&tokens, &mut pos)?;
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
            None => break,
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Struct(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                match parse_tuple_fields(g)?.len() {
                    1 => VariantShape::Newtype,
                    n => VariantShape::Tuple(n),
                }
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == '=' {
                pos += 1;
                while let Some(tok) = tokens.get(pos) {
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    pos += 1;
                }
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    take_attrs(&tokens, &mut pos)?;
    take_visibility(&tokens, &mut pos);
    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    pos += 1;
    if kind != "struct" && kind != "enum" {
        return Err(format!("the vendored serde derive cannot handle `{kind}` items"));
    }
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde derive does not support generic type `{name}`"
            ));
        }
    }
    let shape = if kind == "enum" {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemShape::Enum(parse_variants(g)?)
            }
            _ => return Err(format!("expected enum body for `{name}`")),
        }
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemShape::NamedStruct(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let skipped = parse_tuple_fields(g)?;
                ItemShape::TupleStruct { arity: skipped.len(), skipped }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemShape::UnitStruct,
            _ => return Err(format!("expected struct body for `{name}`")),
        }
    };
    Ok(Item { name, shape })
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        ItemShape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push(({:?}.to_string(), ::serde::Serialize::to_value(&self.{})));\n",
                    f.name, f.name
                ));
            }
            format!(
                "#[allow(unused_mut)] let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}\
                 ::serde::Value::Object(fields)"
            )
        }
        ItemShape::TupleStruct { arity, skipped } => {
            let live: Vec<usize> = (0..*arity).filter(|i| !skipped[*i]).collect();
            if live.len() == 1 {
                format!("::serde::Serialize::to_value(&self.{})", live[0])
            } else {
                let items: Vec<String> = live
                    .iter()
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        }
        ItemShape::UnitStruct => "::serde::Value::Null".to_string(),
        ItemShape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                    )),
                    VariantShape::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                         ::serde::Serialize::to_value(x0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "inner.push(({:?}.to_string(), \
                                 ::serde::Serialize::to_value({})));\n",
                                f.name, f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             #[allow(unused_mut)] let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}\
                             ::serde::Value::Object(vec![({vn:?}.to_string(), \
                             ::serde::Value::Object(inner))])\n}},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        ItemShape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!("{}: ::core::default::Default::default(),\n", f.name));
                } else {
                    inits.push_str(&format!(
                        "{}: ::serde::derive_support::field(_fields, {:?}, {name:?})?,\n",
                        f.name, f.name
                    ));
                }
            }
            format!(
                "let _fields = ::serde::derive_support::as_object(v, {name:?})?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        ItemShape::TupleStruct { arity, skipped } => {
            let live: Vec<usize> = (0..*arity).filter(|i| !skipped[*i]).collect();
            if skipped.iter().any(|&s| s) {
                return format!(
                    "compile_error!(\"#[serde(skip)] on tuple-struct fields is not supported \
                     by the vendored derive ({name})\");"
                );
            }
            if live.len() == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let elems: Vec<String> = live
                    .iter()
                    .map(|i| format!("::serde::derive_support::element(items, {i}, {name:?})?"))
                    .collect();
                format!(
                    "let items = ::serde::derive_support::as_array(v, {name:?})?;\n\
                     Ok({name}({}))",
                    elems.join(", ")
                )
            }
        }
        ItemShape::UnitStruct => format!("Ok({name})"),
        ItemShape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Newtype => arms.push_str(&format!(
                        "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(_payload)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::derive_support::element(items, {i}, {name:?})?")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let items = ::serde::derive_support::as_array(_payload, {name:?})?;\n\
                             Ok({name}::{vn}({}))\n}},\n",
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::core::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{}: ::serde::derive_support::field(_fields, {:?}, \
                                     {name:?})?,\n",
                                    f.name, f.name
                                ));
                            }
                        }
                        arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let _fields = ::serde::derive_support::as_object(_payload, {name:?})?;\n\
                             Ok({name}::{vn} {{\n{inits}}})\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "let (variant, _payload) = ::serde::derive_support::variant(v, {name:?})?;\n\
                 match variant {{\n{arms}\
                 other => Err(::serde::DeError::new(format!(\
                 \"unknown {name} variant `{{other}}`\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> \
         {{\n{body}\n}}\n}}\n"
    )
}
