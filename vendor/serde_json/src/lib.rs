//! Workspace-local, offline stand-in for the `serde_json` crate.
//!
//! Reads and writes JSON text through the vendored `serde` value model.
//! Covers the API surface this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`from_slice`], and [`Value`] with
//! `Index`/accessor sugar. Float formatting relies on Rust's shortest
//! round-trip `Display`, so `f64` values survive a write/read cycle exactly;
//! non-finite floats serialize as `null`, matching real serde_json.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Vendored third-party stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Self { message: message.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts a value into the dynamic [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a typed value from the dynamic [`Value`] model.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::new)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(Error::new)
}

/// Parses a value from JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(Error::new)?;
    from_str(s)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Rust's Display is shortest-round-trip, so the text parses
                // back to the identical bits.
                out.push_str(&n.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(Error::new)?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(Error::new)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(Error::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::U64(1), Value::F64(2.5)])),
            ("b".into(), Value::Str("x\"y\n".into())),
            ("c".into(), Value::Null),
            ("d".into(), Value::Bool(true)),
            ("e".into(), Value::I64(-3)),
        ]);
        let text = to_string(&ValueWrap(v.clone())).unwrap();
        let back: Value = parse_value_complete(&text).unwrap();
        assert_eq!(back, v);
    }

    /// Serialize shim so tests can write raw Values.
    struct ValueWrap(Value);
    impl Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [1.7e-19, 0.1, 1e300, -2.5e-8, f64::MIN_POSITIVE, 12345.678901234567] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn integers_keep_exactness() {
        let big = u64::MAX;
        let text = to_string(&big).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, big);
        let neg: i64 = from_str("-42").unwrap();
        assert_eq!(neg, -42);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u64, 2];
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "[\n  1,\n  2\n]");
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(s, "aé😀b");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<f64>("1.2.3").is_err());
    }
}
