//! Closing the loop: metric definitions discovered by the pipeline are
//! validated on an independent *mixed* workload against the simulator's
//! architectural ground truth — something no real machine can provide, and
//! the strongest evidence the definitions are semantically right.

use catalyze_bench::{Harness, Scale};
use catalyze_cat::validate_presets;

fn main() {
    let h = Harness::new(Scale::Full);

    for domain in ["cpu-flops", "branch", "dcache"] {
        let d = h.domain(domain).expect("known domain").expect("domain analyzes");
        let presets: Vec<_> =
            d.analysis.composable_metrics().iter().map(|m| m.to_preset(1e-6)).collect();
        println!("== {domain}: validating {} composable metrics ==", presets.len());
        let outcomes = validate_presets(&presets, &h.cpu_events, h.cfg.core, h.cfg.pmu, 2024);
        println!(
            "{:<34} {:>14} {:>14} {:>12}",
            "metric", "predicted", "ground truth", "rel. error"
        );
        for o in &outcomes {
            println!(
                "{:<34} {:>14.1} {:>14.1} {:>12.2e}",
                o.metric, o.predicted, o.ground_truth, o.relative_error
            );
        }
        println!();
    }
    println!("Architectural metrics (FLOPs, branches) validate to machine precision;");
    println!("cache metrics validate within the hardware events' noise envelope.");
}
