//! Portability — the paper's reason to exist. The same benchmarks and the
//! same pipeline, run against two different architectures' event
//! inventories, produce each machine's own correct metric definitions:
//!
//! * the SPR-like machine has per-precision FP instruction counters but no
//!   FMA-only event: SP/DP metrics compose, FMA metrics do not;
//! * the Zen-like machine has per-class FP *operation* counters with no
//!   precision split: the total-FLOPs metric composes, SP/DP metrics do
//!   not; and its branch family lacks a taken-conditional event, so that
//!   metric needs a three-event combination.

use catalyze::basis;
use catalyze::pipeline::{AnalysisConfig, AnalysisReport, AnalysisRequest};
use catalyze::signature;
use catalyze_cat::{Domain, RunnerConfig, SimRequest};
use catalyze_sim::{sapphire_rapids_like, zen_like, CpuEventSet};

fn flops_report(set: &CpuEventSet, label: &str, cfg: &RunnerConfig) -> AnalysisReport {
    let ms = SimRequest::new()
        .domain(Domain::CpuFlops)
        .events(set)
        .config(cfg)
        .run()
        .expect("valid request");
    let mut signatures = signature::cpu_flops_signatures();
    signatures.push(signature::all_fp_ops_signature());
    let basis = basis::cpu_flops_basis();
    AnalysisRequest::new()
        .domain(label)
        .events(&ms.events)
        .runs(&ms.runs)
        .basis(&basis)
        .signatures(&signatures)
        .config(AnalysisConfig::cpu_flops())
        .run()
        .expect("simulated measurements analyze cleanly")
}

fn verdict(r: &AnalysisReport, metric: &str) -> String {
    let m = r.metric(metric).expect("metric defined");
    if m.is_composable(r.config.composability_threshold) {
        format!("composable   (err {:.1e})", m.error)
    } else {
        format!("NOT composable (err {:.1e})", m.error)
    }
}

fn main() {
    let cfg = RunnerConfig::default_sim();
    let spr = sapphire_rapids_like();
    let zen = zen_like();

    println!("running the identical CPU-FLOPs benchmark on two machines...\n");
    let spr_report = flops_report(&spr, "spr", &cfg);
    let zen_report = flops_report(&zen, "zen", &cfg);

    println!("{:<18} {:<28} {:<28}", "metric", "SPR-like", "Zen-like");
    for metric in ["SP Ops.", "DP Ops.", "SP FMA Instrs.", "DP FMA Instrs.", "All FP Ops."] {
        println!(
            "{:<18} {:<28} {:<28}",
            metric,
            verdict(&spr_report, metric),
            verdict(&zen_report, metric)
        );
    }

    println!("\nselected FP events:");
    println!("  SPR-like: {:?}", spr_report.selection.names());
    println!("  Zen-like: {:?}", zen_report.selection.names());

    println!("\nbranching: the same metric, different raw-event combinations --");
    let branch = |set: &CpuEventSet, label: &str| {
        let ms = SimRequest::new()
            .domain(Domain::Branch)
            .events(set)
            .config(&cfg)
            .run()
            .expect("valid request");
        let basis = basis::branch_basis();
        let signatures = signature::branch_signatures();
        AnalysisRequest::new()
            .domain(label)
            .events(&ms.events)
            .runs(&ms.runs)
            .basis(&basis)
            .signatures(&signatures)
            .config(AnalysisConfig::branch())
            .run()
            .expect("simulated measurements analyze cleanly")
    };
    for (label, report) in [("SPR-like", branch(&spr, "spr")), ("Zen-like", branch(&zen, "zen"))] {
        let taken = report.metric("Conditional Branches Taken").unwrap();
        let combo: Vec<String> = taken
            .events
            .iter()
            .zip(&taken.coefficients)
            .filter(|(_, c)| c.abs() > 1e-6)
            .map(|(e, c)| format!("{c:+.0}x{e}"))
            .collect();
        println!("  {label:<9} Conditional Branches Taken = {}", combo.join(" "));
    }
    println!("\nSame pipeline, zero per-architecture configuration: each machine");
    println!("gets its own correct definitions, and impossibilities are reported");
    println!("as such rather than papered over.");
}
