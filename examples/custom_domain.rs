//! Defining a **new analysis domain from scratch** with the public API —
//! what a downstream user does to extend the methodology to a hardware
//! attribute the shipped benchmarks do not cover.
//!
//! The recipe (the same one every built-in domain follows):
//!
//! 1. write microkernels that stress the attribute in isolation, with
//!    *known* expected counts per iteration;
//! 2. stack those expected counts into an expectation [`Basis`];
//! 3. express the metrics you want as [`MetricSignature`]s over the basis;
//! 4. measure every raw event while running the kernels;
//! 5. hand everything to [`analyze`].
//!
//! Here the attribute is the **integer ALU**: four pure kernels (adds,
//! multiplies, compares, logic ops) plus one mixed kernel, composed against
//! the SPR-like machine's `INT_ALU_RETIRED:*` events.

use catalyze::basis::Basis;
use catalyze::pipeline::{AnalysisConfig, AnalysisRequest};
use catalyze::report;
use catalyze::signature::MetricSignature;
use catalyze_events::EventId;
use catalyze_linalg::Matrix;
use catalyze_sim::program::Block;
use catalyze_sim::{
    sapphire_rapids_like, CoreConfig, Cpu, CpuPmu, Instruction, IntKind, PmuConfig, Program,
};

/// Instructions per loop iteration for the three loops of every kernel.
const LOOP_SIZES: [u64; 3] = [24, 48, 96];
/// Loop trip count.
const TRIPS: u64 = 2048;

/// One integer kernel: per-iteration instruction counts per kind
/// (add, mul, cmp, logic), scaled by the loop size factor.
struct IntKernel {
    name: &'static str,
    /// Relative mix per kind; the loop with size `s` issues
    /// `mix[k] * s / 24` instructions of kind `k` per iteration.
    mix: [u64; 4],
}

const KERNELS: [IntKernel; 5] = [
    IntKernel { name: "K_ADD", mix: [24, 0, 0, 0] },
    IntKernel { name: "K_MUL", mix: [0, 24, 0, 0] },
    IntKernel { name: "K_CMP", mix: [0, 0, 24, 0] },
    IntKernel { name: "K_LOGIC", mix: [0, 0, 0, 24] },
    IntKernel { name: "K_MIX", mix: [12, 6, 4, 2] },
];

const KINDS: [IntKind; 4] = [IntKind::Add, IntKind::Mul, IntKind::Cmp, IntKind::Logic];

fn kernel_program(k: &IntKernel, loop_size: u64) -> Program {
    let mut block = Block::new();
    for (kind, &count) in KINDS.iter().zip(&k.mix) {
        block = block.repeat(Instruction::Int(*kind), (count * loop_size / 24) as usize);
    }
    // Explicit always-taken back edge: keeps the integer counts exactly the
    // kernel's own (a synthesized counted-loop header would add its own
    // add/cmp per iteration).
    block = block.push(Instruction::cond_forced(50, true, false));
    Program::new().bare_loop(block, TRIPS)
}

/// Step 2: the expectation basis — what ideal per-kind integer events
/// would measure, per iteration, at every (kernel, loop) point.
fn int_basis() -> Basis {
    let mut e = Matrix::zeros(KERNELS.len() * 3, 4);
    for (k, kernel) in KERNELS.iter().enumerate() {
        for (l, &size) in LOOP_SIZES.iter().enumerate() {
            for kind in 0..4 {
                e[(3 * k + l, kind)] = (kernel.mix[kind] * size / 24) as f64;
            }
        }
    }
    Basis {
        labels: ["I_ADD", "I_MUL", "I_CMP", "I_LOGIC"].iter().map(|s| s.to_string()).collect(),
        matrix: e,
    }
}

/// Step 3: the metrics we want.
fn int_signatures() -> Vec<MetricSignature> {
    vec![
        MetricSignature::new("Integer Adds.", vec![1., 0., 0., 0.]),
        MetricSignature::new("Integer Multiplies.", vec![0., 1., 0., 0.]),
        MetricSignature::new("All Integer Ops.", vec![1., 1., 1., 1.]),
        MetricSignature::new("Flag-Setting Ops.", vec![0., 0., 1., 1.]),
    ]
}

fn main() {
    // Lint the hand-built basis before trusting anything downstream.
    let issues = catalyze::validate_basis(&int_basis());
    assert!(issues.is_empty(), "basis problems: {issues:?}");

    let set = sapphire_rapids_like();
    let pmu = CpuPmu::new(PmuConfig::default_sim());
    let all_events: Vec<EventId> = (0..set.len()).map(|i| EventId(i as u32)).collect();

    // Step 4: measure every raw event over every (kernel, loop) point.
    let kernel_names: Vec<&str> = KERNELS.iter().map(|k| k.name).collect();
    println!(
        "measuring {} events over {} points ({})...\n",
        set.len(),
        KERNELS.len() * 3,
        kernel_names.join(", ")
    );
    let mut runs = Vec::new();
    for rep in 0..3 {
        let mut per_event: Vec<Vec<f64>> = vec![Vec::new(); set.len()];
        for (k, kernel) in KERNELS.iter().enumerate() {
            for (l, &size) in LOOP_SIZES.iter().enumerate() {
                let mut cpu = Cpu::new(CoreConfig::default_sim());
                cpu.run(&kernel_program(kernel, size));
                let counts =
                    pmu.read_cpu(&set, &cpu.stats(), &all_events, rep * 100_000 + 3 * k + l);
                for (e, &c) in counts.iter().enumerate() {
                    per_event[e].push(c / TRIPS as f64);
                }
            }
        }
        runs.push(per_event);
    }
    let names: Vec<String> = set.iter().map(|(_, d)| d.info.name.to_string()).collect();

    // Step 5: analyze.
    let basis = int_basis();
    let signatures = int_signatures();
    let analysis = AnalysisRequest::new()
        .domain("integer-alu (custom domain)")
        .events(&names)
        .runs(&runs)
        .basis(&basis)
        .signatures(&signatures)
        .config(AnalysisConfig::cpu_flops()) // exact counters: the strict thresholds apply
        .run()
        .expect("simulated measurements analyze cleanly");

    print!("{}", report::noise_summary(&analysis.noise));
    println!();
    print!("{}", report::selection_table(&analysis));
    println!();
    print!("{}", report::metrics_table("Custom Integer-ALU Metrics", &analysis.metrics));
    println!(
        "\nThe pipeline picked the four per-kind INT_ALU_RETIRED events and\n\
         rejected INT_MISC:ALL as their linear combination — the same\n\
         discovery pattern as every built-in domain, on a domain this\n\
         example defined in ~100 lines."
    );
}
