//! Data-cache metric analysis (the paper's §V.D / Table VIII / Figure 3
//! flow): a multi-threaded pointer chase sweeps buffer footprints across
//! L1/L2/L3/memory; the pipeline defines hit/miss/read metrics despite the
//! cache events' noise, and coefficient rounding recovers exact signature
//! behavior.

use catalyze::basis::{dcache_basis, CacheRegion};
use catalyze::pipeline::{AnalysisConfig, AnalysisRequest};
use catalyze::report;
use catalyze::signature::dcache_signatures;
use catalyze_cat::{dcache, Domain, RunnerConfig, SimRequest};
use catalyze_sim::sapphire_rapids_like;

fn main() {
    let events = sapphire_rapids_like();
    let cfg = RunnerConfig::default_sim();
    let hier = cfg.core.hierarchy;
    println!(
        "hierarchy: L1 {} KiB / L2 {} KiB / L3 {} KiB",
        hier.l1.size_bytes / 1024,
        hier.l2.size_bytes / 1024,
        hier.l3.size_bytes / 1024
    );
    println!(
        "pointer-chase sweep: {} configurations, {} threads, median across threads\n",
        dcache::sweep(&hier).len(),
        cfg.dcache_threads
    );

    let ms = SimRequest::new()
        .domain(Domain::Dcache)
        .events(&events)
        .config(&cfg)
        .run()
        .expect("valid request");

    let regions: Vec<CacheRegion> = dcache::point_regions(&hier)
        .into_iter()
        .map(|r| match r {
            dcache::Region::L1 => CacheRegion::L1,
            dcache::Region::L2 => CacheRegion::L2,
            dcache::Region::L3 => CacheRegion::L3,
            dcache::Region::Memory => CacheRegion::Memory,
        })
        .collect();
    let basis = dcache_basis(&regions);

    let signatures = dcache_signatures();
    let analysis = AnalysisRequest::new()
        .domain("dcache")
        .events(&ms.events)
        .runs(&ms.runs)
        .basis(&basis)
        .signatures(&signatures)
        .config(AnalysisConfig::dcache())
        .run()
        .expect("simulated measurements analyze cleanly");

    print!("{}", report::noise_summary(&analysis.noise));
    println!();
    print!("{}", report::selection_table(&analysis));
    println!();
    print!("{}", report::metrics_table("Data Cache Metrics (paper Table VIII)", &analysis.metrics));

    // Figure-3-style data: signature vs measured combination per point.
    println!("\n== L1 Hits curve (paper Fig. 3a) ==");
    let sig = &dcache_signatures()[1]; // L1 Hits
    print!("{}", report::figure3_data(&analysis, &basis, sig, &ms.point_labels));

    println!("\nCoefficients are within a few percent of 0/1 (noise) and round");
    println!("to combinations that match the signatures exactly — §VI.D.");
}
