//! Define GPU floating-point metrics (the paper's §V.B / Table VI flow) on
//! the MI250X-like device: the `SQ_INSTS_VALU_ADD_F*` counters fuse
//! additions and subtractions, so "HP Add" alone is not composable but
//! "HP Add and Sub" is.

use catalyze::basis::gpu_flops_basis;
use catalyze::pipeline::{AnalysisConfig, AnalysisRequest};
use catalyze::report;
use catalyze::signature::gpu_flops_signatures;
use catalyze_cat::{Domain, RunnerConfig, SimRequest};
use catalyze_sim::mi250x_like;

fn main() {
    // A Frontier-like node: 8 GPU devices, ~1200 events.
    let events = mi250x_like(8);
    println!("node exposes {} GPU events across 8 devices\n", events.len());

    let cfg = RunnerConfig::default_sim();
    println!("running the GPU-FLOPs benchmark (15 kernels x 3 sizes) on device 0...\n");
    let ms = SimRequest::new()
        .domain(Domain::GpuFlops)
        .gpu_events(&events)
        .config(&cfg)
        .run()
        .expect("valid request");

    let basis = gpu_flops_basis();
    let signatures = gpu_flops_signatures();
    let analysis = AnalysisRequest::new()
        .domain("gpu-flops")
        .events(&ms.events)
        .runs(&ms.runs)
        .basis(&basis)
        .signatures(&signatures)
        .config(AnalysisConfig::gpu_flops())
        .run()
        .expect("simulated measurements analyze cleanly");

    print!("{}", report::noise_summary(&analysis.noise));
    println!();
    print!("{}", report::selection_table(&analysis));
    println!();
    print!(
        "{}",
        report::metrics_table("GPU Floating-Point Metrics (paper Table VI)", &analysis.metrics)
    );

    println!("\nNote the 0.5-coefficient / 4.1e-1-error definitions of HP Add and");
    println!("HP Sub: the hardware cannot separate them, and the analysis says so.");
}
