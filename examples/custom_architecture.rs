//! Analyzing a *custom* architecture: the whole point of the paper's
//! methodology is portability — rerun the same pipeline on different
//! hardware and it discovers that machine's metric definitions.
//!
//! Here we build a hypothetical CPU whose event inventory, unlike Sapphire
//! Rapids, includes dedicated FMA-instruction counters. The same pipeline
//! that found "DP FMA Instrs." non-composable on the SPR-like machine now
//! composes it exactly.

use catalyze::basis::cpu_flops_basis;
use catalyze::pipeline::{AnalysisConfig, AnalysisRequest};
use catalyze::signature::cpu_flops_signatures;
use catalyze_cat::{Domain, RunnerConfig, SimRequest};
use catalyze_events::EventName;
use catalyze_sim::cpu::ExecStats;
use catalyze_sim::{sapphire_rapids_like, FpKind, Precision, VecWidth};

/// Computes what a dedicated FMA-instruction counter (one count per FMA
/// instruction, unlike `FP_ARITH`'s double counting) would read.
fn fma_instr_count(stats: &ExecStats, prec: Precision) -> f64 {
    VecWidth::ALL.iter().map(|&w| stats.fp_class(prec, w, FpKind::Fma) as f64).sum()
}

fn main() {
    let base_events = sapphire_rapids_like();
    let cfg = RunnerConfig::default_sim();

    // Measure on the stock machine...
    let mut ms = SimRequest::new()
        .domain(Domain::CpuFlops)
        .events(&base_events)
        .config(&cfg)
        .run()
        .expect("valid request");

    // ...then graft on the hypothetical architecture's two extra events by
    // recomputing their ideal measurements from the same kernels. (On a
    // real port this would simply be two more rows in the PMU inventory.)
    let kernels = catalyze_cat::flops_cpu::kernel_space();
    for (name, prec) in [
        ("FMA_INST_RETIRED:DOUBLE", Precision::Double),
        ("FMA_INST_RETIRED:SINGLE", Precision::Single),
    ] {
        let event: EventName = name.parse().expect("valid name");
        let mut vectors: Vec<f64> = Vec::new();
        for k in &kernels {
            for l in 0..3 {
                let mut cpu = catalyze_sim::Cpu::new(cfg.core);
                cpu.run(&k.program(l, 64));
                vectors.push(fma_instr_count(&cpu.stats(), prec) / 64.0);
            }
        }
        ms.events.push(event.to_string());
        for run in &mut ms.runs {
            run.push(vectors.clone());
        }
    }

    let basis = cpu_flops_basis();
    let signatures = cpu_flops_signatures();
    let analysis = AnalysisRequest::new()
        .domain("cpu-flops (custom arch with FMA counters)")
        .events(&ms.events)
        .runs(&ms.runs)
        .basis(&basis)
        .signatures(&signatures)
        .config(AnalysisConfig::cpu_flops())
        .run()
        .expect("simulated measurements analyze cleanly");

    println!("selected events:");
    for e in &analysis.selection.events {
        println!("  {}", e.name);
    }
    println!();
    for m in &analysis.metrics {
        let verdict = if m.is_composable(analysis.config.composability_threshold) {
            "composable"
        } else {
            "NOT composable"
        };
        println!("{:<18} {verdict} (error {:.2e})", m.metric, m.error);
    }
    println!(
        "\nWith dedicated FMA counters in the inventory, the FMA metrics now\n\
         compose exactly — same pipeline, different architecture, correct\n\
         per-architecture answer."
    );
}
