//! Define CPU floating-point metrics (the paper's §V.A / Table V flow):
//! run the 16-kernel FLOPs benchmark, select the independent
//! `FP_ARITH_INST_RETIRED` events, and compose SP/DP instruction and
//! operation metrics — including the discovery that FMA-only metrics are
//! *not* composable on this (Sapphire-Rapids-like) machine.

use catalyze::basis::cpu_flops_basis;
use catalyze::pipeline::{AnalysisConfig, AnalysisRequest};
use catalyze::report;
use catalyze::signature::cpu_flops_signatures;
use catalyze_cat::{Domain, RunnerConfig, SimRequest};
use catalyze_sim::sapphire_rapids_like;

fn main() {
    let events = sapphire_rapids_like();
    let cfg = RunnerConfig::default_sim();

    println!("running the CAT CPU-FLOPs benchmark (16 kernels x 3 loops)...\n");
    let ms = SimRequest::new()
        .domain(Domain::CpuFlops)
        .events(&events)
        .config(&cfg)
        .run()
        .expect("valid request");

    let basis = cpu_flops_basis();
    let signatures = cpu_flops_signatures();
    let analysis = AnalysisRequest::new()
        .domain("cpu-flops")
        .events(&ms.events)
        .runs(&ms.runs)
        .basis(&basis)
        .signatures(&signatures)
        .config(AnalysisConfig::cpu_flops())
        .run()
        .expect("simulated measurements analyze cleanly");

    print!("{}", report::noise_summary(&analysis.noise));
    println!(
        "representable in the FLOPs expectation basis: {} events ({} rejected)\n",
        analysis.representation.kept.len(),
        analysis.representation.rejected.len()
    );
    print!("{}", report::selection_table(&analysis));

    println!();
    print!(
        "{}",
        report::metrics_table("CPU Floating-Point Metrics (paper Table V)", &analysis.metrics)
    );

    println!("\n== verdicts ==");
    for m in &analysis.metrics {
        let verdict = if m.is_composable(analysis.config.composability_threshold) {
            "composable"
        } else {
            "NOT composable on this architecture"
        };
        println!("{:<18} {verdict} (error {:.2e})", m.metric, m.error);
    }
    println!(
        "\nThe FMA metrics fail because FP_ARITH_INST_RETIRED counts an FMA\n\
         instruction twice and the machine has no dedicated FMA event —\n\
         the analysis detects the absence automatically (error ~2.4e-1)."
    );
}
