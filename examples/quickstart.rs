//! Quickstart: measure the branching benchmark on the simulated machine and
//! let the pipeline define branch metrics from raw events.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use catalyze::basis::branch_basis;
use catalyze::pipeline::{AnalysisConfig, AnalysisRequest};
use catalyze::report;
use catalyze::signature::branch_signatures;
use catalyze_cat::{Domain, RunnerConfig, SimRequest};
use catalyze_sim::sapphire_rapids_like;

fn main() {
    // 1. The machine: a simulated CPU exposing ~300 raw events.
    let events = sapphire_rapids_like();
    println!("machine exposes {} raw events\n", events.len());

    // 2. Run the CAT branching benchmark (11 microkernels, 5 repetitions),
    //    measuring every event.
    let cfg = RunnerConfig::default_sim();
    let measurements = SimRequest::new()
        .domain(Domain::Branch)
        .events(&events)
        .config(&cfg)
        .run()
        .expect("valid request");
    println!(
        "measured {} events over {} kernels, {} repetitions\n",
        measurements.num_events(),
        measurements.num_points(),
        measurements.num_runs()
    );

    // 3. Analyze: noise filter -> expectation basis -> specialized QRCP ->
    //    least-squares metric definitions.
    let basis = branch_basis();
    let signatures = branch_signatures();
    let analysis = AnalysisRequest::new()
        .domain("branch")
        .events(&measurements.events)
        .runs(&measurements.runs)
        .basis(&basis)
        .signatures(&signatures)
        .config(AnalysisConfig::branch())
        .run()
        .expect("simulated measurements analyze cleanly");

    print!("{}", report::noise_summary(&analysis.noise));
    println!();
    print!("{}", report::selection_table(&analysis));
    println!();
    print!("{}", report::metrics_table("Branching Metrics (paper Table VII)", &analysis.metrics));

    // 4. Export composable metrics as PAPI-style presets.
    println!("\n== presets ==");
    for m in analysis.composable_metrics() {
        print!("{}", m.to_preset(1e-6));
    }
}
