//! Exploring measurement noise (the paper's §IV): the max-RNMSE variability
//! distribution per benchmark, how the threshold τ splits it, and the ASCII
//! rendition of Figure 2.

use catalyze::report;
use catalyze_bench::{ablations, Harness, Scale};

fn main() {
    let h = Harness::new(Scale::Full);

    for (name, caption) in [
        ("branch", "Figure 2a: branching benchmark"),
        ("cpu-flops", "Figure 2b: CPU-FLOPs benchmark"),
        ("dcache", "Figure 2d: data-cache benchmark"),
    ] {
        let d = h.domain(name).expect("known domain").expect("domain analyzes");
        println!("== {caption} ==");
        print!("{}", report::noise_summary(&d.analysis.noise));
        println!("{}", report::figure2_ascii(&d.analysis.noise, 70));

        if name == "branch" {
            println!("-- tau sweep: kept-event counts --");
            for row in ablations::tau_sweep(&d, &[1e-15, 1e-12, 1e-10, 1e-8, 1e-4, 1e-1, 1e2]) {
                println!("  tau {:>8.0e} -> kept {:>4}  noisy {:>4}", row.tau, row.kept, row.noisy);
            }
            println!(
                "\nAny tau between the zero-noise cluster and the noisy tail picks\n\
                 the same events — the threshold needs no careful tuning (§IV).\n"
            );
        }
        if name == "dcache" {
            println!(
                "The cache panel has no clean gap: hit/miss events carry real\n\
                 noise, so the paper (and this pipeline) use the lenient tau = 1e-1\n\
                 and rely on per-thread medians plus coefficient rounding instead.\n"
            );
        }
    }
}
