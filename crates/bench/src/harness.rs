//! Measurement + analysis plumbing shared by the `repro` binary, the
//! ablations, and the Criterion benches.

use catalyze::basis::{self, Basis, CacheRegion};
use catalyze::pipeline::{AnalysisConfig, AnalysisReport, AnalysisRequest};
use catalyze::signature::{self, MetricSignature};
use catalyze::AnalysisError;
use catalyze_cat::{
    dcache, dstore, dtlb, measure_branch, measure_cpu_flops, measure_dcache, measure_dstore,
    measure_dtlb, measure_gpu_flops, MeasurementSet, RunnerConfig,
};
use catalyze_obs::{render_metrics_json, MetricsRegistry, NoopObserver, Observer, TraceCollector};
use catalyze_sim::{mi250x_like, sapphire_rapids_like, CpuEventSet, GpuEventSet};

/// Every benchmark domain the harness can run, in reproduction order.
pub const DOMAINS: [&str; 6] = ["cpu-flops", "branch", "dcache", "gpu-flops", "dtlb", "dstore"];

/// Harness scale: the full paper-size runs or a down-scaled smoke variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale parameters (the default for `repro`).
    Full,
    /// Reduced trip counts and repetitions for quick iteration and tests.
    Fast,
}

impl Scale {
    /// Stable lowercase label (`full`/`fast`) for machine-readable output.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Full => "full",
            Scale::Fast => "fast",
        }
    }
}

/// A benchmark domain's measurements together with its analysis.
pub struct DomainResult {
    /// The raw measurements.
    pub measurements: MeasurementSet,
    /// The domain's expectation basis.
    pub basis: Basis,
    /// The metric signatures defined over that basis.
    pub signatures: Vec<MetricSignature>,
    /// The pipeline output.
    pub analysis: AnalysisReport,
}

/// Shared state: event inventories and runner configuration.
pub struct Harness {
    /// Runner configuration (core, PMU, repetitions, trip counts).
    pub cfg: RunnerConfig,
    /// The Sapphire-Rapids-like CPU event inventory.
    pub cpu_events: CpuEventSet,
    /// The MI250X-like GPU event inventory (8 devices).
    pub gpu_events: GpuEventSet,
}

impl Harness {
    /// Builds a harness at the given scale.
    pub fn new(scale: Scale) -> Self {
        let cfg = match scale {
            Scale::Full => RunnerConfig::default_sim(),
            Scale::Fast => {
                let mut c = RunnerConfig::fast_test();
                c.repetitions = 3;
                c.flops_trips = 512;
                c.branch_iterations = 1024;
                c
            }
        };
        let gpu_devices = cfg.gpu_devices;
        Self { cfg, cpu_events: sapphire_rapids_like(), gpu_events: mi250x_like(gpu_devices) }
    }

    /// Cache regions of the pointer-chase sweep, in `catalyze` terms.
    pub fn cache_regions(&self) -> Vec<CacheRegion> {
        dcache::point_regions(&self.cfg.core.hierarchy)
            .into_iter()
            .map(|r| match r {
                dcache::Region::L1 => CacheRegion::L1,
                dcache::Region::L2 => CacheRegion::L2,
                dcache::Region::L3 => CacheRegion::L3,
                dcache::Region::Memory => CacheRegion::Memory,
            })
            .collect()
    }

    /// The expectation basis, metric signatures, and stage configuration of
    /// one domain. `None` for an unknown name.
    pub fn domain_inputs(
        &self,
        name: &str,
    ) -> Option<(Basis, Vec<MetricSignature>, AnalysisConfig)> {
        match name {
            "cpu-flops" => Some((
                basis::cpu_flops_basis(),
                signature::cpu_flops_signatures(),
                AnalysisConfig::cpu_flops(),
            )),
            "branch" => Some((
                basis::branch_basis(),
                signature::branch_signatures(),
                AnalysisConfig::branch(),
            )),
            "dcache" => Some((
                basis::dcache_basis(&self.cache_regions()),
                signature::dcache_signatures(),
                AnalysisConfig::dcache(),
            )),
            "gpu-flops" => Some((
                basis::gpu_flops_basis(),
                signature::gpu_flops_signatures(),
                AnalysisConfig::gpu_flops(),
            )),
            "dtlb" => Some((
                basis::dtlb_basis(&dtlb::point_hit_regions(&self.cfg.core.tlb)),
                signature::dtlb_signatures(),
                AnalysisConfig::dtlb(),
            )),
            "dstore" => {
                let regions: Vec<CacheRegion> = dstore::point_regions(&self.cfg.core.hierarchy)
                    .into_iter()
                    .map(|r| match r {
                        dstore::Region::L1 => CacheRegion::L1,
                        dstore::Region::L2 => CacheRegion::L2,
                        dstore::Region::L3 => CacheRegion::L3,
                        dstore::Region::Memory => CacheRegion::Memory,
                    })
                    .collect();
                Some((
                    basis::dstore_basis(&regions),
                    signature::dstore_signatures(),
                    AnalysisConfig::dstore(),
                ))
            }
            _ => None,
        }
    }

    /// Runs one domain's benchmark under the observer. `None` for an
    /// unknown name.
    pub fn measure(&self, name: &str, obs: &dyn Observer) -> Option<MeasurementSet> {
        match name {
            "cpu-flops" => Some(measure_cpu_flops(&self.cpu_events, &self.cfg, obs)),
            "branch" => Some(measure_branch(&self.cpu_events, &self.cfg, obs)),
            "dcache" => Some(measure_dcache(&self.cpu_events, &self.cfg, obs)),
            "gpu-flops" => Some(measure_gpu_flops(&self.gpu_events, &self.cfg, obs)),
            "dtlb" => Some(measure_dtlb(&self.cpu_events, &self.cfg, obs)),
            "dstore" => Some(measure_dstore(&self.cpu_events, &self.cfg, obs)),
            _ => None,
        }
    }

    /// Runs one domain by name — benchmark plus analysis — threading the
    /// observer through both. This is the single implementation the six
    /// named wrappers and [`Harness::domain`] share. `None` for an unknown
    /// name; the inner `Result` carries analysis failures.
    pub fn domain_obs(
        &self,
        name: &str,
        obs: &dyn Observer,
    ) -> Option<Result<DomainResult, AnalysisError>> {
        let measurements = self.measure(name, obs)?;
        let (basis, signatures, config) = self.domain_inputs(name)?;
        let analysis = AnalysisRequest::new()
            .domain(name)
            .events(&measurements.events)
            .runs(&measurements.runs)
            .basis(&basis)
            .signatures(&signatures)
            .config(config)
            .observer(obs)
            .run();
        match analysis {
            Ok(analysis) => Some(Ok(DomainResult { measurements, basis, signatures, analysis })),
            Err(e) => Some(Err(e)),
        }
    }

    /// Runs one domain by name (`cpu-flops`, `branch`, `dcache`,
    /// `gpu-flops`, `dtlb`, `dstore`) without instrumentation. `None` for
    /// an unknown name; the inner `Result` carries analysis failures.
    pub fn domain(&self, name: &str) -> Option<Result<DomainResult, AnalysisError>> {
        self.domain_obs(name, &NoopObserver)
    }

    fn known(&self, name: &'static str) -> Result<DomainResult, AnalysisError> {
        // lint: allow(panic): the named wrappers pass only DOMAINS members
        self.domain(name).expect("known domain name")
    }

    /// Runs the CPU-FLOPs benchmark and analysis (paper §V.A, Table V,
    /// Fig. 2b).
    pub fn cpu_flops(&self) -> Result<DomainResult, AnalysisError> {
        self.known("cpu-flops")
    }

    /// Runs the branching benchmark and analysis (§V.C, Table VII,
    /// Fig. 2a).
    pub fn branch(&self) -> Result<DomainResult, AnalysisError> {
        self.known("branch")
    }

    /// Runs the data-cache benchmark and analysis (§V.D, Table VIII,
    /// Figs. 2d and 3).
    pub fn dcache(&self) -> Result<DomainResult, AnalysisError> {
        self.known("dcache")
    }

    /// Runs the GPU-FLOPs benchmark and analysis (§V.B, Table VI,
    /// Fig. 2c).
    pub fn gpu_flops(&self) -> Result<DomainResult, AnalysisError> {
        self.known("gpu-flops")
    }

    /// Runs the data-TLB extension benchmark and analysis (beyond the
    /// paper: its future-work direction of covering further hardware
    /// attributes).
    pub fn dtlb(&self) -> Result<DomainResult, AnalysisError> {
        self.known("dtlb")
    }

    /// Runs the store-path extension benchmark and analysis.
    pub fn dstore(&self) -> Result<DomainResult, AnalysisError> {
        self.known("dstore")
    }

    /// Runs every domain under a fresh trace collector and renders the
    /// `BENCH_pipeline.json` performance snapshot: per-domain span timings,
    /// funnel records, and linalg solve counters in the `catalyze-obs`
    /// trace schema, wrapped in a versioned envelope:
    ///
    /// ```json
    /// {"version": 1, "scale": "fast", "domains": [
    ///   {"domain": "cpu-flops", "trace": { ... }}
    /// ]}
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first failing domain analysis.
    pub fn perf_snapshot(&self, scale: Scale) -> Result<String, AnalysisError> {
        let mut domains = Vec::new();
        for name in DOMAINS {
            let trace = TraceCollector::new();
            // lint: allow(panic): DOMAINS lists only known domain names
            self.domain_obs(name, &trace).expect("known domain name")?;
            domains.push(format!("{{\"domain\":\"{name}\",\"trace\":{}}}", trace.render_json()));
        }
        Ok(format!(
            "{{\"version\":1,\"scale\":\"{}\",\"domains\":[{}]}}\n",
            scale.label(),
            domains.join(",")
        ))
    }

    /// Runs every domain `repeats` times, folds each run's trace into one
    /// [`MetricsRegistry`], and renders the `BENCH_obs.json` aggregate:
    /// the `metrics.v1` document wrapped in a versioned envelope that
    /// `catalyze trace diff` loads directly:
    ///
    /// ```json
    /// {"version": 1, "scale": "fast", "repeats": 2, "metrics": { ... }}
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first failing domain analysis.
    pub fn obs_snapshot(&self, scale: Scale, repeats: u32) -> Result<String, AnalysisError> {
        let mut registry = MetricsRegistry::new();
        for _ in 0..repeats.max(1) {
            for name in DOMAINS {
                let trace = TraceCollector::new();
                // lint: allow(panic): DOMAINS lists only known domain names
                self.domain_obs(name, &trace).expect("known domain name")?;
                registry.fold(&trace);
            }
        }
        Ok(format!(
            "{{\"version\":1,\"scale\":\"{}\",\"repeats\":{},\"metrics\":{}}}\n",
            scale.label(),
            repeats.max(1),
            render_metrics_json(&registry)
        ))
    }

    /// The repeat count `repro perf` uses for [`Harness::obs_snapshot`]:
    /// enough runs for the histograms to carry a spread without tripling
    /// the full-scale wall time.
    pub fn obs_repeats(scale: Scale) -> u32 {
        match scale {
            Scale::Full => 3,
            Scale::Fast => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_harness_runs_every_domain() {
        let h = Harness::new(Scale::Fast);
        for name in ["cpu-flops", "branch", "gpu-flops"] {
            let d = h.domain(name).unwrap().unwrap();
            assert!(!d.analysis.metrics.is_empty(), "{name}");
            assert_eq!(d.basis.points(), d.measurements.num_points(), "{name}");
        }
        assert!(h.domain("nope").is_none());
    }

    #[test]
    fn cache_regions_cover_sweep() {
        let h = Harness::new(Scale::Fast);
        let regions = h.cache_regions();
        assert_eq!(regions.len(), 16);
    }

    #[test]
    fn traced_domain_produces_identical_report() {
        let h = Harness::new(Scale::Fast);
        let trace = TraceCollector::new();
        let traced = h.domain_obs("branch", &trace).unwrap().unwrap();
        let plain = h.branch().unwrap();
        // Instrumentation must not perturb the analysis.
        let a = serde_json::to_string(&traced.analysis).unwrap();
        let b = serde_json::to_string(&plain.analysis).unwrap();
        assert_eq!(a, b);
        assert!(trace.span_count() >= 7, "runner + pipeline spans, got {}", trace.span_count());
        assert!(trace.funnel_records().iter().all(|f| f.reconciles()));
    }

    #[test]
    fn obs_snapshot_aggregates_every_domain() {
        let h = Harness::new(Scale::Fast);
        let snapshot = h.obs_snapshot(Scale::Fast, 2).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&snapshot).unwrap();
        assert_eq!(parsed["version"].as_u64(), Some(1));
        assert_eq!(parsed["scale"].as_str(), Some("fast"));
        assert_eq!(parsed["repeats"].as_u64(), Some(2));
        let metrics = &parsed["metrics"];
        assert_eq!(metrics["schema"].as_str(), Some("metrics.v1"));
        assert_eq!(metrics["runs"].as_u64(), Some(12), "6 domains x 2 repeats");
        let spans = metrics["spans"].as_array().unwrap();
        let names: Vec<&str> = spans.iter().filter_map(|s| s["name"].as_str()).collect();
        for domain in DOMAINS {
            assert!(names.contains(&format!("analyze/{domain}").as_str()), "{names:?}");
        }
        // The diff loader reads the envelope without unwrapping.
        let loaded = catalyze_obs::Snapshot::from_json(&snapshot).unwrap();
        assert!(loaded.spans.contains_key("analyze/branch"));
        assert!(!loaded.counters.is_empty());
    }

    #[test]
    fn perf_snapshot_is_valid_versioned_json() {
        let h = Harness::new(Scale::Fast);
        let snapshot = h.perf_snapshot(Scale::Fast).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&snapshot).unwrap();
        assert_eq!(parsed["version"].as_u64(), Some(1));
        assert_eq!(parsed["scale"].as_str(), Some("fast"));
        let domains = parsed["domains"].as_array().unwrap();
        assert_eq!(domains.len(), DOMAINS.len());
        for d in domains {
            assert_eq!(d["trace"]["version"].as_u64(), Some(1));
            assert!(!d["trace"]["spans"].as_array().unwrap().is_empty());
        }
    }
}
