//! Measurement + analysis plumbing shared by the `repro` binary, the
//! ablations, and the Criterion benches.

use catalyze::basis::{self, Basis, CacheRegion};
use catalyze::pipeline::{analyze, AnalysisConfig, AnalysisReport};
use catalyze::signature::{self, MetricSignature};
use catalyze::LinalgError;
use catalyze_cat::{
    dcache, dstore, dtlb, run_branch, run_cpu_flops, run_dcache, run_dstore, run_dtlb,
    run_gpu_flops, MeasurementSet, RunnerConfig,
};
use catalyze_sim::{mi250x_like, sapphire_rapids_like, CpuEventSet, GpuEventSet};

/// Harness scale: the full paper-size runs or a down-scaled smoke variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale parameters (the default for `repro`).
    Full,
    /// Reduced trip counts and repetitions for quick iteration and tests.
    Fast,
}

/// A benchmark domain's measurements together with its analysis.
pub struct DomainResult {
    /// The raw measurements.
    pub measurements: MeasurementSet,
    /// The domain's expectation basis.
    pub basis: Basis,
    /// The metric signatures defined over that basis.
    pub signatures: Vec<MetricSignature>,
    /// The pipeline output.
    pub analysis: AnalysisReport,
}

/// Shared state: event inventories and runner configuration.
pub struct Harness {
    /// Runner configuration (core, PMU, repetitions, trip counts).
    pub cfg: RunnerConfig,
    /// The Sapphire-Rapids-like CPU event inventory.
    pub cpu_events: CpuEventSet,
    /// The MI250X-like GPU event inventory (8 devices).
    pub gpu_events: GpuEventSet,
}

impl Harness {
    /// Builds a harness at the given scale.
    pub fn new(scale: Scale) -> Self {
        let cfg = match scale {
            Scale::Full => RunnerConfig::default_sim(),
            Scale::Fast => {
                let mut c = RunnerConfig::fast_test();
                c.repetitions = 3;
                c.flops_trips = 512;
                c.branch_iterations = 1024;
                c
            }
        };
        let gpu_devices = cfg.gpu_devices;
        Self { cfg, cpu_events: sapphire_rapids_like(), gpu_events: mi250x_like(gpu_devices) }
    }

    /// Cache regions of the pointer-chase sweep, in `catalyze` terms.
    pub fn cache_regions(&self) -> Vec<CacheRegion> {
        dcache::point_regions(&self.cfg.core.hierarchy)
            .into_iter()
            .map(|r| match r {
                dcache::Region::L1 => CacheRegion::L1,
                dcache::Region::L2 => CacheRegion::L2,
                dcache::Region::L3 => CacheRegion::L3,
                dcache::Region::Memory => CacheRegion::Memory,
            })
            .collect()
    }

    /// Runs the CPU-FLOPs benchmark and analysis (paper §V.A, Table V,
    /// Fig. 2b).
    pub fn cpu_flops(&self) -> Result<DomainResult, LinalgError> {
        let measurements = run_cpu_flops(&self.cpu_events, &self.cfg);
        let basis = basis::cpu_flops_basis();
        let signatures = signature::cpu_flops_signatures();
        let analysis = analyze(
            "cpu-flops",
            &measurements.events,
            &measurements.runs,
            &basis,
            &signatures,
            AnalysisConfig::cpu_flops(),
        )?;
        Ok(DomainResult { measurements, basis, signatures, analysis })
    }

    /// Runs the branching benchmark and analysis (§V.C, Table VII,
    /// Fig. 2a).
    pub fn branch(&self) -> Result<DomainResult, LinalgError> {
        let measurements = run_branch(&self.cpu_events, &self.cfg);
        let basis = basis::branch_basis();
        let signatures = signature::branch_signatures();
        let analysis = analyze(
            "branch",
            &measurements.events,
            &measurements.runs,
            &basis,
            &signatures,
            AnalysisConfig::branch(),
        )?;
        Ok(DomainResult { measurements, basis, signatures, analysis })
    }

    /// Runs the data-cache benchmark and analysis (§V.D, Table VIII,
    /// Figs. 2d and 3).
    pub fn dcache(&self) -> Result<DomainResult, LinalgError> {
        let measurements = run_dcache(&self.cpu_events, &self.cfg);
        let basis = basis::dcache_basis(&self.cache_regions());
        let signatures = signature::dcache_signatures();
        let analysis = analyze(
            "dcache",
            &measurements.events,
            &measurements.runs,
            &basis,
            &signatures,
            AnalysisConfig::dcache(),
        )?;
        Ok(DomainResult { measurements, basis, signatures, analysis })
    }

    /// Runs the GPU-FLOPs benchmark and analysis (§V.B, Table VI,
    /// Fig. 2c).
    pub fn gpu_flops(&self) -> Result<DomainResult, LinalgError> {
        let measurements = run_gpu_flops(&self.gpu_events, &self.cfg);
        let basis = basis::gpu_flops_basis();
        let signatures = signature::gpu_flops_signatures();
        let analysis = analyze(
            "gpu-flops",
            &measurements.events,
            &measurements.runs,
            &basis,
            &signatures,
            AnalysisConfig::gpu_flops(),
        )?;
        Ok(DomainResult { measurements, basis, signatures, analysis })
    }

    /// Runs the data-TLB extension benchmark and analysis (beyond the
    /// paper: its future-work direction of covering further hardware
    /// attributes).
    pub fn dtlb(&self) -> Result<DomainResult, LinalgError> {
        let measurements = run_dtlb(&self.cpu_events, &self.cfg);
        let hit_regions = dtlb::point_hit_regions(&self.cfg.core.tlb);
        let basis = basis::dtlb_basis(&hit_regions);
        let signatures = signature::dtlb_signatures();
        let analysis = analyze(
            "dtlb",
            &measurements.events,
            &measurements.runs,
            &basis,
            &signatures,
            AnalysisConfig::dtlb(),
        )?;
        Ok(DomainResult { measurements, basis, signatures, analysis })
    }

    /// Runs the store-path extension benchmark and analysis.
    pub fn dstore(&self) -> Result<DomainResult, LinalgError> {
        let measurements = run_dstore(&self.cpu_events, &self.cfg);
        let regions: Vec<CacheRegion> = dstore::point_regions(&self.cfg.core.hierarchy)
            .into_iter()
            .map(|r| match r {
                dstore::Region::L1 => CacheRegion::L1,
                dstore::Region::L2 => CacheRegion::L2,
                dstore::Region::L3 => CacheRegion::L3,
                dstore::Region::Memory => CacheRegion::Memory,
            })
            .collect();
        let basis = basis::dstore_basis(&regions);
        let signatures = signature::dstore_signatures();
        let analysis = analyze(
            "dstore",
            &measurements.events,
            &measurements.runs,
            &basis,
            &signatures,
            AnalysisConfig::dstore(),
        )?;
        Ok(DomainResult { measurements, basis, signatures, analysis })
    }

    /// Runs one domain by name (`cpu-flops`, `branch`, `dcache`,
    /// `gpu-flops`). `None` for an unknown name; the inner `Result`
    /// carries analysis failures.
    pub fn domain(&self, name: &str) -> Option<Result<DomainResult, LinalgError>> {
        match name {
            "cpu-flops" => Some(self.cpu_flops()),
            "branch" => Some(self.branch()),
            "dcache" => Some(self.dcache()),
            "gpu-flops" => Some(self.gpu_flops()),
            "dtlb" => Some(self.dtlb()),
            "dstore" => Some(self.dstore()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_harness_runs_every_domain() {
        let h = Harness::new(Scale::Fast);
        for name in ["cpu-flops", "branch", "gpu-flops"] {
            let d = h.domain(name).unwrap().unwrap();
            assert!(!d.analysis.metrics.is_empty(), "{name}");
            assert_eq!(d.basis.points(), d.measurements.num_points(), "{name}");
        }
        assert!(h.domain("nope").is_none());
    }

    #[test]
    fn cache_regions_cover_sweep() {
        let h = Harness::new(Scale::Fast);
        let regions = h.cache_regions();
        assert_eq!(regions.len(), 16);
    }
}
