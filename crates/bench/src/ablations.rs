//! Ablation studies for the design choices the paper argues for:
//!
//! * **pivot rule** — classical max-norm QRCP vs the specialized scheme
//!   (§II's motivation: cycles-like large-norm columns hijack the standard
//!   pivoting);
//! * **α sensitivity** (§V.E) — a wide band of tolerances yields the same
//!   selection;
//! * **τ sensitivity** (§IV) — where the noise threshold can be placed;
//! * **per-thread median** (§IV/VII) — how much noise the median across
//!   cache-benchmark threads suppresses.

use crate::harness::{DomainResult, Harness};
use catalyze::noise::max_rnmse;
use catalyze::pipeline::{AnalysisConfig, AnalysisRequest};
use catalyze_cat::{measure_dcache_threads, median_across_threads};
use catalyze_linalg::{qrcp, specialized_qrcp, SpQrcpParams};

/// Outcome of the pivot-rule ablation on one domain.
#[derive(Debug, Clone)]
// lint: allow(dead_api): returned by the ablation API; fields are read by the repro binary via Debug/serde-style dumps
pub struct PivotAblation {
    /// Events chosen by the paper's specialized scheme, in pivot order.
    pub specialized: Vec<String>,
    /// Events chosen by classical max-norm pivoting, in pivot order.
    pub standard: Vec<String>,
}

/// Compares the two pivot rules on a domain's representation matrix.
///
/// To expose the failure mode the paper describes, the comparison runs on
/// the representation matrix *with columns scaled back to measurement
/// magnitude* (‖m_e‖): classical QRCP ranks by norm, so cycle-scaled events
/// dominate; the specialized scheme is scale-aware through its scoring.
pub fn pivot_rule_ablation(domain: &DomainResult) -> PivotAblation {
    let rep = &domain.analysis.representation;
    // lint: allow(panic): ablation input is a non-empty representation by construction
    let x = rep.x_matrix().expect("non-empty representation");
    // Scale each column by the norm of its original measurement vector.
    let mut scaled = x.clone();
    for (j, event) in rep.kept.iter().enumerate() {
        let m = domain
            .measurements
            .event_index(&event.name)
            .map(|e| domain.measurements.mean_vector(e))
            // lint: allow(panic): kept events come from the same measurement set
            .expect("kept events come from the measurement set");
        let norm = catalyze_linalg::vector::norm2(&m);
        let col = scaled.col_mut(j);
        catalyze_linalg::vector::scale(col, norm.max(1e-300));
    }
    let spec = specialized_qrcp(&x, SpQrcpParams::new(domain.analysis.config.alpha))
        // lint: allow(panic): scaled copy preserves the validated shape
        .expect("valid matrix");
    // lint: allow(panic): scaled copy preserves the validated shape
    let std = qrcp(&scaled, 1e-10).expect("valid matrix");
    PivotAblation {
        specialized: spec.selected().iter().map(|&j| rep.kept[j].name.clone()).collect(),
        standard: std.selected().iter().map(|&j| rep.kept[j].name.clone()).collect(),
    }
}

/// One row of the α-sensitivity sweep.
#[derive(Debug, Clone)]
// lint: allow(dead_api): row type returned by alpha_sweep; part of the ablation result surface
pub struct AlphaRow {
    /// The tolerance value.
    pub alpha: f64,
    /// Events selected at this tolerance (sorted).
    pub selected: Vec<String>,
    /// Whether the selection matches the paper-default selection.
    pub matches_default: bool,
}

/// Sweeps α over `values` and reports the selection at each setting.
///
/// # Errors
///
/// Propagates a selection failure (non-finite representation matrix).
pub fn alpha_sweep(
    domain: &DomainResult,
    values: &[f64],
) -> Result<Vec<AlphaRow>, catalyze::LinalgError> {
    let mut default: Vec<String> =
        domain.analysis.selection.events.iter().map(|e| e.name.clone()).collect();
    default.sort();
    values
        .iter()
        .map(|&alpha| {
            let rep = &domain.analysis.representation;
            let sel = catalyze::select::select_events(rep, alpha)?;
            let mut names: Vec<String> = sel.events.iter().map(|e| e.name.clone()).collect();
            names.sort();
            Ok(AlphaRow { alpha, matches_default: names == default, selected: names })
        })
        .collect()
}

/// One row of the τ-sensitivity sweep.
#[derive(Debug, Clone)]
// lint: allow(dead_api): row type returned by tau_sweep; part of the ablation result surface
pub struct TauRow {
    /// The threshold value.
    pub tau: f64,
    /// Events surviving the variability filter.
    pub kept: usize,
    /// Events discarded as noisy.
    pub noisy: usize,
}

/// Sweeps the noise threshold τ and reports how many events survive.
pub fn tau_sweep(domain: &DomainResult, values: &[f64]) -> Vec<TauRow> {
    let ms = &domain.measurements;
    values
        .iter()
        .map(|&tau| {
            let mut kept = 0;
            let mut noisy = 0;
            for e in 0..ms.num_events() {
                let vectors = ms.vectors_for_event(e);
                match max_rnmse(&vectors) {
                    Some(v) if v <= tau => kept += 1,
                    Some(_) => noisy += 1,
                    None => {}
                }
            }
            TauRow { tau, kept, noisy }
        })
        .collect()
}

/// Outcome of the per-thread-median ablation.
#[derive(Debug, Clone)]
// lint: allow(dead_api): returned by median_ablation, which the repro binary calls
pub struct MedianAblation {
    /// Max-RNMSE of the key cache events using a single thread's readings.
    pub single_thread: Vec<(String, f64)>,
    /// Max-RNMSE of the same events after the per-thread median.
    pub with_median: Vec<(String, f64)>,
}

/// Measures how much the per-thread median suppresses cache-event noise.
pub fn median_ablation(h: &Harness) -> MedianAblation {
    let per_thread = measure_dcache_threads(&h.cpu_events, &h.cfg, &catalyze_obs::NoopObserver);
    let median = median_across_threads(&per_thread);
    let events = [
        "MEM_LOAD_RETIRED:L1_HIT",
        "MEM_LOAD_RETIRED:L1_MISS",
        "L2_RQSTS:DEMAND_DATA_RD_HIT",
        "MEM_LOAD_RETIRED:L3_HIT",
    ];
    let variability = |ms: &catalyze_cat::MeasurementSet, name: &str| -> f64 {
        // lint: allow(panic): the key cache events are part of the shipped inventory
        let e = ms.event_index(name).expect("key cache event present");
        max_rnmse(&ms.vectors_for_event(e)).unwrap_or(1.0)
    };
    MedianAblation {
        single_thread: events
            .iter()
            .map(|&n| (n.to_string(), variability(&per_thread[0], n)))
            .collect(),
        with_median: events.iter().map(|&n| (n.to_string(), variability(&median, n))).collect(),
    }
}

/// Re-analyzes the cache domain *without* the per-thread median (first
/// thread only) so the effect on the final metric definitions can be
/// compared.
///
/// # Errors
///
/// Propagates analysis failures from the pipeline's linear-algebra stages.
// lint: allow(dead_api): ablation entry point kept for table reproduction alongside median_ablation
pub fn dcache_without_median(
    h: &Harness,
) -> Result<catalyze::AnalysisReport, catalyze::AnalysisError> {
    let per_thread = measure_dcache_threads(&h.cpu_events, &h.cfg, &catalyze_obs::NoopObserver);
    let ms = &per_thread[0];
    let basis = catalyze::basis::dcache_basis(&h.cache_regions());
    let signatures = catalyze::signature::dcache_signatures();
    AnalysisRequest::new()
        .domain("dcache (single thread)")
        .events(&ms.events)
        .runs(&ms.runs)
        .basis(&basis)
        .signatures(&signatures)
        .config(AnalysisConfig::dcache())
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn pivot_ablation_shows_divergence() {
        let h = Harness::new(Scale::Fast);
        let d = h.dcache().unwrap();
        let ab = pivot_rule_ablation(&d);
        assert_eq!(ab.specialized.len(), 4);
        assert!(!ab.standard.is_empty());
        // The standard rule must rank a large-norm (cycles/uncore-scaled)
        // column first — not one of the four clean cache events.
        let clean = [
            "MEM_LOAD_RETIRED:L1_HIT",
            "MEM_LOAD_RETIRED:L1_MISS",
            "L2_RQSTS:DEMAND_DATA_RD_HIT",
            "MEM_LOAD_RETIRED:L3_HIT",
        ];
        assert!(
            !clean.contains(&ab.standard[0].as_str()),
            "standard QRCP picked {} first",
            ab.standard[0]
        );
        assert!(clean.contains(&ab.specialized[0].as_str()));
    }

    #[test]
    fn alpha_sweep_stable_over_decades() {
        let h = Harness::new(Scale::Fast);
        let d = h.branch().unwrap();
        let rows = alpha_sweep(&d, &[1e-5, 5e-4, 1e-3, 1e-2]).unwrap();
        for r in &rows {
            assert!(r.matches_default, "alpha {} changed the selection", r.alpha);
        }
    }

    #[test]
    fn tau_sweep_monotone() {
        let h = Harness::new(Scale::Fast);
        let d = h.branch().unwrap();
        let rows = tau_sweep(&d, &[1e-14, 1e-10, 1e-2, 1e2]);
        for w in rows.windows(2) {
            assert!(w[0].kept <= w[1].kept, "kept counts must grow with tau");
        }
        assert!(rows[1].kept > 0);
    }

    #[test]
    fn median_reduces_or_preserves_noise() {
        let h = Harness::new(Scale::Fast);
        let ab = median_ablation(&h);
        let total_single: f64 = ab.single_thread.iter().map(|(_, v)| v).sum();
        let total_median: f64 = ab.with_median.iter().map(|(_, v)| v).sum();
        assert!(
            total_median <= total_single * 1.2,
            "median {total_median} vs single {total_single}"
        );
    }
}
