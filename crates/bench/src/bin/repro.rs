//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all                  # everything below, in order
//! repro table1..table4       # signature tables (paper Tables I–IV)
//! repro table5..table8       # metric-definition tables (Tables V–VIII)
//! repro fig2                 # sorted event variabilities (Figs. 2a–2d)
//! repro fig3                 # cache metric curves (Figs. 3a–3f)
//! repro select-cpu|select-gpu|select-branch|select-cache   (§V.A–D)
//! repro ablate-pivot         # standard vs specialized QRCP (A1)
//! repro ablate-alpha         # α sensitivity (§V.E)
//! repro ablate-tau           # τ sensitivity (§IV)
//! repro ablate-median        # per-thread median suppression (A3)
//! repro dtlb                 # extension domain: data-TLB metrics
//! repro dstore               # extension domain: store-path (RFO) metrics
//! repro perf                 # BENCH_{pipeline,linalg,obs}.json snapshots
//! ```
//!
//! Add `--fast` for a down-scaled run and `--out DIR` to also write
//! gnuplot-ready data files.

use catalyze::report;
use catalyze_bench::ablations;
use catalyze_bench::{DomainResult, Harness, Scale};
use std::fs;
use std::path::PathBuf;

struct Opts {
    command: String,
    scale: Scale,
    out: Option<PathBuf>,
}

fn parse_args() -> Opts {
    let mut command = String::from("all");
    let mut scale = Scale::Full;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fast" => scale = Scale::Fast,
            "--out" => {
                out = args.next().map(PathBuf::from);
                if out.is_none() {
                    eprintln!("--out requires a directory argument");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!("usage: repro [COMMAND] [--fast] [--out DIR]");
                println!("commands: all, table1..table8, fig2, fig3, select-cpu,");
                println!("  select-gpu, select-branch, select-cache, ablate-pivot,");
                println!("  ablate-alpha, ablate-tau, ablate-median, dtlb, dstore, perf");
                std::process::exit(0);
            }
            c if !c.starts_with('-') => command = c.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    Opts { command, scale, out }
}

fn write_out(opts: &Opts, name: &str, content: &str) {
    if let Some(dir) = &opts.out {
        fs::create_dir_all(dir).expect("create output directory");
        let path = dir.join(name);
        fs::write(&path, content).expect("write data file");
        eprintln!("wrote {}", path.display());
    }
}

fn signature_tables(opts: &Opts) {
    use catalyze::basis;
    use catalyze::signature;
    let tables = [
        (
            "table1",
            "Table I: CPU FLOPs Metric Signatures",
            report::signatures_table(
                "Table I: CPU FLOPs Metric Signatures",
                &basis::cpu_flops_basis(),
                &signature::cpu_flops_signatures(),
            ),
        ),
        (
            "table2",
            "Table II: GPU FLOPs Metric Signatures",
            report::signatures_table(
                "Table II: GPU FLOPs Metric Signatures",
                &basis::gpu_flops_basis(),
                &signature::gpu_flops_signatures(),
            ),
        ),
        (
            "table3",
            "Table III: Branching Metric Signatures",
            report::signatures_table(
                "Table III: Branching Metric Signatures",
                &basis::branch_basis(),
                &signature::branch_signatures(),
            ),
        ),
        (
            "table4",
            "Table IV: Data Cache Metric Signatures",
            report::signatures_table(
                "Table IV: Data Cache Metric Signatures",
                &basis::dcache_basis(&Harness::new(Scale::Fast).cache_regions()),
                &signature::dcache_signatures(),
            ),
        ),
    ];
    for (key, _title, rendered) in tables {
        if opts.command == "all" || opts.command == key {
            println!("{rendered}");
            write_out(opts, &format!("{key}.txt"), &rendered);
        }
    }
}

fn one_signature_table(opts: &Opts) -> bool {
    matches!(opts.command.as_str(), "all" | "table1" | "table2" | "table3" | "table4")
}

fn metric_table(opts: &Opts, key: &str, title: &str, d: &DomainResult) {
    let rendered = report::metrics_table(title, &d.analysis.metrics);
    println!("{rendered}");
    write_out(opts, &format!("{key}.txt"), &rendered);
}

fn selection(opts: &Opts, key: &str, d: &DomainResult) {
    let rendered = report::selection_table(&d.analysis);
    println!("{rendered}");
    write_out(opts, &format!("{key}.txt"), &rendered);
}

fn fig2(opts: &Opts, key: &str, title: &str, d: &DomainResult) {
    println!("-- {title} --");
    print!("{}", report::noise_summary(&d.analysis.noise));
    println!("{}", report::figure2_ascii(&d.analysis.noise, 72));
    write_out(opts, &format!("{key}.dat"), &report::figure2_data(&d.analysis.noise));
    write_out(
        opts,
        &format!("{key}.gp"),
        &catalyze::plot::figure2_script(
            title,
            &format!("{key}.dat"),
            d.analysis.config.tau,
            &format!("{key}.png"),
        ),
    );
}

fn fig3(opts: &Opts, d: &DomainResult) {
    for (panel, sig_name) in [
        ("fig3a", "L1 Hits."),
        ("fig3b", "L1 Misses."),
        ("fig3c", "L1 Reads."),
        ("fig3d", "L2 Hits."),
        ("fig3e", "L2 Misses."),
        ("fig3f", "L3 Hits."),
    ] {
        let sig =
            d.signatures.iter().find(|s| s.name == sig_name).expect("cache signature present");
        let data = report::figure3_data(&d.analysis, &d.basis, sig, &d.measurements.point_labels);
        println!("-- Figure 3 panel {panel}: {sig_name} --");
        print!("{data}");
        println!();
        write_out(opts, &format!("{panel}.dat"), &data);
        write_out(
            opts,
            &format!("{panel}.gp"),
            &catalyze::plot::figure3_script(
                sig_name,
                &format!("{panel}.dat"),
                &format!("{panel}.png"),
            ),
        );
    }
}

fn main() {
    let opts = parse_args();
    let h = Harness::new(opts.scale);
    let cmd = opts.command.as_str();
    let all = cmd == "all";

    if one_signature_table(&opts) {
        signature_tables(&opts);
    }

    // Lazily run only the domains the command needs.
    if all || matches!(cmd, "table5" | "fig2" | "fig2b" | "select-cpu") {
        let d = h.cpu_flops().expect("cpu-flops analysis");
        if all || cmd == "select-cpu" {
            selection(&opts, "select-cpu", &d);
        }
        if all || cmd == "table5" {
            metric_table(&opts, "table5", "Table V: CPU Floating-Point Metrics", &d);
        }
        if all || cmd.starts_with("fig2") {
            fig2(&opts, "fig2b", "Figure 2b: CAT CPU-FLOPs benchmark variabilities", &d);
        }
    }
    if all || matches!(cmd, "table6" | "fig2" | "fig2c" | "select-gpu") {
        let d = h.gpu_flops().expect("gpu-flops analysis");
        if all || cmd == "select-gpu" {
            selection(&opts, "select-gpu", &d);
        }
        if all || cmd == "table6" {
            metric_table(&opts, "table6", "Table VI: GPU Floating-Point Metrics", &d);
        }
        if all || cmd.starts_with("fig2") {
            fig2(&opts, "fig2c", "Figure 2c: CAT GPU-FLOPs benchmark variabilities", &d);
        }
    }
    if all
        || matches!(
            cmd,
            "table7" | "fig2" | "fig2a" | "select-branch" | "ablate-alpha" | "ablate-tau"
        )
    {
        let d = h.branch().expect("branch analysis");
        if all || cmd == "select-branch" {
            selection(&opts, "select-branch", &d);
        }
        if all || cmd == "table7" {
            metric_table(&opts, "table7", "Table VII: Branching Metrics", &d);
        }
        if all || cmd.starts_with("fig2") {
            fig2(&opts, "fig2a", "Figure 2a: CAT branching benchmark variabilities", &d);
        }
        if all || cmd == "ablate-alpha" {
            println!("-- alpha sensitivity (branch domain, §V.E) --");
            let mut text = String::new();
            let sweep = ablations::alpha_sweep(&d, &[1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 1e-2, 5e-2])
                .expect("alpha sweep on a validated representation");
            for row in sweep {
                let line = format!(
                    "alpha {:>8.0e}: {} events, matches default: {}\n",
                    row.alpha,
                    row.selected.len(),
                    row.matches_default
                );
                print!("{line}");
                text.push_str(&line);
            }
            println!();
            write_out(&opts, "ablate-alpha.txt", &text);
        }
        if all || cmd == "ablate-tau" {
            println!("-- tau sensitivity (branch domain, §IV) --");
            let mut text = String::new();
            for row in ablations::tau_sweep(&d, &[1e-15, 1e-12, 1e-10, 1e-8, 1e-4, 1e-2, 1e0, 1e2])
            {
                let line = format!(
                    "tau {:>8.0e}: kept {:>4}, noisy {:>4}\n",
                    row.tau, row.kept, row.noisy
                );
                print!("{line}");
                text.push_str(&line);
            }
            println!();
            write_out(&opts, "ablate-tau.txt", &text);
        }
    }
    if all || matches!(cmd, "table8" | "fig2d" | "fig2" | "fig3" | "select-cache" | "ablate-pivot")
    {
        let d = h.dcache().expect("dcache analysis");
        if all || cmd == "select-cache" {
            selection(&opts, "select-cache", &d);
        }
        if all || cmd == "table8" {
            metric_table(&opts, "table8", "Table VIII: Data Cache Metrics", &d);
        }
        if all || cmd.starts_with("fig2") {
            fig2(&opts, "fig2d", "Figure 2d: CAT data-cache benchmark variabilities", &d);
        }
        if all || cmd == "fig3" {
            fig3(&opts, &d);
        }
        if all || cmd == "ablate-pivot" {
            let ab = ablations::pivot_rule_ablation(&d);
            let mut text = String::from("-- pivot-rule ablation (dcache domain) --\n");
            text.push_str("specialized QRCP selection (paper Algorithm 2):\n");
            for n in &ab.specialized {
                text.push_str(&format!("  {n}\n"));
            }
            text.push_str("classical max-norm QRCP selection (Algorithm 1):\n");
            for n in ab.standard.iter().take(8) {
                text.push_str(&format!("  {n}\n"));
            }
            print!("{text}");
            println!();
            write_out(&opts, "ablate-pivot.txt", &text);
        }
    }
    if all || matches!(cmd, "dtlb" | "select-dtlb") {
        let d = h.dtlb().expect("dtlb analysis");
        selection(&opts, "select-dtlb", &d);
        metric_table(&opts, "table-dtlb", "Extension: Data-TLB Metrics", &d);
    }
    if all || matches!(cmd, "dstore" | "select-dstore") {
        let d = h.dstore().expect("dstore analysis");
        selection(&opts, "select-dstore", &d);
        metric_table(&opts, "table-dstore", "Extension: Store-Path (RFO) Metrics", &d);
    }
    if cmd == "perf" {
        // Re-runs every domain under a trace collector; not part of `all`
        // because the domains above already ran once without tracing.
        let snapshot = h.perf_snapshot(opts.scale).expect("perf snapshot");
        print!("{snapshot}");
        write_out(&opts, "BENCH_pipeline.json", &snapshot);
        let linalg = catalyze_bench::linalg_perf::linalg_snapshot(opts.scale);
        print!("{linalg}");
        write_out(&opts, "BENCH_linalg.json", &linalg);
        let sim = catalyze_bench::sim_perf::sim_snapshot(opts.scale);
        print!("{sim}");
        write_out(&opts, "BENCH_sim.json", &sim);
        let obs =
            h.obs_snapshot(opts.scale, Harness::obs_repeats(opts.scale)).expect("obs snapshot");
        print!("{obs}");
        write_out(&opts, "BENCH_obs.json", &obs);
    }
    if all || cmd == "ablate-median" {
        let ab = ablations::median_ablation(&h);
        let mut text = String::from("-- per-thread median ablation (dcache, §IV/VII) --\n");
        text.push_str(&format!("{:<36} {:>14} {:>14}\n", "event", "single-thread", "median"));
        for ((name, single), (_, med)) in ab.single_thread.iter().zip(&ab.with_median) {
            text.push_str(&format!("{name:<36} {single:>14.4e} {med:>14.4e}\n"));
        }
        print!("{text}");
        println!();
        write_out(&opts, "ablate-median.txt", &text);
    }
}
