//! Factor-once/solve-many performance snapshot (`BENCH_linalg.json`).
//!
//! Measures the analysis hot path's least-squares engine on the CPU-FLOPs
//! basis shape (48 points x 16 events): repeated one-shot [`lstsq`] calls
//! versus one [`FactoredLstsq`] workspace serving the whole batch through
//! `solve_many`. The snapshot also verifies the two paths agree bit for bit
//! and reports the factorization-reuse counters, so a regression in either
//! the speedup or the equivalence shows up in CI.

use catalyze::basis::cpu_flops_basis;
use catalyze_linalg::{lstsq, stats, FactoredLstsq, LstsqSolution, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

use crate::Scale;

/// Timing repetitions per case; the minimum over them is reported.
fn reps(scale: Scale) -> usize {
    match scale {
        Scale::Full => 15,
        Scale::Fast => 5,
    }
}

/// Batch sizes measured per scale. Both scales include the 64-RHS case the
/// CI regression gate keys on.
fn rhs_counts(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Full => &[8, 64, 256],
        Scale::Fast => &[8, 64],
    }
}

fn random_rhs(rows: usize, count: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| (0..rows).map(|_| rng.gen_range(-100.0..100.0)).collect()).collect()
}

/// Minimum wall nanoseconds of `f` over `n` runs (best-of filtering damps
/// scheduler noise without a full criterion session).
fn best_of(n: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..n {
        // lint: allow(raw_timing): best-of benchmark loop; its result is the artifact itself
        let start = Instant::now();
        f();
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        best = best.min(elapsed);
    }
    best
}

fn bits_identical(a: &[LstsqSolution], b: &[LstsqSolution]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.x.len() == y.x.len()
                && x.x.iter().zip(&y.x).all(|(p, q)| p.to_bits() == q.to_bits())
                && x.residual_norm.to_bits() == y.residual_norm.to_bits()
                && x.relative_residual.to_bits() == y.relative_residual.to_bits()
                && x.backward_error.to_bits() == y.backward_error.to_bits()
        })
}

fn solve_per_call(a: &Matrix, rhs: &[Vec<f64>]) -> Vec<LstsqSolution> {
    // lint: allow(panic): the basis matrix is full rank by construction
    rhs.iter().map(|b| lstsq(a, b).expect("full-rank basis")).collect()
}

fn solve_batched(a: &Matrix, rhs: &[Vec<f64>]) -> Vec<LstsqSolution> {
    // lint: allow(panic): the basis matrix is full rank by construction
    let factored = FactoredLstsq::factor(a).expect("full-rank basis");
    let refs: Vec<&[f64]> = rhs.iter().map(|b| b.as_slice()).collect();
    // lint: allow(panic): the basis matrix is full rank by construction
    factored.solve_many(&refs).expect("full-rank basis")
}

/// Renders the versioned `BENCH_linalg.json` snapshot.
pub fn linalg_snapshot(scale: Scale) -> String {
    let basis = cpu_flops_basis();
    let a = &basis.matrix;
    let (rows, cols) = a.shape();
    let n = reps(scale);

    let mut cases = Vec::new();
    for (i, &k) in rhs_counts(scale).iter().enumerate() {
        let rhs = random_rhs(rows, k, 0xBE7C_u64 + i as u64);
        let per_call_ns = best_of(n, || {
            std::hint::black_box(solve_per_call(a, &rhs));
        });
        let batched_ns = best_of(n, || {
            std::hint::black_box(solve_batched(a, &rhs));
        });
        let identical = bits_identical(&solve_per_call(a, &rhs), &solve_batched(a, &rhs));
        // Reuse counters for one batched run (factor + solve_many).
        let before = stats::snapshot();
        std::hint::black_box(solve_batched(a, &rhs));
        let delta = stats::snapshot().delta_since(&before);
        let speedup = per_call_ns as f64 / batched_ns.max(1) as f64;
        cases.push(format!(
            "{{\"rhs\":{k},\"per_call_ns\":{per_call_ns},\"batched_ns\":{batched_ns},\
             \"speedup\":{speedup:.3},\"identical\":{identical},\
             \"qr_avoided\":{},\"spectral_cached\":{}}}",
            delta.qr_factorizations_avoided, delta.spectral_norms_cached
        ));
    }
    format!(
        "{{\"version\":1,\"scale\":\"{}\",\"shape\":{{\"rows\":{rows},\"cols\":{cols}}},\
         \"cases\":[{}]}}\n",
        scale.label(),
        cases.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_valid_versioned_json_with_identical_paths() {
        let snapshot = linalg_snapshot(Scale::Fast);
        let parsed: serde_json::Value = serde_json::from_str(&snapshot).unwrap();
        assert_eq!(parsed["version"].as_u64(), Some(1));
        assert_eq!(parsed["scale"].as_str(), Some("fast"));
        assert_eq!(parsed["shape"]["rows"].as_u64(), Some(48));
        assert_eq!(parsed["shape"]["cols"].as_u64(), Some(16));
        let cases = parsed["cases"].as_array().unwrap();
        assert_eq!(cases.len(), rhs_counts(Scale::Fast).len());
        for case in cases {
            let k = case["rhs"].as_u64().unwrap();
            assert_eq!(case["identical"].as_bool(), Some(true), "batch of {k} diverged");
            assert!(case["speedup"].as_f64().unwrap() > 0.0);
            // One factorization and one norm serve the whole batch.
            assert!(case["qr_avoided"].as_u64().unwrap() >= k - 1);
            assert!(case["spectral_cached"].as_u64().unwrap() >= k - 1);
        }
    }
}
