//! # catalyze-bench
//!
//! The reproduction harness: shared plumbing for regenerating every table
//! and figure of the paper, plus the ablation studies. The `repro` binary
//! drives this library; the Criterion benches measure the pipeline's own
//! performance.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod harness;
pub mod linalg_perf;
pub mod sim_perf;

pub use harness::{DomainResult, Harness, Scale, DOMAINS};
