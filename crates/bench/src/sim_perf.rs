//! Simulator engine performance snapshot (`BENCH_sim.json`).
//!
//! Runs every CPU benchmark domain twice through [`SimRequest`] — once on
//! the sequential `Direct` reference engine, once on the memoized parallel
//! `Replay` engine — and reports, per domain, the best-of `simulate` span
//! wall time of each engine, the `record`/`replay` phase split, the
//! resulting speedup, and whether the two engines' `MeasurementSet`s are
//! byte-identical. Timing comes from the span collector rather than ad-hoc
//! clocks, so the snapshot measures exactly what traces attribute.
//!
//! A second section sweeps the replacement-policy × prefetch matrix
//! (lru/plru/random × off/on) on the data-cache domain with the stock
//! geometry rebuilt per policy, reporting per configuration whether the
//! replay engine took the stream fast path (`fast_path`) and whether the
//! engines stayed byte-identical — the robustness-sweep configurations
//! that used to fall back to the reference loop.
//!
//! CI gates on this artifact: `run/dcache` and `run/dstore` must not
//! regress more than 1.3x over the committed snapshot, the dstore replay
//! speedup must stay ≥ 5x, and every `bit_identical` flag (domain and
//! policy rows) plus every policy row's `fast_path` flag must hold.

use crate::Scale;
use catalyze_cat::{Domain, MeasurementSet, RunnerConfig, SimEngine, SimRequest};
use catalyze_obs::TraceCollector;
use catalyze_sim::cache::{CacheConfig, ReplacementPolicy};
use catalyze_sim::{sapphire_rapids_like, CoreConfig, CpuEventSet};

/// Timing repetitions per engine; the minimum over them is reported.
fn reps(scale: Scale) -> usize {
    match scale {
        Scale::Full => 5,
        Scale::Fast => 3,
    }
}

fn config(scale: Scale) -> RunnerConfig {
    match scale {
        Scale::Full => RunnerConfig::default_sim(),
        Scale::Fast => RunnerConfig::fast_test(),
    }
}

/// The CPU domains that have a direct/replay engine split.
const DOMAINS: [Domain; 5] =
    [Domain::CpuFlops, Domain::Branch, Domain::Dcache, Domain::Dtlb, Domain::Dstore];

/// One engine run: the measurements plus the summed `simulate`, `record`,
/// and `replay` span durations from its trace.
struct EngineRun {
    ms: MeasurementSet,
    simulate_ns: u64,
    record_ns: u64,
    replay_ns: u64,
}

fn run_engine(
    domain: Domain,
    set: &CpuEventSet,
    cfg: &RunnerConfig,
    engine: SimEngine,
) -> EngineRun {
    let trace = TraceCollector::new();
    let ms = SimRequest::new()
        .domain(domain)
        .events(set)
        .config(cfg)
        .engine(engine)
        .observer(&trace)
        .run()
        // lint: allow(panic): domain and events are supplied above, so the request is valid
        .expect("valid request");
    let mut run = EngineRun { ms, simulate_ns: 0, record_ns: 0, replay_ns: 0 };
    for s in trace.span_records() {
        let d = s.duration_ns.unwrap_or(0);
        match s.name.as_str() {
            "simulate" => run.simulate_ns += d,
            "record" => run.record_ns += d,
            "replay" => run.replay_ns += d,
            _ => {}
        }
    }
    run
}

/// Best-of-`n` engine run, keyed on the `simulate` span time.
fn best_engine_run(
    n: usize,
    domain: Domain,
    set: &CpuEventSet,
    cfg: &RunnerConfig,
    engine: SimEngine,
) -> EngineRun {
    let mut best: Option<EngineRun> = None;
    for _ in 0..n {
        let run = run_engine(domain, set, cfg, engine);
        if best.as_ref().map_or(true, |b| run.simulate_ns < b.simulate_ns) {
            best = Some(run);
        }
    }
    // lint: allow(panic): n >= 1 always produces a run
    best.expect("at least one timing repetition")
}

/// The replacement-policy × prefetch matrix swept on the data-cache
/// domain — the robustness-sweep configurations.
const POLICIES: [(ReplacementPolicy, &str); 3] = [
    (ReplacementPolicy::Lru, "lru"),
    (ReplacementPolicy::TreePlru, "plru"),
    (ReplacementPolicy::Random, "random"),
];

/// Rebuilds the core's hierarchy with every level on `policy` and the
/// prefetcher set to `prefetch`, keeping the stock geometry.
fn core_with_policy(mut core: CoreConfig, policy: ReplacementPolicy, prefetch: bool) -> CoreConfig {
    let mut h = core.hierarchy;
    for level in [&mut h.l1, &mut h.l2, &mut h.l3] {
        *level = CacheConfig::with_policy(
            level.size_bytes,
            level.line_bytes,
            level.associativity,
            policy,
        );
    }
    h.prefetch_next_line = prefetch;
    core.hierarchy = h;
    core
}

/// Renders the versioned `BENCH_sim.json` snapshot.
pub fn sim_snapshot(scale: Scale) -> String {
    let set = sapphire_rapids_like();
    let cfg = config(scale);
    let n = reps(scale);
    let mut rows = Vec::new();
    for domain in DOMAINS {
        let direct = best_engine_run(n, domain, &set, &cfg, SimEngine::Direct);
        let replay = best_engine_run(n, domain, &set, &cfg, SimEngine::Replay);
        let identical = serde_json::to_string(&direct.ms).unwrap_or_default()
            == serde_json::to_string(&replay.ms).unwrap_or_default();
        let speedup = direct.simulate_ns as f64 / replay.simulate_ns.max(1) as f64;
        rows.push(format!(
            "{{\"domain\":\"{}\",\"direct_ns\":{},\"replay_ns\":{},\
             \"record_phase_ns\":{},\"replay_phase_ns\":{},\
             \"speedup\":{speedup:.3},\"bit_identical\":{identical}}}",
            domain.label(),
            direct.simulate_ns,
            replay.simulate_ns,
            replay.record_ns,
            replay.replay_ns,
        ));
    }
    // Policy rows certify engine choice and parity, not timing precision,
    // so a single repetition per configuration suffices.
    let mut policy_rows = Vec::new();
    for (policy, label) in POLICIES {
        for prefetch in [false, true] {
            let mut pcfg = cfg;
            pcfg.core = core_with_policy(cfg.core, policy, prefetch);
            let fast_path = pcfg.core.hierarchy.fast_path_eligible().is_ok();
            let direct = best_engine_run(1, Domain::Dcache, &set, &pcfg, SimEngine::Direct);
            let replay = best_engine_run(1, Domain::Dcache, &set, &pcfg, SimEngine::Replay);
            let identical = serde_json::to_string(&direct.ms).unwrap_or_default()
                == serde_json::to_string(&replay.ms).unwrap_or_default();
            let speedup = direct.simulate_ns as f64 / replay.simulate_ns.max(1) as f64;
            policy_rows.push(format!(
                "{{\"policy\":\"{label}\",\"prefetch\":{prefetch},\
                 \"fast_path\":{fast_path},\"direct_ns\":{},\"replay_ns\":{},\
                 \"speedup\":{speedup:.3},\"bit_identical\":{identical}}}",
                direct.simulate_ns, replay.simulate_ns,
            ));
        }
    }
    format!(
        "{{\"version\":2,\"scale\":\"{}\",\"domains\":[{}],\"policies\":[{}]}}\n",
        scale.label(),
        rows.join(","),
        policy_rows.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_valid_versioned_json_with_identical_engines() {
        let snapshot = sim_snapshot(Scale::Fast);
        let parsed: serde_json::Value = serde_json::from_str(&snapshot).unwrap();
        assert_eq!(parsed["version"].as_u64(), Some(2));
        assert_eq!(parsed["scale"].as_str(), Some("fast"));
        let rows = parsed["domains"].as_array().unwrap();
        assert_eq!(rows.len(), DOMAINS.len());
        for row in rows {
            let domain = row["domain"].as_str().unwrap();
            assert_eq!(row["bit_identical"].as_bool(), Some(true), "{domain} engines diverged");
            assert!(row["direct_ns"].as_u64().unwrap() > 0);
            assert!(row["replay_ns"].as_u64().unwrap() > 0);
            assert!(row["speedup"].as_f64().unwrap() > 0.0);
        }
        // The replay engine's phase split is attributed on the hot domain.
        let dcache = rows.iter().find(|r| r["domain"].as_str() == Some("dcache")).unwrap();
        assert!(dcache["record_phase_ns"].as_u64().unwrap() > 0);
        assert!(dcache["replay_phase_ns"].as_u64().unwrap() > 0);
        // Every robustness-sweep configuration takes the fast path and
        // keeps the engines byte-identical.
        let policies = parsed["policies"].as_array().unwrap();
        assert_eq!(policies.len(), POLICIES.len() * 2);
        for row in policies {
            let tag = format!(
                "{}/prefetch={}",
                row["policy"].as_str().unwrap(),
                row["prefetch"].as_bool().unwrap()
            );
            assert_eq!(row["fast_path"].as_bool(), Some(true), "{tag} fell off the fast path");
            assert_eq!(row["bit_identical"].as_bool(), Some(true), "{tag} engines diverged");
            assert!(row["direct_ns"].as_u64().unwrap() > 0, "{tag}");
            assert!(row["replay_ns"].as_u64().unwrap() > 0, "{tag}");
        }
    }
}
