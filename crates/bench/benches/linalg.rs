//! Criterion benches for the dense linear-algebra kernels: the QR
//! factorizations (including the paper's specialized pivoting), least
//! squares, and the Jacobi SVD, across representative matrix shapes.

use catalyze_linalg::{
    lstsq, qrcp, singular_values, specialized_qrcp, FactoredLstsq, Matrix, Qr, SpQrcpParams,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-10.0..10.0)).collect();
    Matrix::from_col_major(rows, cols, data).expect("shape matches")
}

/// A matrix shaped like the pipeline's X: expectation-like columns plus
/// aggregates plus noise columns.
fn representation_like(dim: usize, events: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let cols: Vec<Vec<f64>> = (0..events)
        .map(|e| {
            let mut c = vec![0.0; dim];
            match e % 3 {
                0 => c[e % dim] = 1.0,
                1 => {
                    c[e % dim] = 1.0;
                    c[(e + 1) % dim] = 2.0;
                }
                _ => {
                    for v in c.iter_mut() {
                        *v = rng.gen_range(0.0..100.0);
                    }
                }
            }
            c
        })
        .collect();
    Matrix::from_columns(&cols).expect("uniform length")
}

fn bench_qr(c: &mut Criterion) {
    let mut g = c.benchmark_group("qr_factor");
    for &(m, n) in &[(16usize, 8usize), (48, 16), (128, 64), (256, 128)] {
        let a = random_matrix(m, n, 1);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{n}")), &a, |b, a| {
            b.iter(|| Qr::factor(black_box(a)).expect("full rank"))
        });
    }
    g.finish();
}

fn bench_pivoting_rules(c: &mut Criterion) {
    let mut g = c.benchmark_group("qrcp_rules");
    for &events in &[32usize, 128, 512] {
        let x = representation_like(16, events, 2);
        g.bench_with_input(BenchmarkId::new("specialized", events), &x, |b, x| {
            b.iter(|| specialized_qrcp(black_box(x), SpQrcpParams::new(5e-4)).expect("valid"))
        });
        g.bench_with_input(BenchmarkId::new("standard", events), &x, |b, x| {
            b.iter(|| qrcp(black_box(x), 1e-10).expect("valid"))
        });
    }
    g.finish();
}

fn bench_lstsq(c: &mut Criterion) {
    let mut g = c.benchmark_group("lstsq");
    for &(m, n) in &[(16usize, 8usize), (48, 16), (128, 32)] {
        let a = random_matrix(m, n, 3);
        let b_vec: Vec<f64> = (0..m).map(|i| i as f64).collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &(a, b_vec),
            |b, (a, rhs)| b.iter(|| lstsq(black_box(a), black_box(rhs)).expect("full rank")),
        );
    }
    g.finish();
}

/// Repeated one-shot solves against one matrix vs a single
/// [`FactoredLstsq`] workspace serving the batch — the analysis hot path's
/// factor-once/solve-many trade, on the CPU-FLOPs basis shape (48x16).
fn bench_lstsq_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("lstsq_batch");
    let a = random_matrix(48, 16, 5);
    let mut rng = StdRng::seed_from_u64(6);
    for &k in &[16usize, 64, 256] {
        let rhs: Vec<Vec<f64>> =
            (0..k).map(|_| (0..48).map(|_| rng.gen_range(-100.0..100.0)).collect()).collect();
        g.bench_with_input(BenchmarkId::new("per_call", k), &rhs, |b, rhs| {
            b.iter(|| {
                for r in rhs {
                    black_box(lstsq(black_box(&a), r).expect("full rank"));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("factored", k), &rhs, |b, rhs| {
            b.iter(|| {
                let f = FactoredLstsq::factor(black_box(&a)).expect("full rank");
                let refs: Vec<&[f64]> = rhs.iter().map(|r| r.as_slice()).collect();
                black_box(f.solve_many(&refs).expect("full rank"))
            })
        });
    }
    g.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut g = c.benchmark_group("jacobi_svd");
    for &n in &[8usize, 16, 48] {
        let a = random_matrix(n * 2, n, 4);
        g.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| singular_values(black_box(a)).expect("converges"))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_qr,
    bench_pivoting_rules,
    bench_lstsq,
    bench_lstsq_batch,
    bench_svd
);
criterion_main!(benches);
