//! Criterion benches for the simulated-hardware substrate: instruction
//! execution throughput, cache-hierarchy accesses, branch prediction, and
//! full pointer-chase passes.

use catalyze_cat::dcache::ChaseConfig;
use catalyze_sim::branch::{Predictor, PredictorConfig};
use catalyze_sim::cache::AccessKind;
use catalyze_sim::hierarchy::{Hierarchy, HierarchyConfig};
use catalyze_sim::program::Block;
use catalyze_sim::{CoreConfig, Cpu, FpKind, Instruction, Precision, Program, VecWidth};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_fp_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_execute_flops");
    for &trips in &[64u64, 1024] {
        let block = Block::new()
            .repeat(Instruction::fp(Precision::Double, VecWidth::V256, FpKind::Fma), 48);
        let program = Program::new().counted_loop(block, trips, 0);
        g.throughput(Throughput::Elements(program.dynamic_length()));
        g.bench_with_input(BenchmarkId::from_parameter(trips), &program, |b, p| {
            b.iter(|| {
                let mut cpu = Cpu::new(CoreConfig::default_sim());
                cpu.run(black_box(p));
                cpu.stats().instructions
            })
        });
    }
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_hierarchy_access");
    let cfg = HierarchyConfig::default_sim();
    for &(label, span) in &[("l1_resident", 4 * 1024u64), ("l3_resident", 512 * 1024)] {
        let addrs: Vec<u64> = (0..span / 64).map(|i| i * 64).collect();
        g.throughput(Throughput::Elements(addrs.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(label), &addrs, |b, addrs| {
            let mut h = Hierarchy::new(cfg);
            // Warm.
            for &a in addrs {
                h.access(a, AccessKind::Read);
            }
            b.iter(|| {
                for &a in addrs {
                    black_box(h.access(a, AccessKind::Read));
                }
            })
        });
    }
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("gshare_retire_1k", |b| {
        let mut p = Predictor::new(PredictorConfig::default_sim());
        let mut flip = false;
        b.iter(|| {
            for i in 0..1000u32 {
                flip = !flip;
                black_box(p.retire_cond(i % 7, flip, None));
            }
        })
    });
}

fn bench_pointer_chase(c: &mut Criterion) {
    let mut g = c.benchmark_group("pointer_chase_pass");
    for &pointers in &[256u64, 4096] {
        let cfg = ChaseConfig { stride: 64, pointers, line_bytes: 64 };
        let program = cfg.program(0, 9, 1);
        g.throughput(Throughput::Elements(pointers));
        g.bench_with_input(BenchmarkId::from_parameter(pointers), &program, |b, p| {
            b.iter(|| {
                let mut cpu = Cpu::new(CoreConfig::default_sim());
                cpu.run(black_box(p));
                cpu.stats().loads
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fp_kernel, bench_hierarchy, bench_predictor, bench_pointer_chase);
criterion_main!(benches);
