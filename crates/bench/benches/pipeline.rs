//! Criterion benches for the analysis pipeline itself: the per-stage costs
//! (noise filtering, representation, selection, definition) and the full
//! analysis pass on each benchmark domain.

use catalyze::noise::analyze_noise;
use catalyze::normalize::represent;
use catalyze::pipeline::AnalysisRequest;
use catalyze::select::select_events;
use catalyze_bench::{Harness, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_full_analyze(c: &mut Criterion) {
    let h = Harness::new(Scale::Fast);
    let mut g = c.benchmark_group("analyze_domain");
    g.sample_size(20);
    for name in ["branch", "cpu-flops", "gpu-flops"] {
        let d = h.domain(name).expect("known domain").expect("domain analyzes");
        let cfg = d.analysis.config;
        g.bench_function(name, |b| {
            b.iter(|| {
                AnalysisRequest::new()
                    .domain(black_box(name))
                    .events(&d.measurements.events)
                    .runs(&d.measurements.runs)
                    .basis(&d.basis)
                    .signatures(&d.signatures)
                    .config(cfg)
                    .run()
            })
        });
    }
    g.finish();
}

fn bench_stages(c: &mut Criterion) {
    let h = Harness::new(Scale::Fast);
    let d = h.cpu_flops().expect("cpu-flops analysis");
    let ms = &d.measurements;

    c.bench_function("stage_noise_filter", |b| {
        let vectors: Vec<Vec<&[f64]>> =
            (0..ms.num_events()).map(|e| ms.vectors_for_event(e)).collect();
        b.iter(|| analyze_noise(black_box(&ms.events), black_box(&vectors), 1e-10))
    });

    c.bench_function("stage_representation", |b| {
        let kept: Vec<(usize, String, Vec<f64>)> = d
            .analysis
            .noise
            .kept()
            .into_iter()
            .map(|e| (e, ms.events[e].clone(), ms.mean_vector(e)))
            .collect();
        b.iter(|| represent(black_box(&d.basis), black_box(&kept), 0.05))
    });

    c.bench_function("stage_selection", |b| {
        b.iter(|| select_events(black_box(&d.analysis.representation), 5e-4))
    });
}

fn bench_measurement_runners(c: &mut Criterion) {
    let h = Harness::new(Scale::Fast);
    let mut g = c.benchmark_group("measure_domain");
    g.sample_size(10);
    g.bench_function("branch", |b| {
        b.iter(|| {
            catalyze_cat::measure_branch(
                black_box(&h.cpu_events),
                &h.cfg,
                &catalyze_obs::NoopObserver,
            )
        })
    });
    g.bench_function("gpu-flops", |b| {
        b.iter(|| {
            catalyze_cat::measure_gpu_flops(
                black_box(&h.gpu_events),
                &h.cfg,
                &catalyze_obs::NoopObserver,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_full_analyze, bench_stages, bench_measurement_runners);
criterion_main!(benches);
