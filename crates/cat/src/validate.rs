//! Metric validation: the pay-off test for the whole methodology.
//!
//! The pipeline defines metrics as linear combinations of raw events. This
//! module runs an *independent, mixed* workload — one the analysis never
//! saw — measures the combination, and compares it against the simulator's
//! architectural ground truth (which a real machine cannot provide, but our
//! substrate can). A correct metric definition predicts the ground truth to
//! within measurement noise.

use catalyze_events::{EventId, Preset};
use catalyze_sim::program::Block;
use catalyze_sim::{
    CoreConfig, Cpu, CpuEventSet, CpuPmu, ExecStats, FpKind, Instruction, IntKind, PmuConfig,
    Precision, Program, VecWidth,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of validating one metric definition on a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// lint: allow(dead_api): re-exported result type of validate_presets; fields are the CLI's report surface
pub struct ValidationOutcome {
    /// Metric name.
    pub metric: String,
    /// Value predicted by the raw-event combination.
    pub predicted: f64,
    /// Architectural ground truth from the simulator.
    pub ground_truth: f64,
    /// `|predicted - truth| / max(|truth|, 1)`.
    pub relative_error: f64,
    /// Raw events the preset referenced but the inventory lacks.
    pub missing_events: usize,
}

/// Builds a mixed validation workload: interleaved FP arithmetic of several
/// widths/precisions, data-dependent branches, integer work, and loads —
/// nothing like the single-attribute CAT kernels.
pub fn validation_workload(seed: u64, scale: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = Program::new();
    for chunk in 0..8u64 {
        let mut block = Block::new();
        for slot in 0..32 {
            match rng.gen_range(0..10) {
                0 => {
                    block =
                        block.push(Instruction::fp(Precision::Double, VecWidth::V256, FpKind::Fma))
                }
                1 => {
                    block = block.push(Instruction::fp(
                        Precision::Double,
                        VecWidth::Scalar,
                        FpKind::Add,
                    ))
                }
                2 => {
                    block =
                        block.push(Instruction::fp(Precision::Single, VecWidth::V512, FpKind::Mul))
                }
                3 => {
                    block =
                        block.push(Instruction::fp(Precision::Single, VecWidth::V128, FpKind::Sub))
                }
                4 => block = block.push(Instruction::Int(IntKind::Add)),
                5 => block = block.push(Instruction::Int(IntKind::Logic)),
                6 => {
                    let taken = rng.gen_bool(0.6);
                    let mispredict = rng.gen_bool(0.2);
                    block = block.push(Instruction::cond_forced(1000 + slot, taken, mispredict));
                }
                7 => block = block.push(Instruction::UncondBranch),
                8 => {
                    let addr = rng.gen_range(0..64u64) * 64;
                    block = block.push(Instruction::Load { addr, size: 8 });
                }
                _ => block = block.push(Instruction::Nop),
            }
        }
        program = program.counted_loop(block, scale, chunk as u32);
    }
    program
}

/// Ground truth for the standard metric names, extracted from execution
/// statistics. Returns `None` for metrics this oracle does not know.
pub fn ground_truth(metric: &str, stats: &ExecStats) -> Option<f64> {
    let v = match metric.trim_end_matches('.') {
        "SP Ops" => stats.flops(Precision::Single) as f64,
        "DP Ops" => stats.flops(Precision::Double) as f64,
        // "Instruction" metrics follow the FP_ARITH convention the
        // signatures encode: FMA counted twice.
        "SP Instrs" => stats.fp_filtered(Some(Precision::Single), None, 2) as f64,
        "DP Instrs" => stats.fp_filtered(Some(Precision::Double), None, 2) as f64,
        "Unconditional Branches" => stats.branch.uncond_retired as f64,
        "Conditional Branches Taken" => stats.branch.cond_taken as f64,
        "Conditional Branches Not Taken" => stats.branch.cond_not_taken as f64,
        "Mispredicted Branches" => stats.branch.mispredicted as f64,
        "Correctly Predicted Branches" => stats.branch.correctly_predicted() as f64,
        "Conditional Branches Retired" => stats.branch.cond_retired as f64,
        "L1 Misses" => stats.memory.loads_miss_l1 as f64,
        "L1 Hits" => stats.memory.loads_hit_l1 as f64,
        "L1 Reads" => stats.loads as f64,
        "L2 Hits" => stats.memory.l2.read_hits as f64,
        "L2 Misses" => stats.memory.l2.read_misses as f64,
        "L3 Hits" => stats.memory.loads_hit_l3 as f64,
        _ => return None,
    };
    Some(v)
}

/// Runs the validation workload once and evaluates each preset against the
/// measured raw events, comparing to ground truth.
///
/// Presets whose metric the ground-truth oracle does not know are skipped.
pub fn validate_presets(
    presets: &[Preset],
    set: &CpuEventSet,
    core: CoreConfig,
    pmu: PmuConfig,
    seed: u64,
) -> Vec<ValidationOutcome> {
    let program = validation_workload(seed, 512);
    let mut cpu = Cpu::new(core);
    cpu.run(&program);
    let stats = cpu.stats();

    // Measure every event the presets reference.
    let pmu = CpuPmu::new(pmu);
    let all_ids: Vec<EventId> = (0..set.len()).map(|i| EventId(i as u32)).collect();
    let counts = pmu.read_cpu(set, &stats, &all_ids, 0);

    presets
        .iter()
        .filter_map(|p| {
            let truth = ground_truth(&p.metric, &stats)?;
            let evaluated =
                p.evaluate(|name| set.id_of(&name.to_string()).map(|id| counts[id.index()]));
            let relative_error = (evaluated.value - truth).abs() / truth.abs().max(1.0);
            Some(ValidationOutcome {
                metric: p.metric.clone(),
                predicted: evaluated.value,
                ground_truth: truth,
                relative_error,
                missing_events: evaluated.missing.len(),
            })
        })
        .collect()
}

/// Builds a mixed GPU validation workload: several kernels of different
/// classes and precisions launched back to back on one device.
pub(crate) fn gpu_validation_workload(seed: u64) -> Vec<catalyze_sim::GpuKernel> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ops = [FpKind::Add, FpKind::Sub, FpKind::Mul, FpKind::Sqrt, FpKind::Fma];
    // Coverage floor: every precision sees an Add and an Fma kernel, so all
    // per-precision ground truths (including the add-class metrics) are
    // strictly positive for any seed. Random draws alone leave a non-trivial
    // chance that some precision/op class never appears in 12 kernels.
    let mut kernels: Vec<catalyze_sim::GpuKernel> = Precision::ALL
        .iter()
        .flat_map(|&prec| [(FpKind::Add, prec), (FpKind::Fma, prec)])
        .enumerate()
        .map(|(i, (op, prec))| catalyze_sim::GpuKernel {
            name: format!("cover{i}"),
            op,
            prec,
            instructions: rng.gen_range(64..512),
            wavefronts: rng.gen_range(100..800),
        })
        .collect();
    kernels.extend((0..6).map(|i| {
        let op = ops[rng.gen_range(0..ops.len())];
        let prec = Precision::ALL[rng.gen_range(0..3)];
        catalyze_sim::GpuKernel {
            name: format!("mix{i}"),
            op,
            prec,
            instructions: rng.gen_range(64..512),
            wavefronts: rng.gen_range(100..800),
        }
    }));
    kernels
}

/// Ground truth for the GPU metric names, per-instruction granularity with
/// FMA counted as two operations (the convention the signatures encode).
pub(crate) fn gpu_ground_truth(metric: &str, stats: &catalyze_sim::GpuStats) -> Option<f64> {
    let prec_index = |p: char| match p {
        'H' => 0usize,
        'S' => 1,
        _ => 2,
    };
    let all_ops = |i: usize| {
        (stats.valu_add[i] + stats.valu_mul[i] + stats.valu_trans[i] + 2 * stats.valu_fma[i]) as f64
    };
    let v = match metric.trim_end_matches('.') {
        "All HP Ops" => all_ops(prec_index('H')),
        "All SP Ops" => all_ops(prec_index('S')),
        "All DP Ops" => all_ops(prec_index('D')),
        "HP Add and Sub Ops" => stats.valu_add[0] as f64,
        _ => return None,
    };
    Some(v)
}

/// Runs the GPU validation workload on device 0 and evaluates each preset
/// against the measured events.
pub fn validate_gpu_presets(
    presets: &[catalyze_events::Preset],
    set: &catalyze_sim::GpuEventSet,
    devices: u32,
    pmu: PmuConfig,
    seed: u64,
) -> Vec<ValidationOutcome> {
    let mut dev = catalyze_sim::GpuDevice::new(catalyze_sim::GpuConfig::default_sim());
    for k in gpu_validation_workload(seed) {
        dev.launch(&k);
    }
    let mut all = vec![catalyze_sim::GpuStats::default(); devices as usize];
    all[0] = dev.stats;

    let pmu = CpuPmu::new(pmu);
    let ids: Vec<EventId> = (0..set.len()).map(|i| EventId(i as u32)).collect();
    let counts = pmu.read_gpu(set, &all, &ids, 0);

    presets
        .iter()
        .filter_map(|p| {
            let truth = gpu_ground_truth(&p.metric, &all[0])?;
            let evaluated =
                p.evaluate(|name| set.id_of(&name.to_string()).map(|id| counts[id.index()]));
            let relative_error = (evaluated.value - truth).abs() / truth.abs().max(1.0);
            Some(ValidationOutcome {
                metric: p.metric.clone(),
                predicted: evaluated.value,
                ground_truth: truth,
                relative_error,
                missing_events: evaluated.missing.len(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyze_events::PresetTerm;

    #[test]
    fn workload_is_mixed_and_deterministic() {
        let p1 = validation_workload(7, 16);
        let p2 = validation_workload(7, 16);
        assert_eq!(p1, p2);
        let p3 = validation_workload(8, 16);
        assert_ne!(p1, p3);
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&p1);
        let s = cpu.stats();
        assert!(s.flops(Precision::Double) > 0);
        assert!(s.flops(Precision::Single) > 0);
        assert!(s.branch.cond_retired > 0);
        assert!(s.branch.mispredicted > 0);
        assert!(s.loads > 0);
    }

    #[test]
    fn ground_truth_oracle_coverage() {
        let s = ExecStats::default();
        assert_eq!(ground_truth("DP Ops.", &s), Some(0.0));
        assert_eq!(ground_truth("Mispredicted Branches.", &s), Some(0.0));
        assert_eq!(ground_truth("L3 Hits.", &s), Some(0.0));
        assert_eq!(ground_truth("Some Unknown Metric.", &s), None);
    }

    #[test]
    fn hand_built_preset_validates_exactly() {
        // DP Instrs = sum of the four DP FP_ARITH events: architectural
        // counters read exactly, so relative error must be ~0.
        let set = catalyze_sim::sapphire_rapids_like();
        let preset = Preset {
            metric: "DP Instrs.".into(),
            terms: [
                "FP_ARITH_INST_RETIRED:SCALAR_DOUBLE",
                "FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE",
                "FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE",
                "FP_ARITH_INST_RETIRED:512B_PACKED_DOUBLE",
            ]
            .iter()
            .map(|n| PresetTerm { coefficient: 1.0, event: n.parse().unwrap() })
            .collect(),
            error: 0.0,
        };
        let out = validate_presets(
            &[preset],
            &set,
            CoreConfig::default_sim(),
            PmuConfig::default_sim(),
            42,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].ground_truth > 0.0);
        assert!(out[0].relative_error < 1e-12, "error {}", out[0].relative_error);
        assert_eq!(out[0].missing_events, 0);
    }

    #[test]
    fn wrong_preset_fails_validation() {
        let set = catalyze_sim::sapphire_rapids_like();
        let preset = Preset {
            metric: "DP Instrs.".into(),
            terms: vec![PresetTerm {
                coefficient: 1.0,
                event: "FP_ARITH_INST_RETIRED:SCALAR_SINGLE".parse().unwrap(),
            }],
            error: 0.0,
        };
        let out = validate_presets(
            &[preset],
            &set,
            CoreConfig::default_sim(),
            PmuConfig::default_sim(),
            42,
        );
        assert!(out[0].relative_error > 0.5, "a wrong definition must show");
    }

    #[test]
    fn missing_events_are_reported() {
        let set = catalyze_sim::sapphire_rapids_like();
        let preset = Preset {
            metric: "L1 Hits.".into(),
            terms: vec![PresetTerm {
                coefficient: 1.0,
                event: "NOT_A_REAL_EVENT".parse().unwrap(),
            }],
            error: 0.0,
        };
        let out = validate_presets(
            &[preset],
            &set,
            CoreConfig::default_sim(),
            PmuConfig::default_sim(),
            42,
        );
        assert_eq!(out[0].missing_events, 1);
    }
}
