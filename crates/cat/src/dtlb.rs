//! A data-TLB benchmark — an *extension* beyond the paper's four domains,
//! exercising the methodology on a new hardware attribute (the paper's
//! future work: "different measures ... for other hardware components").
//!
//! The kernel chases pointers across a set of pages. Two parameters are
//! swept independently so that TLB behavior and cache behavior *decouple*
//! (the benchmark-design discipline behind all CAT kernels — attributes
//! that move together cannot be told apart by any analysis):
//!
//! * the **page count** drives the TLB: well inside the TLB's reach every
//!   translation hits, far beyond it every translation misses;
//! * the **lines touched per page** drive the caches: the same TLB-resident
//!   page count is run both cache-light (few lines) and cache-heavy (many
//!   lines, thrashing L1), so no cache event's curve matches the TLB step.
//!
//! The expectation basis has two ideal events — per-access TLB misses and
//! TLB hits — and the interesting discovery mirrors the paper's: no raw
//! event counts TLB *hits* directly, but the pipeline composes them as
//! `loads − page walks`.

use catalyze_sim::program::Block;
use catalyze_sim::tlb::TlbConfig;
use catalyze_sim::{Instruction, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One TLB-chase configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbChaseConfig {
    /// Number of distinct pages in the chain.
    pub pages: u64,
    /// Distinct cache lines touched per page (1..=64 for 4 KiB pages).
    pub lines_per_page: u64,
    /// Page size in bytes.
    pub page_bytes: u64,
}

impl TlbChaseConfig {
    /// Total chase slots (distinct addresses) per pass.
    pub fn slots(&self) -> u64 {
        self.pages * self.lines_per_page
    }

    /// Whether this configuration lives in the TLB-hit region for `tlb`.
    pub fn is_hit_region(&self, tlb: &TlbConfig) -> bool {
        self.pages <= u64::from(tlb.entries) / 2
    }

    /// Point label.
    pub fn label(&self, tlb: &TlbConfig) -> String {
        let region = if self.is_hit_region(tlb) { "hit" } else { "miss" };
        format!("pages={}/lpp={}/{}", self.pages, self.lines_per_page, region)
    }

    /// Chase addresses: a single-cycle random permutation over all
    /// `(page, line)` slots. Line indices are offset by the page index so
    /// that even single-line-per-page configurations spread across cache
    /// sets instead of aliasing onto one.
    pub fn chase_addresses(&self, base: u64, seed: u64) -> Vec<u64> {
        let n = self.slots() as usize;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..i);
            perm.swap(i, j);
        }
        let lines_in_page = (self.page_bytes / 64).max(1);
        let mut addrs = Vec::with_capacity(n);
        let mut slot = 0usize;
        for _ in 0..n {
            let page = slot as u64 % self.pages;
            let k = slot as u64 / self.pages;
            // Multiplicative hash of the page index decorrelates the line
            // offset from the page's own low bits; a plain `page % lines`
            // offset would leave the cache-set index a function of
            // `page mod 64` and re-create the aliasing this spread exists
            // to avoid.
            let spread = (page.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 40;
            let line = (k + spread) % lines_in_page;
            addrs.push(base + page * self.page_bytes + line * 64);
            slot = perm[slot];
        }
        addrs
    }

    /// Program performing `passes` passes over the chain.
    pub fn program(&self, base: u64, seed: u64, passes: u64) -> Program {
        let addrs = self.chase_addresses(base, seed);
        let mut block = Block::new();
        for &a in &addrs {
            block = block.push(Instruction::Load { addr: a, size: 8 });
        }
        Program::new().counted_loop(block, passes, 11)
    }
}

/// The benchmark sweep: three cache-light TLB-hit points, two cache-heavy
/// TLB-hit points (same page counts, many lines per page), and three
/// TLB-miss points. Page counts near the TLB capacity are deliberately
/// excluded — their behavior is conflict-dependent.
pub fn sweep(tlb: &TlbConfig) -> Vec<TlbChaseConfig> {
    let e = u64::from(tlb.entries);
    let pb = tlb.page_bytes;
    let mk = |pages: u64, lpp: u64| TlbChaseConfig {
        pages: pages.max(2),
        lines_per_page: lpp,
        page_bytes: pb,
    };
    vec![
        mk(e / 8, 2),
        mk(e / 4, 2),
        mk(e / 2, 2),
        mk(e / 4, 64),
        mk(e / 2, 32),
        mk(e * 16, 1),
        mk(e * 32, 1),
        mk(e * 64, 1),
    ]
}

/// Point labels for the sweep.
pub fn point_labels(tlb: &TlbConfig) -> Vec<String> {
    sweep(tlb).iter().map(|c| c.label(tlb)).collect()
}

/// Per-point hit-region flags (the structural input to the basis).
pub fn point_hit_regions(tlb: &TlbConfig) -> Vec<bool> {
    sweep(tlb).iter().map(|c| c.is_hit_region(tlb)).collect()
}

/// Warmup passes.
pub const WARMUP_PASSES: u64 = 2;
/// Measured passes.
pub const MEASURE_PASSES: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use catalyze_sim::{CoreConfig, Cpu};

    fn tlb() -> TlbConfig {
        TlbConfig::default_sim()
    }

    #[test]
    fn sweep_regions() {
        let t = tlb();
        let regions = point_hit_regions(&t);
        assert_eq!(regions.len(), 8);
        assert_eq!(regions.iter().filter(|&&h| h).count(), 5);
        assert!(point_labels(&t)[0].ends_with("/hit"));
        assert!(point_labels(&t)[7].ends_with("/miss"));
    }

    #[test]
    fn hit_region_hits_after_warmup() {
        let t = tlb();
        let cfg = sweep(&t)[1];
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&cfg.program(0, 3, WARMUP_PASSES));
        cpu.reset_stats();
        cpu.run(&cfg.program(0, 3, MEASURE_PASSES));
        let s = cpu.stats();
        assert_eq!(s.tlb.misses, 0, "fully TLB-resident chain");
        assert_eq!(s.tlb.hits, cfg.slots() * MEASURE_PASSES);
    }

    #[test]
    fn cache_heavy_hit_point_thrashes_l1_but_not_tlb() {
        let t = tlb();
        let cfg = sweep(&t)[3]; // pages = e/4, lpp = 64
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&cfg.program(0, 9, WARMUP_PASSES));
        cpu.reset_stats();
        cpu.run(&cfg.program(0, 9, MEASURE_PASSES));
        let s = cpu.stats();
        assert_eq!(s.tlb.misses, 0, "pages fit the TLB");
        let accesses = (cfg.slots() * MEASURE_PASSES) as f64;
        let l1_hit_rate = s.memory.loads_hit_l1 as f64 / accesses;
        assert!(l1_hit_rate < 0.1, "L1 must thrash here, hit rate {l1_hit_rate}");
    }

    #[test]
    fn miss_region_mostly_misses_tlb() {
        let t = tlb();
        let cfg = *sweep(&t).last().unwrap();
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&cfg.program(0, 5, 1));
        cpu.reset_stats();
        cpu.run(&cfg.program(0, 5, 2));
        let s = cpu.stats();
        let accesses = (cfg.slots() * 2) as f64;
        let miss_rate = s.tlb.misses as f64 / accesses;
        assert!(miss_rate > 0.95, "TLB miss rate {miss_rate}");
    }

    #[test]
    fn miss_region_spreads_cache_sets() {
        // Single-line-per-page points must not alias onto one cache set:
        // the smallest miss point stays L2-resident.
        let t = tlb();
        let cfg = sweep(&t)[5]; // e*16 pages, 1 line each
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&cfg.program(0, 5, WARMUP_PASSES));
        cpu.reset_stats();
        cpu.run(&cfg.program(0, 5, MEASURE_PASSES));
        let s = cpu.stats();
        let accesses = (cfg.slots() * MEASURE_PASSES) as f64;
        let l3_plus_mem = (s.memory.loads_hit_l3 + s.memory.loads_miss_l3) as f64 / accesses;
        assert!(l3_plus_mem < 0.1, "1024 spread lines must fit L2, beyond-L2 rate {l3_plus_mem}");
    }

    #[test]
    fn chase_visits_each_slot_once() {
        let cfg = TlbChaseConfig { pages: 16, lines_per_page: 4, page_bytes: 4096 };
        let addrs = cfg.chase_addresses(0, 7);
        assert_eq!(addrs.len(), 64);
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "distinct (page, line) slots");
        let mut pages: Vec<u64> = addrs.iter().map(|a| a / 4096).collect();
        pages.sort_unstable();
        pages.dedup();
        assert_eq!(pages.len(), 16);
    }
}
