//! The CAT data-cache benchmark: a pointer chase over buffers sized to land
//! in each level of the hierarchy.
//!
//! Each configuration chases a random single-cycle permutation (Sattolo's
//! algorithm) of `P` pointers spaced `stride` bytes apart. The cache
//! *footprint* is `P` lines regardless of stride, so the sweep is defined by
//! footprint targets placed well inside the L1 / L2 / L3 / memory regions —
//! the x-axis of the paper's Figure 3. Multiple threads chase disjoint
//! buffers concurrently (the paper uses the per-thread *median* to suppress
//! noise).

use catalyze_sim::hierarchy::HierarchyConfig;
use catalyze_sim::program::Block;
use catalyze_sim::{Instruction, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The cache region a configuration's working set lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Fits in the L1 data cache.
    L1,
    /// Fits in L2 (but not L1).
    L2,
    /// Fits in L3 (but not L2).
    L3,
    /// Exceeds L3: served from memory.
    Memory,
}

impl Region {
    /// Short label used on figure axes.
    pub fn label(self) -> &'static str {
        match self {
            Region::L1 => "L1",
            Region::L2 => "L2",
            Region::L3 => "L3",
            Region::Memory => "M",
        }
    }
}

/// One pointer-chase configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaseConfig {
    /// Distance between consecutive pointer slots in bytes.
    pub stride: u64,
    /// Number of pointers in the chain.
    pub pointers: u64,
    /// Cache-line size (for footprint computation).
    pub line_bytes: u64,
}

impl ChaseConfig {
    /// Bytes of cache the chain occupies (`pointers` distinct lines).
    pub fn footprint_bytes(&self) -> u64 {
        self.pointers * self.line_bytes
    }

    /// Buffer extent in bytes.
    pub fn buffer_bytes(&self) -> u64 {
        self.pointers * self.stride
    }

    /// The region this footprint lands in for a given hierarchy.
    pub fn region(&self, h: &HierarchyConfig) -> Region {
        let f = self.footprint_bytes();
        if f <= h.l1.size_bytes {
            Region::L1
        } else if f <= h.l2.size_bytes {
            Region::L2
        } else if f <= h.l3.size_bytes {
            Region::L3
        } else {
            Region::Memory
        }
    }

    /// Point label, e.g. `stride=64B/ppb=512/L2`.
    pub fn label(&self, h: &HierarchyConfig) -> String {
        format!("stride={}B/ptrs={}/{}", self.stride, self.pointers, self.region(h).label())
    }

    /// Builds the chase address sequence for one full pass: a single-cycle
    /// random permutation (Sattolo), so every pointer is visited exactly
    /// once per pass with no locality the prefetcher could exploit.
    pub fn chase_addresses(&self, base: u64, seed: u64) -> Vec<u64> {
        let p = self.pointers as usize;
        let mut perm: Vec<usize> = (0..p).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        // Sattolo's algorithm: uniform single-cycle permutation.
        for i in (1..p).rev() {
            let j = rng.gen_range(0..i);
            perm.swap(i, j);
        }
        // Follow the cycle from slot 0.
        let mut addrs = Vec::with_capacity(p);
        let mut idx = 0usize;
        for _ in 0..p {
            addrs.push(base + idx as u64 * self.stride);
            idx = perm[idx];
        }
        addrs
    }

    /// Builds the program for `passes` full passes over the chain.
    pub fn program(&self, base: u64, seed: u64, passes: u64) -> Program {
        let addrs = self.chase_addresses(base, seed);
        let mut block = Block::new();
        for &a in &addrs {
            block = block.push(Instruction::Load { addr: a, size: 8 });
        }
        Program::new().counted_loop(block, passes, 7)
    }
}

/// The benchmark sweep for a hierarchy: two strides (64 B, 128 B — the
/// paper's two panels) by eight footprints, two per region.
pub fn sweep(h: &HierarchyConfig) -> Vec<ChaseConfig> {
    let line = h.l1.line_bytes;
    let footprints = [
        h.l1.size_bytes / 4,
        h.l1.size_bytes / 2,
        h.l2.size_bytes / 4,
        h.l2.size_bytes / 2,
        h.l3.size_bytes / 4,
        h.l3.size_bytes / 2,
        h.l3.size_bytes * 2,
        h.l3.size_bytes * 4,
    ];
    let mut configs = Vec::new();
    for stride in [64u64, 128] {
        for f in footprints {
            configs.push(ChaseConfig { stride, pointers: f / line, line_bytes: line });
        }
    }
    configs
}

/// Point labels for the sweep.
pub fn point_labels(h: &HierarchyConfig) -> Vec<String> {
    sweep(h).iter().map(|c| c.label(h)).collect()
}

/// Regions per point (the structural input to the expectation basis).
pub fn point_regions(h: &HierarchyConfig) -> Vec<Region> {
    sweep(h).iter().map(|c| c.region(h)).collect()
}

/// Warmup passes before counters are armed.
pub const WARMUP_PASSES: u64 = 2;
/// Measured passes. The chase is steady-state after warmup, so per-access
/// rates are window-length independent; a longer window matches the
/// paper's long measured runs and suppresses any residual transient share.
/// Replay cost does not scale with this constant (steady passes collapse),
/// so it prices direct execution honestly without slowing replay.
pub const MEASURE_PASSES: u64 = 8;
/// Concurrent chasing threads (disjoint buffers).
pub(crate) const THREADS: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use catalyze_sim::cache::AccessKind;
    use catalyze_sim::hierarchy::Hierarchy;
    use catalyze_sim::{CoreConfig, Cpu};

    fn hier() -> HierarchyConfig {
        HierarchyConfig::default_sim()
    }

    #[test]
    fn sweep_covers_all_regions_twice_per_stride() {
        let h = hier();
        let regions = point_regions(&h);
        assert_eq!(regions.len(), 16);
        for r in [Region::L1, Region::L2, Region::L3, Region::Memory] {
            let count = regions.iter().filter(|&&x| x == r).count();
            assert_eq!(count, 4, "{r:?} twice per stride");
        }
    }

    #[test]
    fn footprint_independent_of_stride() {
        let h = hier();
        let cfgs = sweep(&h);
        for i in 0..8 {
            assert_eq!(cfgs[i].footprint_bytes(), cfgs[i + 8].footprint_bytes());
            assert_ne!(cfgs[i].buffer_bytes(), cfgs[i + 8].buffer_bytes());
        }
    }

    #[test]
    fn chase_is_single_cycle() {
        let cfg = ChaseConfig { stride: 64, pointers: 128, line_bytes: 64 };
        let addrs = cfg.chase_addresses(0, 9);
        assert_eq!(addrs.len(), 128);
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 128, "every pointer visited exactly once");
        assert_eq!(addrs[0], 0, "cycle starts at slot 0");
    }

    #[test]
    fn l1_sized_chase_hits_after_warmup() {
        let h = hier();
        let cfg = ChaseConfig { stride: 64, pointers: h.l1.size_bytes / 4 / 64, line_bytes: 64 };
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&cfg.program(0, 1, 1)); // warmup pass
        cpu.reset_stats();
        cpu.run(&cfg.program(0, 1, 2)); // measured
        let s = cpu.stats();
        let accesses = (cfg.pointers * 2) as f64;
        let hit_rate = s.memory.loads_hit_l1 as f64 / accesses;
        assert!(hit_rate > 0.99, "hit rate {hit_rate}");
    }

    #[test]
    fn memory_sized_chase_misses_l3() {
        let h = hier();
        let cfg = ChaseConfig { stride: 64, pointers: h.l3.size_bytes * 2 / 64, line_bytes: 64 };
        let mut hierarchy = Hierarchy::new(h);
        // Drive the hierarchy directly (cheaper than a full CPU here).
        let addrs = cfg.chase_addresses(0, 3);
        for &a in &addrs {
            hierarchy.access(a, AccessKind::Read);
        }
        hierarchy.reset_stats();
        for &a in &addrs {
            hierarchy.access(a, AccessKind::Read);
        }
        let misses = hierarchy.stats().loads_miss_l3 as f64 / addrs.len() as f64;
        assert!(misses > 0.9, "L3 miss rate {misses}");
    }

    #[test]
    fn l2_region_hits_l2() {
        let h = hier();
        let cfg = ChaseConfig { stride: 64, pointers: h.l2.size_bytes / 4 / 64, line_bytes: 64 };
        assert_eq!(cfg.region(&h), Region::L2);
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&cfg.program(0, 5, 2));
        cpu.reset_stats();
        cpu.run(&cfg.program(0, 5, 2));
        let s = cpu.stats();
        let accesses = (cfg.pointers * 2) as f64;
        let l2_rate = s.memory.loads_hit_l2 as f64 / accesses;
        assert!(l2_rate > 0.95, "L2 hit rate {l2_rate}");
        assert!(s.memory.loads_hit_l3 as f64 / accesses < 0.05);
    }

    #[test]
    fn labels_include_region() {
        let h = hier();
        let labels = point_labels(&h);
        assert!(labels[0].ends_with("/L1"), "{}", labels[0]);
        assert!(labels[7].ends_with("/M"), "{}", labels[7]);
    }

    #[test]
    fn different_threads_get_different_chains() {
        let cfg = ChaseConfig { stride: 64, pointers: 64, line_bytes: 64 };
        let a = cfg.chase_addresses(0, 1);
        let b = cfg.chase_addresses(0, 2);
        assert_ne!(a, b);
    }
}
