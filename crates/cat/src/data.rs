//! Measurement datasets: the hand-off format between benchmarks and the
//! analysis pipeline.

use serde::{Deserialize, Serialize};
use std::fmt;

/// All raw-event measurements collected by one benchmark, over several
/// repetitions.
///
/// Layout: `runs[r][e][p]` is the normalized count of event `e` at
/// measurement point `p` (a kernel/loop or a pointer-chase configuration)
/// during repetition `r`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementSet {
    /// Benchmark identifier (`cpu-flops`, `branch`, `dcache`, `gpu-flops`).
    pub domain: String,
    /// One label per measurement point, e.g. `DP scalar / 48` or
    /// `stride=64B size=8KiB`.
    pub point_labels: Vec<String>,
    /// Fully qualified raw-event names, aligned with the event axis.
    pub events: Vec<String>,
    /// `runs[r][e][p]` as described above.
    pub runs: Vec<Vec<Vec<f64>>>,
}

/// Error for malformed measurement sets.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint: allow(dead_api): error type of MeasurementSet::validate; callers must be able to name it
pub struct ShapeError(pub String);

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed measurement set: {}", self.0)
    }
}

impl std::error::Error for ShapeError {}

impl MeasurementSet {
    /// Validates internal consistency (every run covers every event, every
    /// event vector covers every point).
    pub fn validate(&self) -> Result<(), ShapeError> {
        let ne = self.events.len();
        let np = self.point_labels.len();
        if self.runs.is_empty() {
            return Err(ShapeError("no runs".into()));
        }
        for (r, run) in self.runs.iter().enumerate() {
            if run.len() != ne {
                return Err(ShapeError(format!(
                    "run {r} has {} event vectors, expected {ne}",
                    run.len()
                )));
            }
            for (e, vec) in run.iter().enumerate() {
                if vec.len() != np {
                    return Err(ShapeError(format!(
                        "run {r} event {e} has {} points, expected {np}",
                        vec.len()
                    )));
                }
                if vec.iter().any(|v| !v.is_finite()) {
                    return Err(ShapeError(format!("run {r} event {e} has non-finite values")));
                }
            }
        }
        Ok(())
    }

    /// Number of repetitions.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of events.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of measurement points.
    pub fn num_points(&self) -> usize {
        self.point_labels.len()
    }

    /// The measurement vectors of one event across all runs.
    pub fn vectors_for_event(&self, e: usize) -> Vec<&[f64]> {
        self.runs.iter().map(|r| r[e].as_slice()).collect()
    }

    /// Element-wise mean measurement vector of one event across runs.
    pub fn mean_vector(&self, e: usize) -> Vec<f64> {
        let np = self.num_points();
        let mut mean = vec![0.0; np];
        for run in &self.runs {
            for (m, &v) in mean.iter_mut().zip(&run[e]) {
                *m += v;
            }
        }
        let n = self.num_runs() as f64;
        for m in &mut mean {
            *m /= n;
        }
        mean
    }

    /// Index of an event by name.
    pub fn event_index(&self, name: &str) -> Option<usize> {
        self.events.iter().position(|e| e == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> MeasurementSet {
        MeasurementSet {
            domain: "test".into(),
            point_labels: vec!["p0".into(), "p1".into()],
            events: vec!["A".into(), "B".into()],
            runs: vec![
                vec![vec![1.0, 2.0], vec![10.0, 20.0]],
                vec![vec![3.0, 4.0], vec![10.0, 20.0]],
            ],
        }
    }

    #[test]
    fn validation_passes_and_dims() {
        let s = set();
        s.validate().unwrap();
        assert_eq!(s.num_runs(), 2);
        assert_eq!(s.num_events(), 2);
        assert_eq!(s.num_points(), 2);
    }

    #[test]
    fn validation_catches_shape_errors() {
        let mut s = set();
        s.runs[1].pop();
        assert!(s.validate().is_err());
        let mut s = set();
        s.runs[0][0].pop();
        assert!(s.validate().is_err());
        let mut s = set();
        s.runs.clear();
        assert!(s.validate().is_err());
        let mut s = set();
        s.runs[0][0][0] = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn mean_and_vectors() {
        let s = set();
        assert_eq!(s.mean_vector(0), vec![2.0, 3.0]);
        assert_eq!(s.mean_vector(1), vec![10.0, 20.0]);
        let v = s.vectors_for_event(0);
        assert_eq!(v[0], &[1.0, 2.0]);
        assert_eq!(v[1], &[3.0, 4.0]);
    }

    #[test]
    fn event_index_lookup() {
        let s = set();
        assert_eq!(s.event_index("B"), Some(1));
        assert_eq!(s.event_index("C"), None);
    }

    #[test]
    fn serde_roundtrip() {
        let s = set();
        let json = serde_json::to_string(&s).unwrap();
        let back: MeasurementSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
