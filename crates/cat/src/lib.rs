//! # catalyze-cat
//!
//! A reimplementation of the Counter Analysis Toolkit (CAT) benchmarks
//! against the simulated hardware of `catalyze-sim`:
//!
//! * [`flops_cpu`] — 16 floating-point microkernels spanning
//!   `{scalar,128,256,512} x {FMA,non-FMA} x {SP,DP}` (paper §III);
//! * [`branch`] — 11 branching kernels matching the rows of the paper's
//!   expectation matrix `E_branch` (Eq. 3);
//! * [`dcache`] — a multi-threaded pointer chase sweeping buffer footprints
//!   across L1/L2/L3/memory (paper §III-E, Figure 3);
//! * [`flops_gpu`] — GPU kernels for add/sub/mul/sqrt/FMA in half, single,
//!   and double precision (paper §III-C);
//! * [`runner`] — the measurement orchestrator: warmup, counter-group
//!   multiplexing, repetitions, per-thread medians, and normalization;
//! * [`data`] — the serializable measurement format handed to the analysis;
//! * [`validate`] — end-to-end validation of defined metrics against the
//!   simulator's architectural ground truth on an independent workload.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod branch;
pub mod data;
pub mod dcache;
pub mod dstore;
pub mod dtlb;
pub mod flops_cpu;
pub mod flops_gpu;
pub(crate) mod runner;
pub mod validate;

pub use data::MeasurementSet;
pub use runner::{
    median_across_threads, run_branch, run_cpu_flops, run_dcache, run_dcache_per_thread,
    run_gpu_flops, RunnerConfig,
};
pub use runner::{run_branch_obs, run_cpu_flops_obs, run_dcache_obs, run_gpu_flops_obs};
pub use runner::{run_dstore, run_dstore_obs, run_dtlb, run_dtlb_obs};
pub use validate::{
    validate_gpu_presets, validate_presets, validation_workload, ValidationOutcome,
};
