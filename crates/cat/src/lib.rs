//! # catalyze-cat
//!
//! A reimplementation of the Counter Analysis Toolkit (CAT) benchmarks
//! against the simulated hardware of `catalyze-sim`:
//!
//! * [`flops_cpu`] — 16 floating-point microkernels spanning
//!   `{scalar,128,256,512} x {FMA,non-FMA} x {SP,DP}` (paper §III);
//! * [`branch`] — 11 branching kernels matching the rows of the paper's
//!   expectation matrix `E_branch` (Eq. 3);
//! * [`dcache`] — a multi-threaded pointer chase sweeping buffer footprints
//!   across L1/L2/L3/memory (paper §III-E, Figure 3);
//! * [`flops_gpu`] — GPU kernels for add/sub/mul/sqrt/FMA in half, single,
//!   and double precision (paper §III-C);
//! * [`runner`] — the measurement orchestrator: warmup, counter-group
//!   multiplexing, repetitions, per-thread medians, and normalization;
//! * [`request`] — the unified [`SimRequest`] builder over all domains,
//!   with typed configuration validation and engine selection;
//! * [`data`] — the serializable measurement format handed to the analysis;
//! * [`validate`] — end-to-end validation of defined metrics against the
//!   simulator's architectural ground truth on an independent workload.
//!
//! Run a benchmark through [`SimRequest`]:
//!
//! ```
//! use catalyze_cat::{Domain, RunnerConfig, SimRequest};
//! let set = catalyze_sim::sapphire_rapids_like();
//! let cfg = RunnerConfig::fast_test();
//! let ms = SimRequest::new().domain(Domain::Branch).events(&set).config(&cfg).run().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod branch;
pub mod data;
pub mod dcache;
pub mod dstore;
pub mod dtlb;
pub mod flops_cpu;
pub mod flops_gpu;
pub mod request;
pub(crate) mod runner;
pub mod validate;

pub use data::MeasurementSet;
pub use request::{ConfigError, Domain, RunError, RunnerConfigBuilder, SimEngine, SimRequest};
pub use runner::{
    measure_branch, measure_cpu_flops, measure_dcache, measure_dcache_threads, measure_dstore,
    measure_dtlb, measure_gpu_flops, median_across_threads, RunnerConfig,
};
#[allow(deprecated)]
pub use runner::{
    run_branch, run_branch_obs, run_cpu_flops, run_cpu_flops_obs, run_dcache, run_dcache_obs,
    run_dcache_per_thread, run_dstore, run_dstore_obs, run_dtlb, run_dtlb_obs, run_gpu_flops,
    run_gpu_flops_obs,
};
pub use validate::{
    validate_gpu_presets, validate_presets, validation_workload, ValidationOutcome,
};
