//! The measurement runner: executes each CAT benchmark on the simulated
//! platform and reads every raw event, over several repetitions.
//!
//! Key behaviors mirroring the real toolkit:
//!
//! * every benchmark is run once per *counter group* (the PMU multiplexes),
//!   modeled by independent noise streams per group;
//! * workloads are warmed up before counters are armed (caches filled,
//!   predictors trained);
//! * the data-cache benchmark runs several threads on disjoint buffers and
//!   reports the per-thread **median**, the paper's noise-suppression
//!   device;
//! * measurements are normalized per loop iteration (CPU), per wavefront
//!   (GPU), or per access (cache), so they are directly comparable to the
//!   expectation bases.
//!
//! The preferred entry point is [`crate::SimRequest`]; the `measure_*`
//! functions here are the canonical per-domain runners it dispatches to.
//! Each CPU domain runs on one of two engines ([`SimEngine`]): the default
//! `Replay` engine records every sweep point's kernel once as a
//! [`KernelTrace`] and replays the memoized trace, parallelizing the
//! record/replay sweeps and the per-repetition counter reads; the `Direct`
//! engine executes every dynamic instruction sequentially and is kept as
//! the reference path for parity tests and the `BENCH_sim` speedup gate.
//! Both produce bit-identical [`MeasurementSet`]s — the noise streams are
//! keyed by `(event, repetition, point, group)`, never by wall-clock or
//! thread identity.

use crate::data::MeasurementSet;
use crate::request::SimEngine;
use crate::{branch, dcache, flops_cpu, flops_gpu};
use catalyze_events::EventId;
use catalyze_obs::{NoopObserver, Observer, Span};
use catalyze_sim::{
    CoreConfig, Cpu, CpuEventSet, CpuPmu, ExecStats, GpuConfig, GpuDevice, GpuEventSet, GpuStats,
    KernelTrace, PmuConfig, Program, StreamStats,
};
use rayon::prelude::*;

/// Runner configuration.
///
/// Construct via [`RunnerConfig::default_sim`], [`RunnerConfig::fast_test`],
/// or the validating [`RunnerConfig::builder`].
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// Simulated core configuration.
    pub core: CoreConfig,
    /// PMU configuration (counter count, noise seed).
    pub pmu: PmuConfig,
    /// Benchmark repetitions (the paper's multiple runs for RNMSE).
    pub repetitions: usize,
    /// Loop trip count for the CPU-FLOPs kernels.
    pub flops_trips: u64,
    /// Iterations for the branching kernels (must be even).
    pub branch_iterations: u64,
    /// GPU wavefronts per kernel launch.
    pub gpu_wavefronts: u64,
    /// GPU devices on the node.
    pub gpu_devices: u32,
    /// Threads for the data-cache benchmark.
    pub dcache_threads: usize,
}

impl RunnerConfig {
    /// Full-scale defaults (used by the reproduction harness).
    pub fn default_sim() -> Self {
        Self {
            core: CoreConfig::default_sim(),
            pmu: PmuConfig::default_sim(),
            repetitions: 5,
            flops_trips: flops_cpu::TRIPS,
            branch_iterations: branch::ITERATIONS,
            gpu_wavefronts: flops_gpu::WAVEFRONTS,
            gpu_devices: 8,
            dcache_threads: dcache::THREADS,
        }
    }

    /// Scaled-down configuration for fast tests.
    pub fn fast_test() -> Self {
        Self {
            repetitions: 3,
            flops_trips: 64,
            branch_iterations: 256,
            gpu_wavefronts: 16,
            gpu_devices: 2,
            dcache_threads: 2,
            ..Self::default_sim()
        }
    }
}

fn all_ids(n: usize) -> Vec<EventId> {
    (0..n).map(|i| EventId(i as u32)).collect()
}

/// Mixes repetition and point indices into one PMU run key, so every
/// (event, repetition, point, group) observation draws independent noise.
fn run_key(rep: usize, point: usize) -> usize {
    rep * 100_000 + point
}

/// Publishes the sweep shape of a finished benchmark run. Observer calls
/// stay on the calling thread, outside the rayon sections.
fn record_runner_counters(obs: &dyn Observer, points: usize, events: usize, repetitions: usize) {
    obs.counter("runner.points", points as u64);
    obs.counter("runner.events", events as u64);
    obs.counter("runner.repetitions", repetitions as u64);
}

/// Publishes which engine actually served a CPU runner, plus the stream
/// engine's memo counters summed over the sweep's cores.
///
/// `runner.engine` encodes `0` = `Direct` reference execution, `1` =
/// `Replay` taking the stream fast path, `2` = `Replay` falling back to
/// the reference per-access loop (the hierarchy failed
/// `fast_path_eligible`, e.g. pseudo-LRU wider than 32 ways).
fn record_engine_counters(
    obs: &dyn Observer,
    core: &CoreConfig,
    engine: SimEngine,
    stream: StreamStats,
) {
    let code = match engine {
        SimEngine::Direct => 0,
        SimEngine::Replay => {
            if core.hierarchy.fast_path_eligible().is_ok() {
                1
            } else {
                2
            }
        }
    };
    obs.counter("runner.engine", code);
    obs.counter("stream.memo_hits", stream.memo_hits);
    obs.counter("stream.memo_misses", stream.memo_misses);
    obs.counter("stream.passes_collapsed", stream.passes_collapsed);
}

/// Collects per-point stats and reads all events, normalized by `norm`.
///
/// The greedy counter scheduling is deterministic in `(set, events)`, so
/// it is computed once and the per-repetition reads — pure functions of
/// the run key — proceed in parallel. `key_offset` separates noise streams
/// that share a sweep (the per-thread cache chases).
fn read_all_cpu(
    set: &CpuEventSet,
    pmu: &CpuPmu,
    stats: &[ExecStats],
    norms: &[f64],
    repetitions: usize,
    key_offset: usize,
) -> Vec<Vec<Vec<f64>>> {
    let events = all_ids(set.len());
    let groups = pmu.schedule(set, &events);
    let reps: Vec<usize> = (0..repetitions).collect();
    reps.par_iter()
        .map(|&rep| {
            // counts[point][event] -> transpose into [event][point]
            let per_point: Vec<Vec<f64>> = stats
                .iter()
                .enumerate()
                .map(|(p, s)| {
                    pmu.read_cpu_scheduled(set, s, &events, &groups, run_key(rep, p) + key_offset)
                })
                .collect();
            (0..events.len())
                .map(|e| per_point.iter().zip(norms).map(|(counts, &n)| counts[e] / n).collect())
                .collect()
        })
        .collect()
}

/// Simulates one program per sweep point on the selected engine.
///
/// `Replay` records each point's kernel under a `record` span and replays
/// the traces under a `replay` span, both point-parallel. `Direct` executes
/// every point sequentially with no child spans.
fn simulate_sweep<F>(
    core: CoreConfig,
    n_points: usize,
    program_of: F,
    obs: &dyn Observer,
    engine: SimEngine,
) -> (Vec<ExecStats>, StreamStats)
where
    F: Fn(usize) -> Program + Sync,
{
    let points: Vec<usize> = (0..n_points).collect();
    match engine {
        SimEngine::Direct => (
            points
                .iter()
                .map(|&p| {
                    let mut cpu = Cpu::new(core);
                    cpu.run(&program_of(p));
                    cpu.stats()
                })
                .collect(),
            StreamStats::default(),
        ),
        SimEngine::Replay => {
            let traces: Vec<KernelTrace> = {
                let _s = Span::enter(obs, "record");
                points.par_iter().map(|&p| KernelTrace::record(&program_of(p))).collect()
            };
            let _s = Span::enter(obs, "replay");
            let results: Vec<(ExecStats, StreamStats)> = traces
                .par_iter()
                .map(|t| {
                    let mut cpu = Cpu::new(core);
                    cpu.replay(t);
                    (cpu.stats(), cpu.stream_stats())
                })
                .collect();
            fold_stream_stats(results)
        }
    }
}

/// Splits per-core (stats, stream-counter) pairs, summing the counters in
/// input order — a deterministic sequential fold over the already-collected
/// parallel results.
fn fold_stream_stats(results: Vec<(ExecStats, StreamStats)>) -> (Vec<ExecStats>, StreamStats) {
    let mut stream = StreamStats::default();
    let stats = results
        .into_iter()
        .map(|(s, per_cpu)| {
            stream.merge(per_cpu);
            s
        })
        .collect();
    (stats, stream)
}

/// Simulates a warmup-then-measure sweep (the memory-chase domains) on the
/// selected engine.
///
/// The warmup and measurement programs of a chase point differ only in the
/// top-level pass count, so `Replay` records the measurement program once
/// per point and drives both phases from the same trace via
/// `Cpu::replay_passes`.
fn simulate_chase_sweep<F>(
    core: CoreConfig,
    n_points: usize,
    program_of: F,
    warmup_passes: u64,
    measure_passes: u64,
    obs: &dyn Observer,
    engine: SimEngine,
) -> (Vec<ExecStats>, StreamStats)
where
    F: Fn(usize, u64) -> Program + Sync,
{
    let points: Vec<usize> = (0..n_points).collect();
    match engine {
        SimEngine::Direct => (
            points
                .iter()
                .map(|&p| {
                    let mut cpu = Cpu::new(core);
                    cpu.run(&program_of(p, warmup_passes));
                    cpu.reset_stats();
                    cpu.run(&program_of(p, measure_passes));
                    cpu.stats()
                })
                .collect(),
            StreamStats::default(),
        ),
        SimEngine::Replay => {
            let traces: Vec<KernelTrace> = {
                let _s = Span::enter(obs, "record");
                points
                    .par_iter()
                    .map(|&p| KernelTrace::record(&program_of(p, measure_passes)))
                    .collect()
            };
            let _s = Span::enter(obs, "replay");
            let results: Vec<(ExecStats, StreamStats)> = traces
                .par_iter()
                .map(|t| {
                    let mut cpu = Cpu::new(core);
                    cpu.replay_passes(t, warmup_passes);
                    cpu.reset_stats();
                    cpu.replay_passes(t, measure_passes);
                    (cpu.stats(), cpu.stream_stats())
                })
                .collect();
            fold_stream_stats(results)
        }
    }
}

/// Measures the CPU-FLOPs domain: spans around the simulation (with
/// `record`/`replay` children on the default engine) and counter-read
/// phases, sweep-shape counters on `obs`.
// lint: contract(deterministic)
pub fn measure_cpu_flops(
    set: &CpuEventSet,
    cfg: &RunnerConfig,
    obs: &dyn Observer,
) -> MeasurementSet {
    cpu_flops_with_engine(set, cfg, obs, SimEngine::default())
}

pub(crate) fn cpu_flops_with_engine(
    set: &CpuEventSet,
    cfg: &RunnerConfig,
    obs: &dyn Observer,
    engine: SimEngine,
) -> MeasurementSet {
    let _root = Span::enter(obs, "run/cpu-flops");
    let kernels = flops_cpu::kernel_space();
    let points: Vec<(usize, usize)> =
        (0..kernels.len()).flat_map(|k| (0..3).map(move |l| (k, l))).collect();
    let (stats, stream) = {
        let _s = Span::enter(obs, "simulate");
        simulate_sweep(
            cfg.core,
            points.len(),
            |p| {
                let (k, l) = points[p];
                kernels[k].program(l, cfg.flops_trips)
            },
            obs,
            engine,
        )
    };
    let norms = vec![cfg.flops_trips as f64; points.len()];
    let pmu = CpuPmu::new(cfg.pmu);
    let runs = {
        let _s = Span::enter(obs, "read-counters");
        read_all_cpu(set, &pmu, &stats, &norms, cfg.repetitions, 0)
    };
    record_runner_counters(obs, points.len(), set.len(), cfg.repetitions);
    record_engine_counters(obs, &cfg.core, engine, stream);
    MeasurementSet {
        domain: "cpu-flops".into(),
        point_labels: flops_cpu::point_labels(),
        events: set.iter().map(|(_, d)| d.info.name.to_string()).collect(),
        runs,
    }
}

/// Measures the branching domain.
// lint: contract(deterministic)
pub fn measure_branch(set: &CpuEventSet, cfg: &RunnerConfig, obs: &dyn Observer) -> MeasurementSet {
    branch_with_engine(set, cfg, obs, SimEngine::default())
}

pub(crate) fn branch_with_engine(
    set: &CpuEventSet,
    cfg: &RunnerConfig,
    obs: &dyn Observer,
    engine: SimEngine,
) -> MeasurementSet {
    let _root = Span::enter(obs, "run/branch");
    let kernels = branch::kernel_space();
    let (stats, stream) = {
        let _s = Span::enter(obs, "simulate");
        simulate_sweep(
            cfg.core,
            kernels.len(),
            |p| kernels[p].program(cfg.branch_iterations),
            obs,
            engine,
        )
    };
    let norms = vec![cfg.branch_iterations as f64; kernels.len()];
    let pmu = CpuPmu::new(cfg.pmu);
    let runs = {
        let _s = Span::enter(obs, "read-counters");
        read_all_cpu(set, &pmu, &stats, &norms, cfg.repetitions, 0)
    };
    record_runner_counters(obs, kernels.len(), set.len(), cfg.repetitions);
    record_engine_counters(obs, &cfg.core, engine, stream);
    MeasurementSet {
        domain: "branch".into(),
        point_labels: branch::point_labels(),
        events: set.iter().map(|(_, d)| d.info.name.to_string()).collect(),
        runs,
    }
}

/// Measures the data-cache domain with per-thread medians (the default).
///
/// Span tree: `run/dcache` → `simulate` → one `thread=N` child per chasing
/// thread (each with `record`/`replay` children on the default engine),
/// then `read-counters` and `median`.
// lint: contract(deterministic)
pub fn measure_dcache(set: &CpuEventSet, cfg: &RunnerConfig, obs: &dyn Observer) -> MeasurementSet {
    dcache_with_engine(set, cfg, obs, SimEngine::default())
}

pub(crate) fn dcache_with_engine(
    set: &CpuEventSet,
    cfg: &RunnerConfig,
    obs: &dyn Observer,
    engine: SimEngine,
) -> MeasurementSet {
    let _root = Span::enter(obs, "run/dcache");
    let per_thread = dcache_threads_with_engine(set, cfg, obs, engine);
    let median = {
        let _s = Span::enter(obs, "median");
        median_across_threads(&per_thread)
    };
    record_runner_counters(obs, median.num_points(), set.len(), cfg.repetitions);
    obs.counter("runner.dcache_threads", cfg.dcache_threads as u64);
    median
}

/// Measures the data-cache domain keeping every thread's measurements
/// (used by the median-suppression ablation). Result: one `MeasurementSet`
/// per thread.
// lint: contract(deterministic)
pub fn measure_dcache_threads(
    set: &CpuEventSet,
    cfg: &RunnerConfig,
    obs: &dyn Observer,
) -> Vec<MeasurementSet> {
    dcache_threads_with_engine(set, cfg, obs, SimEngine::default())
}

pub(crate) fn dcache_threads_with_engine(
    set: &CpuEventSet,
    cfg: &RunnerConfig,
    obs: &dyn Observer,
    engine: SimEngine,
) -> Vec<MeasurementSet> {
    let h = cfg.core.hierarchy;
    let configs = dcache::sweep(&h);
    // Each thread chases its own permutation over a disjoint buffer.
    let mut stream = StreamStats::default();
    let all_stats: Vec<Vec<ExecStats>> = {
        let _s = Span::enter(obs, "simulate");
        (0..cfg.dcache_threads)
            .map(|thread| {
                let _t = Span::enter(obs, &format!("thread={thread}"));
                let base = (thread as u64 + 1) << 40;
                let (stats, per_thread) = simulate_chase_sweep(
                    cfg.core,
                    configs.len(),
                    |p, passes| {
                        let seed = (thread as u64) * 7919 + p as u64;
                        configs[p].program(base, seed, passes)
                    },
                    dcache::WARMUP_PASSES,
                    dcache::MEASURE_PASSES,
                    obs,
                    engine,
                );
                stream.merge(per_thread);
                stats
            })
            .collect()
    };
    record_engine_counters(obs, &cfg.core, engine, stream);
    let norms: Vec<f64> =
        configs.iter().map(|c| (c.pointers * dcache::MEASURE_PASSES) as f64).collect();
    let pmu = CpuPmu::new(cfg.pmu);
    let _s = Span::enter(obs, "read-counters");
    all_stats
        .iter()
        .enumerate()
        .map(|(thread, stats)| MeasurementSet {
            domain: format!("dcache/thread={thread}"),
            point_labels: dcache::point_labels(&h),
            events: set.iter().map(|(_, d)| d.info.name.to_string()).collect(),
            runs: read_all_cpu(set, &pmu, stats, &norms, cfg.repetitions, thread * 31_000_000),
        })
        .collect()
}

/// Element-wise median across per-thread measurement sets.
pub fn median_across_threads(threads: &[MeasurementSet]) -> MeasurementSet {
    assert!(!threads.is_empty(), "median_across_threads: no threads");
    let first = &threads[0];
    let mut out = first.clone();
    out.domain = "dcache".into();
    for r in 0..first.num_runs() {
        for e in 0..first.num_events() {
            for p in 0..first.num_points() {
                let vals: Vec<f64> = threads.iter().map(|t| t.runs[r][e][p]).collect();
                out.runs[r][e][p] =
                    // lint: allow(panic, reachable_panic): per-thread runs always produce at least one sample
                    catalyze_linalg::vector::median(&vals).expect("non-empty thread set");
            }
        }
    }
    out
}

/// Measures the data-TLB domain (the extension domain).
// lint: contract(deterministic)
pub fn measure_dtlb(set: &CpuEventSet, cfg: &RunnerConfig, obs: &dyn Observer) -> MeasurementSet {
    dtlb_with_engine(set, cfg, obs, SimEngine::default())
}

pub(crate) fn dtlb_with_engine(
    set: &CpuEventSet,
    cfg: &RunnerConfig,
    obs: &dyn Observer,
    engine: SimEngine,
) -> MeasurementSet {
    let _root = Span::enter(obs, "run/dtlb");
    let tlb = cfg.core.tlb;
    let configs = crate::dtlb::sweep(&tlb);
    let (stats, stream) = {
        let _s = Span::enter(obs, "simulate");
        simulate_chase_sweep(
            cfg.core,
            configs.len(),
            |p, passes| configs[p].program(0, 4242 + p as u64, passes),
            crate::dtlb::WARMUP_PASSES,
            crate::dtlb::MEASURE_PASSES,
            obs,
            engine,
        )
    };
    let norms: Vec<f64> =
        configs.iter().map(|c| (c.slots() * crate::dtlb::MEASURE_PASSES) as f64).collect();
    let pmu = CpuPmu::new(cfg.pmu);
    let runs = {
        let _s = Span::enter(obs, "read-counters");
        read_all_cpu(set, &pmu, &stats, &norms, cfg.repetitions, 0)
    };
    record_runner_counters(obs, configs.len(), set.len(), cfg.repetitions);
    record_engine_counters(obs, &cfg.core, engine, stream);
    MeasurementSet {
        domain: "dtlb".into(),
        point_labels: crate::dtlb::point_labels(&tlb),
        events: set.iter().map(|(_, d)| d.info.name.to_string()).collect(),
        runs,
    }
}

/// Measures the store-path (write) cache domain (extension domain).
// lint: contract(deterministic)
pub fn measure_dstore(set: &CpuEventSet, cfg: &RunnerConfig, obs: &dyn Observer) -> MeasurementSet {
    dstore_with_engine(set, cfg, obs, SimEngine::default())
}

pub(crate) fn dstore_with_engine(
    set: &CpuEventSet,
    cfg: &RunnerConfig,
    obs: &dyn Observer,
    engine: SimEngine,
) -> MeasurementSet {
    let _root = Span::enter(obs, "run/dstore");
    let h = cfg.core.hierarchy;
    let configs = crate::dstore::sweep(&h);
    let (stats, stream) = {
        let _s = Span::enter(obs, "simulate");
        simulate_chase_sweep(
            cfg.core,
            configs.len(),
            |p, passes| configs[p].program(0, 9000 + p as u64, passes),
            crate::dstore::WARMUP_PASSES,
            crate::dstore::MEASURE_PASSES,
            obs,
            engine,
        )
    };
    let norms: Vec<f64> =
        configs.iter().map(|c| (c.lines * crate::dstore::MEASURE_PASSES) as f64).collect();
    let pmu = CpuPmu::new(cfg.pmu);
    let runs = {
        let _s = Span::enter(obs, "read-counters");
        read_all_cpu(set, &pmu, &stats, &norms, cfg.repetitions, 0)
    };
    record_runner_counters(obs, configs.len(), set.len(), cfg.repetitions);
    record_engine_counters(obs, &cfg.core, engine, stream);
    MeasurementSet {
        domain: "dstore".into(),
        point_labels: crate::dstore::point_labels(&h),
        events: set.iter().map(|(_, d)| d.info.name.to_string()).collect(),
        runs,
    }
}

/// Measures the GPU-FLOPs domain. Kernels execute on device 0 of
/// `cfg.gpu_devices`; events bound to other devices read their idle
/// telemetry. GPU launches are analytic, so there is no record/replay
/// split on this domain.
// lint: contract(deterministic)
pub fn measure_gpu_flops(
    set: &GpuEventSet,
    cfg: &RunnerConfig,
    obs: &dyn Observer,
) -> MeasurementSet {
    let _root = Span::enter(obs, "run/gpu-flops");
    let kernels = flops_gpu::kernel_space();
    let points: Vec<(usize, usize)> =
        (0..kernels.len()).flat_map(|k| (0..3).map(move |l| (k, l))).collect();
    let device_stats: Vec<Vec<GpuStats>> = {
        let _s = Span::enter(obs, "simulate");
        points
            .par_iter()
            .map(|&(k, l)| {
                let mut dev = GpuDevice::new(GpuConfig::default_sim());
                dev.launch(&kernels[k].kernel(l, cfg.gpu_wavefronts));
                let mut all = vec![GpuStats::default(); cfg.gpu_devices as usize];
                all[0] = dev.stats;
                all
            })
            .collect()
    };
    let events = all_ids(set.len());
    let pmu = CpuPmu::new(cfg.pmu);
    let norm = cfg.gpu_wavefronts as f64;
    let runs = {
        let _s = Span::enter(obs, "read-counters");
        let reps: Vec<usize> = (0..cfg.repetitions).collect();
        reps.par_iter()
            .map(|&rep| {
                let per_point: Vec<Vec<f64>> = device_stats
                    .iter()
                    .enumerate()
                    .map(|(p, devs)| pmu.read_gpu(set, devs, &events, run_key(rep, p)))
                    .collect();
                (0..events.len())
                    .map(|e| per_point.iter().map(|counts| counts[e] / norm).collect())
                    .collect()
            })
            .collect()
    };
    record_runner_counters(obs, points.len(), set.len(), cfg.repetitions);
    MeasurementSet {
        domain: "gpu-flops".into(),
        point_labels: flops_gpu::point_labels(),
        events: set.iter().map(|(_, d)| d.info.name.to_string()).collect(),
        runs,
    }
}

// --- Deprecated pre-SimRequest entry points -------------------------------
//
// The twelve `run_*`/`run_*_obs` pairs collapsed into the observer-taking
// `measure_*` functions above; these shims keep old callers compiling.

/// Runs the CPU-FLOPs benchmark.
#[deprecated(since = "0.9.0", note = "use `measure_cpu_flops` or `SimRequest`")]
pub fn run_cpu_flops(set: &CpuEventSet, cfg: &RunnerConfig) -> MeasurementSet {
    measure_cpu_flops(set, cfg, &NoopObserver)
}

/// Runs the CPU-FLOPs benchmark with structured observability.
#[deprecated(since = "0.9.0", note = "use `measure_cpu_flops` or `SimRequest`")]
pub fn run_cpu_flops_obs(
    set: &CpuEventSet,
    cfg: &RunnerConfig,
    obs: &dyn Observer,
) -> MeasurementSet {
    measure_cpu_flops(set, cfg, obs)
}

/// Runs the branching benchmark.
#[deprecated(since = "0.9.0", note = "use `measure_branch` or `SimRequest`")]
pub fn run_branch(set: &CpuEventSet, cfg: &RunnerConfig) -> MeasurementSet {
    measure_branch(set, cfg, &NoopObserver)
}

/// Runs the branching benchmark with structured observability.
#[deprecated(since = "0.9.0", note = "use `measure_branch` or `SimRequest`")]
pub fn run_branch_obs(set: &CpuEventSet, cfg: &RunnerConfig, obs: &dyn Observer) -> MeasurementSet {
    measure_branch(set, cfg, obs)
}

/// Runs the data-cache benchmark with per-thread medians.
#[deprecated(since = "0.9.0", note = "use `measure_dcache` or `SimRequest`")]
pub fn run_dcache(set: &CpuEventSet, cfg: &RunnerConfig) -> MeasurementSet {
    measure_dcache(set, cfg, &NoopObserver)
}

/// Runs the data-cache benchmark with structured observability.
#[deprecated(since = "0.9.0", note = "use `measure_dcache` or `SimRequest`")]
pub fn run_dcache_obs(set: &CpuEventSet, cfg: &RunnerConfig, obs: &dyn Observer) -> MeasurementSet {
    measure_dcache(set, cfg, obs)
}

/// Runs the data-cache benchmark keeping every thread's measurements.
#[deprecated(since = "0.9.0", note = "use `measure_dcache_threads`")]
pub fn run_dcache_per_thread(set: &CpuEventSet, cfg: &RunnerConfig) -> Vec<MeasurementSet> {
    measure_dcache_threads(set, cfg, &NoopObserver)
}

/// Runs the data-TLB benchmark.
#[deprecated(since = "0.9.0", note = "use `measure_dtlb` or `SimRequest`")]
pub fn run_dtlb(set: &CpuEventSet, cfg: &RunnerConfig) -> MeasurementSet {
    measure_dtlb(set, cfg, &NoopObserver)
}

/// Runs the data-TLB benchmark with structured observability.
#[deprecated(since = "0.9.0", note = "use `measure_dtlb` or `SimRequest`")]
pub fn run_dtlb_obs(set: &CpuEventSet, cfg: &RunnerConfig, obs: &dyn Observer) -> MeasurementSet {
    measure_dtlb(set, cfg, obs)
}

/// Runs the store-path cache benchmark.
#[deprecated(since = "0.9.0", note = "use `measure_dstore` or `SimRequest`")]
pub fn run_dstore(set: &CpuEventSet, cfg: &RunnerConfig) -> MeasurementSet {
    measure_dstore(set, cfg, &NoopObserver)
}

/// Runs the store-path cache benchmark with structured observability.
#[deprecated(since = "0.9.0", note = "use `measure_dstore` or `SimRequest`")]
pub fn run_dstore_obs(set: &CpuEventSet, cfg: &RunnerConfig, obs: &dyn Observer) -> MeasurementSet {
    measure_dstore(set, cfg, obs)
}

/// Runs the GPU-FLOPs benchmark.
#[deprecated(since = "0.9.0", note = "use `measure_gpu_flops` or `SimRequest`")]
pub fn run_gpu_flops(set: &GpuEventSet, cfg: &RunnerConfig) -> MeasurementSet {
    measure_gpu_flops(set, cfg, &NoopObserver)
}

/// Runs the GPU-FLOPs benchmark with structured observability.
#[deprecated(since = "0.9.0", note = "use `measure_gpu_flops` or `SimRequest`")]
pub fn run_gpu_flops_obs(
    set: &GpuEventSet,
    cfg: &RunnerConfig,
    obs: &dyn Observer,
) -> MeasurementSet {
    measure_gpu_flops(set, cfg, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyze_sim::{mi250x_like, sapphire_rapids_like};

    #[test]
    fn cpu_flops_measurements_are_exact_for_fp_events() {
        let set = sapphire_rapids_like();
        let cfg = RunnerConfig::fast_test();
        let ms = measure_cpu_flops(&set, &cfg, &NoopObserver);
        ms.validate().unwrap();
        assert_eq!(ms.num_points(), 48);
        assert_eq!(ms.num_runs(), 3);
        let e = ms.event_index("FP_ARITH_INST_RETIRED:SCALAR_DOUBLE").unwrap();
        let v = ms.mean_vector(e);
        // DSCAL kernel occupies points 12..15 (kernel index 4), values 24/48/96.
        assert_eq!(&v[12..15], &[24.0, 48.0, 96.0]);
        // DSCAL_FMA kernel (index 12): 12/24/48 FMA instructions counted twice.
        assert_eq!(&v[36..39], &[24.0, 48.0, 96.0]);
        // Identical across runs (architectural counter).
        let vecs = ms.vectors_for_event(e);
        assert_eq!(vecs[0], vecs[1]);
    }

    #[test]
    fn branch_measurements_match_expectation_rows() {
        let set = sapphire_rapids_like();
        let cfg = RunnerConfig::fast_test();
        let ms = measure_branch(&set, &cfg, &NoopObserver);
        ms.validate().unwrap();
        assert_eq!(ms.num_points(), 11);
        let cond = ms.event_index("BR_INST_RETIRED:COND").unwrap();
        let v = ms.mean_vector(cond);
        let expect: Vec<f64> = branch::kernel_space().iter().map(|k| k.expectation[1]).collect();
        assert_eq!(v, expect, "COND matches CR row exactly");
        let misp = ms.event_index("BR_MISP_RETIRED:ALL_BRANCHES").unwrap();
        let v = ms.mean_vector(misp);
        let expect: Vec<f64> = branch::kernel_space().iter().map(|k| k.expectation[4]).collect();
        assert_eq!(v, expect, "MISP matches M row exactly");
    }

    #[test]
    fn gpu_measurements_structure() {
        let set = mi250x_like(2);
        let cfg = RunnerConfig::fast_test();
        let ms = measure_gpu_flops(&set, &cfg, &NoopObserver);
        ms.validate().unwrap();
        assert_eq!(ms.num_points(), 45);
        let add = ms.event_index("rocm:::SQ_INSTS_VALU_ADD_F16:device=0").unwrap();
        let v = ms.mean_vector(add);
        // AH kernel: points 0..3 at 256/512/1024; SH kernel points 9..12.
        assert_eq!(&v[0..3], &[256.0, 512.0, 1024.0]);
        assert_eq!(&v[9..12], &[256.0, 512.0, 1024.0], "SUB feeds the ADD counter");
        assert_eq!(v[3], 0.0, "AS kernel does not touch F16 counter");
        // Idle device's counter reads zero everywhere.
        let add1 = ms.event_index("rocm:::SQ_INSTS_VALU_ADD_F16:device=1").unwrap();
        assert!(ms.mean_vector(add1).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn dcache_median_suppresses_outliers() {
        let set = sapphire_rapids_like();
        let mut cfg = RunnerConfig::fast_test();
        cfg.dcache_threads = 3;
        let per_thread = measure_dcache_threads(&set, &cfg, &NoopObserver);
        assert_eq!(per_thread.len(), 3);
        for t in &per_thread {
            t.validate().unwrap();
        }
        let median = median_across_threads(&per_thread);
        median.validate().unwrap();
        assert_eq!(median.domain, "dcache");
        // The median at every cell lies between the per-thread min and max.
        for e in 0..median.num_events().min(20) {
            for p in 0..median.num_points() {
                let vals: Vec<f64> = per_thread.iter().map(|t| t.runs[0][e][p]).collect();
                let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let m = median.runs[0][e][p];
                assert!(m >= lo && m <= hi);
            }
        }
    }

    #[test]
    fn traced_runner_records_spans_and_counters() {
        use catalyze_obs::TraceCollector;
        let set = sapphire_rapids_like();
        let cfg = RunnerConfig::fast_test();
        let trace = TraceCollector::new();
        let ms = measure_branch(&set, &cfg, &trace);
        ms.validate().unwrap();
        // Root + simulate (+ record/replay children) + read-counters spans.
        assert_eq!(trace.span_count(), 5);
        assert_eq!(trace.counter_value("runner.points"), Some(11));
        assert_eq!(trace.counter_value("runner.repetitions"), Some(3));
        assert!(trace.counter_value("runner.events").unwrap() > 0);
        // Default engine is Replay with an eligible hierarchy (= 1).
        assert_eq!(trace.counter_value("runner.engine"), Some(1));
        assert!(trace.counter_value("stream.memo_hits").is_some());
        assert!(trace.counter_value("stream.memo_misses").is_some());
        assert!(trace.counter_value("stream.passes_collapsed").is_some());
        // The noop-observer path produces the same measurements.
        let plain = measure_branch(&set, &cfg, &NoopObserver);
        assert_eq!(plain.runs, ms.runs);
    }

    #[test]
    fn traced_dcache_has_per_thread_spans() {
        use catalyze_obs::TraceCollector;
        let set = sapphire_rapids_like();
        let cfg = RunnerConfig::fast_test();
        let trace = TraceCollector::new();
        let ms = measure_dcache(&set, &cfg, &trace);
        ms.validate().unwrap();
        // run/dcache + simulate + 2 x (thread=N + record + replay)
        // + read-counters + median.
        assert_eq!(trace.span_count(), 10);
        assert_eq!(trace.counter_value("runner.dcache_threads"), Some(2));
        // The chase sweeps are long enough to exercise collapse and the
        // cross-call memo: every point's measure phase hits the fixed
        // point its warmup phase memoized.
        assert_eq!(trace.counter_value("runner.engine"), Some(1));
        assert!(trace.counter_value("stream.passes_collapsed").unwrap() > 0);
        assert!(trace.counter_value("stream.memo_hits").unwrap() > 0);
    }

    #[test]
    fn dcache_l1_region_hit_rate() {
        let set = sapphire_rapids_like();
        let cfg = RunnerConfig::fast_test();
        let ms = measure_dcache(&set, &cfg, &NoopObserver);
        let l1hit = ms.event_index("MEM_LOAD_RETIRED:L1_HIT").unwrap();
        let v = ms.mean_vector(l1hit);
        // First two points are L1-resident: ~1 hit per access.
        assert!(v[0] > 0.97, "L1-resident hit rate {}", v[0]);
        assert!(v[1] > 0.97);
        // Memory-sized points: near zero.
        assert!(v[7] < 0.05, "memory-resident L1 hit rate {}", v[7]);
    }

    #[test]
    fn engines_agree_on_every_cpu_domain() {
        use crate::request::SimEngine;
        let set = sapphire_rapids_like();
        let cfg = RunnerConfig::fast_test();
        let obs = &NoopObserver;
        let pairs = [
            (
                cpu_flops_with_engine(&set, &cfg, obs, SimEngine::Direct),
                cpu_flops_with_engine(&set, &cfg, obs, SimEngine::Replay),
            ),
            (
                branch_with_engine(&set, &cfg, obs, SimEngine::Direct),
                branch_with_engine(&set, &cfg, obs, SimEngine::Replay),
            ),
            (
                dcache_with_engine(&set, &cfg, obs, SimEngine::Direct),
                dcache_with_engine(&set, &cfg, obs, SimEngine::Replay),
            ),
            (
                dtlb_with_engine(&set, &cfg, obs, SimEngine::Direct),
                dtlb_with_engine(&set, &cfg, obs, SimEngine::Replay),
            ),
            (
                dstore_with_engine(&set, &cfg, obs, SimEngine::Direct),
                dstore_with_engine(&set, &cfg, obs, SimEngine::Replay),
            ),
        ];
        for (direct, replay) in &pairs {
            assert_eq!(direct.domain, replay.domain);
            assert_eq!(direct.runs, replay.runs, "{} engines disagree", direct.domain);
        }
    }
}
