//! The measurement runner: executes each CAT benchmark on the simulated
//! platform and reads every raw event, over several repetitions.
//!
//! Key behaviors mirroring the real toolkit:
//!
//! * every benchmark is run once per *counter group* (the PMU multiplexes),
//!   modeled by independent noise streams per group;
//! * workloads are warmed up before counters are armed (caches filled,
//!   predictors trained);
//! * the data-cache benchmark runs several threads on disjoint buffers and
//!   reports the per-thread **median**, the paper's noise-suppression
//!   device;
//! * measurements are normalized per loop iteration (CPU), per wavefront
//!   (GPU), or per access (cache), so they are directly comparable to the
//!   expectation bases.

use crate::data::MeasurementSet;
use crate::{branch, dcache, flops_cpu, flops_gpu};
use catalyze_events::EventId;
use catalyze_obs::{NoopObserver, Observer, Span};
use catalyze_sim::{
    CoreConfig, Cpu, CpuEventSet, CpuPmu, ExecStats, GpuConfig, GpuDevice, GpuEventSet, GpuStats,
    PmuConfig,
};
use rayon::prelude::*;

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// Simulated core configuration.
    pub core: CoreConfig,
    /// PMU configuration (counter count, noise seed).
    pub pmu: PmuConfig,
    /// Benchmark repetitions (the paper's multiple runs for RNMSE).
    pub repetitions: usize,
    /// Loop trip count for the CPU-FLOPs kernels.
    pub flops_trips: u64,
    /// Iterations for the branching kernels (must be even).
    pub branch_iterations: u64,
    /// GPU wavefronts per kernel launch.
    pub gpu_wavefronts: u64,
    /// GPU devices on the node.
    pub gpu_devices: u32,
    /// Threads for the data-cache benchmark.
    pub dcache_threads: usize,
}

impl RunnerConfig {
    /// Full-scale defaults (used by the reproduction harness).
    pub fn default_sim() -> Self {
        Self {
            core: CoreConfig::default_sim(),
            pmu: PmuConfig::default_sim(),
            repetitions: 5,
            flops_trips: flops_cpu::TRIPS,
            branch_iterations: branch::ITERATIONS,
            gpu_wavefronts: flops_gpu::WAVEFRONTS,
            gpu_devices: 8,
            dcache_threads: dcache::THREADS,
        }
    }

    /// Scaled-down configuration for fast tests.
    pub fn fast_test() -> Self {
        Self {
            repetitions: 3,
            flops_trips: 64,
            branch_iterations: 256,
            gpu_wavefronts: 16,
            gpu_devices: 2,
            dcache_threads: 2,
            ..Self::default_sim()
        }
    }
}

fn all_ids(n: usize) -> Vec<EventId> {
    (0..n).map(|i| EventId(i as u32)).collect()
}

/// Mixes repetition and point indices into one PMU run key, so every
/// (event, repetition, point, group) observation draws independent noise.
fn run_key(rep: usize, point: usize) -> usize {
    rep * 100_000 + point
}

/// Publishes the sweep shape of a finished benchmark run. Observer calls
/// stay on the calling thread, outside the rayon sections.
fn record_runner_counters(obs: &dyn Observer, points: usize, events: usize, repetitions: usize) {
    obs.counter("runner.points", u64::try_from(points).unwrap_or(u64::MAX));
    obs.counter("runner.events", u64::try_from(events).unwrap_or(u64::MAX));
    obs.counter("runner.repetitions", u64::try_from(repetitions).unwrap_or(u64::MAX));
}

/// Collects per-point stats and reads all events, normalized by `norm`.
fn read_all_cpu(
    set: &CpuEventSet,
    pmu: &CpuPmu,
    stats: &[ExecStats],
    norms: &[f64],
    repetitions: usize,
) -> Vec<Vec<Vec<f64>>> {
    let events = all_ids(set.len());
    (0..repetitions)
        .map(|rep| {
            // counts[point][event] -> transpose into [event][point]
            let per_point: Vec<Vec<f64>> = stats
                .iter()
                .enumerate()
                .map(|(p, s)| pmu.read_cpu(set, s, &events, run_key(rep, p)))
                .collect();
            (0..events.len())
                .map(|e| per_point.iter().zip(norms).map(|(counts, &n)| counts[e] / n).collect())
                .collect()
        })
        .collect()
}

/// Runs the CPU-FLOPs benchmark.
// lint: contract(deterministic)
pub fn run_cpu_flops(set: &CpuEventSet, cfg: &RunnerConfig) -> MeasurementSet {
    run_cpu_flops_obs(set, cfg, &NoopObserver)
}

/// [`run_cpu_flops`] with structured observability: spans around the
/// simulation and counter-read phases, sweep-shape counters.
pub fn run_cpu_flops_obs(
    set: &CpuEventSet,
    cfg: &RunnerConfig,
    obs: &dyn Observer,
) -> MeasurementSet {
    let _root = Span::enter(obs, "run/cpu-flops");
    let kernels = flops_cpu::kernel_space();
    let points: Vec<(usize, usize)> =
        (0..kernels.len()).flat_map(|k| (0..3).map(move |l| (k, l))).collect();
    let stats: Vec<ExecStats> = {
        let _s = Span::enter(obs, "simulate");
        points
            .par_iter()
            .map(|&(k, l)| {
                let mut cpu = Cpu::new(cfg.core);
                cpu.run(&kernels[k].program(l, cfg.flops_trips));
                cpu.stats()
            })
            .collect()
    };
    let norms = vec![cfg.flops_trips as f64; points.len()];
    let pmu = CpuPmu::new(cfg.pmu);
    let runs = {
        let _s = Span::enter(obs, "read-counters");
        read_all_cpu(set, &pmu, &stats, &norms, cfg.repetitions)
    };
    record_runner_counters(obs, points.len(), set.len(), cfg.repetitions);
    MeasurementSet {
        domain: "cpu-flops".into(),
        point_labels: flops_cpu::point_labels(),
        events: set.iter().map(|(_, d)| d.info.name.to_string()).collect(),
        runs,
    }
}

/// Runs the branching benchmark.
// lint: contract(deterministic)
pub fn run_branch(set: &CpuEventSet, cfg: &RunnerConfig) -> MeasurementSet {
    run_branch_obs(set, cfg, &NoopObserver)
}

/// [`run_branch`] with structured observability.
pub fn run_branch_obs(set: &CpuEventSet, cfg: &RunnerConfig, obs: &dyn Observer) -> MeasurementSet {
    let _root = Span::enter(obs, "run/branch");
    let kernels = branch::kernel_space();
    let stats: Vec<ExecStats> = {
        let _s = Span::enter(obs, "simulate");
        kernels
            .par_iter()
            .map(|k| {
                let mut cpu = Cpu::new(cfg.core);
                cpu.run(&k.program(cfg.branch_iterations));
                cpu.stats()
            })
            .collect()
    };
    let norms = vec![cfg.branch_iterations as f64; kernels.len()];
    let pmu = CpuPmu::new(cfg.pmu);
    let runs = {
        let _s = Span::enter(obs, "read-counters");
        read_all_cpu(set, &pmu, &stats, &norms, cfg.repetitions)
    };
    record_runner_counters(obs, kernels.len(), set.len(), cfg.repetitions);
    MeasurementSet {
        domain: "branch".into(),
        point_labels: branch::point_labels(),
        events: set.iter().map(|(_, d)| d.info.name.to_string()).collect(),
        runs,
    }
}

/// Runs the data-cache benchmark with per-thread medians (the default).
// lint: contract(deterministic)
pub fn run_dcache(set: &CpuEventSet, cfg: &RunnerConfig) -> MeasurementSet {
    run_dcache_obs(set, cfg, &NoopObserver)
}

/// [`run_dcache`] with structured observability: the per-thread sweeps run
/// under a `simulate` span, the median reduction under `median`.
pub fn run_dcache_obs(set: &CpuEventSet, cfg: &RunnerConfig, obs: &dyn Observer) -> MeasurementSet {
    let _root = Span::enter(obs, "run/dcache");
    let per_thread = {
        let _s = Span::enter(obs, "simulate");
        run_dcache_per_thread(set, cfg)
    };
    let median = {
        let _s = Span::enter(obs, "median");
        median_across_threads(&per_thread)
    };
    record_runner_counters(obs, median.num_points(), set.len(), cfg.repetitions);
    obs.counter("runner.dcache_threads", u64::try_from(cfg.dcache_threads).unwrap_or(u64::MAX));
    median
}

/// Runs the data-cache benchmark and keeps every thread's measurements
/// (used by the median-suppression ablation). Result: one `MeasurementSet`
/// per thread.
pub fn run_dcache_per_thread(set: &CpuEventSet, cfg: &RunnerConfig) -> Vec<MeasurementSet> {
    let h = cfg.core.hierarchy;
    let configs = dcache::sweep(&h);
    let events = all_ids(set.len());
    let pmu = CpuPmu::new(cfg.pmu);
    (0..cfg.dcache_threads)
        .map(|thread| {
            // Each thread chases its own permutation over a disjoint buffer.
            let stats: Vec<ExecStats> = configs
                .par_iter()
                .enumerate()
                .map(|(p, c)| {
                    let base = (thread as u64 + 1) << 40;
                    let seed = (thread as u64) * 7919 + p as u64;
                    let mut cpu = Cpu::new(cfg.core);
                    cpu.run(&c.program(base, seed, dcache::WARMUP_PASSES));
                    cpu.reset_stats();
                    cpu.run(&c.program(base, seed, dcache::MEASURE_PASSES));
                    cpu.stats()
                })
                .collect();
            let norms: Vec<f64> =
                configs.iter().map(|c| (c.pointers * dcache::MEASURE_PASSES) as f64).collect();
            let runs = (0..cfg.repetitions)
                .map(|rep| {
                    let per_point: Vec<Vec<f64>> = stats
                        .iter()
                        .enumerate()
                        .map(|(p, s)| {
                            pmu.read_cpu(set, s, &events, run_key(rep, p) + thread * 31_000_000)
                        })
                        .collect();
                    (0..events.len())
                        .map(|e| {
                            per_point.iter().zip(&norms).map(|(counts, &n)| counts[e] / n).collect()
                        })
                        .collect()
                })
                .collect();
            MeasurementSet {
                domain: format!("dcache/thread={thread}"),
                point_labels: dcache::point_labels(&h),
                events: set.iter().map(|(_, d)| d.info.name.to_string()).collect(),
                runs,
            }
        })
        .collect()
}

/// Element-wise median across per-thread measurement sets.
pub fn median_across_threads(threads: &[MeasurementSet]) -> MeasurementSet {
    assert!(!threads.is_empty(), "median_across_threads: no threads");
    let first = &threads[0];
    let mut out = first.clone();
    out.domain = "dcache".into();
    for r in 0..first.num_runs() {
        for e in 0..first.num_events() {
            for p in 0..first.num_points() {
                let vals: Vec<f64> = threads.iter().map(|t| t.runs[r][e][p]).collect();
                out.runs[r][e][p] =
                    // lint: allow(panic, reachable_panic): per-thread runs always produce at least one sample
                    catalyze_linalg::vector::median(&vals).expect("non-empty thread set");
            }
        }
    }
    out
}

/// Runs the data-TLB benchmark (the extension domain).
// lint: contract(deterministic)
pub fn run_dtlb(set: &CpuEventSet, cfg: &RunnerConfig) -> MeasurementSet {
    run_dtlb_obs(set, cfg, &NoopObserver)
}

/// [`run_dtlb`] with structured observability.
pub fn run_dtlb_obs(set: &CpuEventSet, cfg: &RunnerConfig, obs: &dyn Observer) -> MeasurementSet {
    let _root = Span::enter(obs, "run/dtlb");
    let tlb = cfg.core.tlb;
    let configs = crate::dtlb::sweep(&tlb);
    let stats: Vec<ExecStats> = {
        let _s = Span::enter(obs, "simulate");
        configs
            .par_iter()
            .enumerate()
            .map(|(p, c)| {
                let seed = 4242 + p as u64;
                let mut cpu = Cpu::new(cfg.core);
                cpu.run(&c.program(0, seed, crate::dtlb::WARMUP_PASSES));
                cpu.reset_stats();
                cpu.run(&c.program(0, seed, crate::dtlb::MEASURE_PASSES));
                cpu.stats()
            })
            .collect()
    };
    let norms: Vec<f64> =
        configs.iter().map(|c| (c.slots() * crate::dtlb::MEASURE_PASSES) as f64).collect();
    let pmu = CpuPmu::new(cfg.pmu);
    let runs = {
        let _s = Span::enter(obs, "read-counters");
        read_all_cpu(set, &pmu, &stats, &norms, cfg.repetitions)
    };
    record_runner_counters(obs, configs.len(), set.len(), cfg.repetitions);
    MeasurementSet {
        domain: "dtlb".into(),
        point_labels: crate::dtlb::point_labels(&tlb),
        events: set.iter().map(|(_, d)| d.info.name.to_string()).collect(),
        runs,
    }
}

/// Runs the store-path (write) cache benchmark (extension domain).
// lint: contract(deterministic)
pub fn run_dstore(set: &CpuEventSet, cfg: &RunnerConfig) -> MeasurementSet {
    run_dstore_obs(set, cfg, &NoopObserver)
}

/// [`run_dstore`] with structured observability.
pub fn run_dstore_obs(set: &CpuEventSet, cfg: &RunnerConfig, obs: &dyn Observer) -> MeasurementSet {
    let _root = Span::enter(obs, "run/dstore");
    let h = cfg.core.hierarchy;
    let configs = crate::dstore::sweep(&h);
    let stats: Vec<ExecStats> = {
        let _s = Span::enter(obs, "simulate");
        configs
            .par_iter()
            .enumerate()
            .map(|(p, c)| {
                let seed = 9000 + p as u64;
                let mut cpu = Cpu::new(cfg.core);
                cpu.run(&c.program(0, seed, crate::dstore::WARMUP_PASSES));
                cpu.reset_stats();
                cpu.run(&c.program(0, seed, crate::dstore::MEASURE_PASSES));
                cpu.stats()
            })
            .collect()
    };
    let norms: Vec<f64> =
        configs.iter().map(|c| (c.lines * crate::dstore::MEASURE_PASSES) as f64).collect();
    let pmu = CpuPmu::new(cfg.pmu);
    let runs = {
        let _s = Span::enter(obs, "read-counters");
        read_all_cpu(set, &pmu, &stats, &norms, cfg.repetitions)
    };
    record_runner_counters(obs, configs.len(), set.len(), cfg.repetitions);
    MeasurementSet {
        domain: "dstore".into(),
        point_labels: crate::dstore::point_labels(&h),
        events: set.iter().map(|(_, d)| d.info.name.to_string()).collect(),
        runs,
    }
}

/// Runs the GPU-FLOPs benchmark. Kernels execute on device 0 of
/// `cfg.gpu_devices`; events bound to other devices read their idle
/// telemetry.
// lint: contract(deterministic)
pub fn run_gpu_flops(set: &GpuEventSet, cfg: &RunnerConfig) -> MeasurementSet {
    run_gpu_flops_obs(set, cfg, &NoopObserver)
}

/// [`run_gpu_flops`] with structured observability.
pub fn run_gpu_flops_obs(
    set: &GpuEventSet,
    cfg: &RunnerConfig,
    obs: &dyn Observer,
) -> MeasurementSet {
    let _root = Span::enter(obs, "run/gpu-flops");
    let kernels = flops_gpu::kernel_space();
    let points: Vec<(usize, usize)> =
        (0..kernels.len()).flat_map(|k| (0..3).map(move |l| (k, l))).collect();
    let device_stats: Vec<Vec<GpuStats>> = {
        let _s = Span::enter(obs, "simulate");
        points
            .par_iter()
            .map(|&(k, l)| {
                let mut dev = GpuDevice::new(GpuConfig::default_sim());
                dev.launch(&kernels[k].kernel(l, cfg.gpu_wavefronts));
                let mut all = vec![GpuStats::default(); cfg.gpu_devices as usize];
                all[0] = dev.stats;
                all
            })
            .collect()
    };
    let events = all_ids(set.len());
    let pmu = CpuPmu::new(cfg.pmu);
    let norm = cfg.gpu_wavefronts as f64;
    let runs = {
        let _s = Span::enter(obs, "read-counters");
        (0..cfg.repetitions)
            .map(|rep| {
                let per_point: Vec<Vec<f64>> = device_stats
                    .iter()
                    .enumerate()
                    .map(|(p, devs)| pmu.read_gpu(set, devs, &events, run_key(rep, p)))
                    .collect();
                (0..events.len())
                    .map(|e| per_point.iter().map(|counts| counts[e] / norm).collect())
                    .collect()
            })
            .collect()
    };
    record_runner_counters(obs, points.len(), set.len(), cfg.repetitions);
    MeasurementSet {
        domain: "gpu-flops".into(),
        point_labels: flops_gpu::point_labels(),
        events: set.iter().map(|(_, d)| d.info.name.to_string()).collect(),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyze_sim::{mi250x_like, sapphire_rapids_like};

    #[test]
    fn cpu_flops_measurements_are_exact_for_fp_events() {
        let set = sapphire_rapids_like();
        let cfg = RunnerConfig::fast_test();
        let ms = run_cpu_flops(&set, &cfg);
        ms.validate().unwrap();
        assert_eq!(ms.num_points(), 48);
        assert_eq!(ms.num_runs(), 3);
        let e = ms.event_index("FP_ARITH_INST_RETIRED:SCALAR_DOUBLE").unwrap();
        let v = ms.mean_vector(e);
        // DSCAL kernel occupies points 12..15 (kernel index 4), values 24/48/96.
        assert_eq!(&v[12..15], &[24.0, 48.0, 96.0]);
        // DSCAL_FMA kernel (index 12): 12/24/48 FMA instructions counted twice.
        assert_eq!(&v[36..39], &[24.0, 48.0, 96.0]);
        // Identical across runs (architectural counter).
        let vecs = ms.vectors_for_event(e);
        assert_eq!(vecs[0], vecs[1]);
    }

    #[test]
    fn branch_measurements_match_expectation_rows() {
        let set = sapphire_rapids_like();
        let cfg = RunnerConfig::fast_test();
        let ms = run_branch(&set, &cfg);
        ms.validate().unwrap();
        assert_eq!(ms.num_points(), 11);
        let cond = ms.event_index("BR_INST_RETIRED:COND").unwrap();
        let v = ms.mean_vector(cond);
        let expect: Vec<f64> = branch::kernel_space().iter().map(|k| k.expectation[1]).collect();
        assert_eq!(v, expect, "COND matches CR row exactly");
        let misp = ms.event_index("BR_MISP_RETIRED:ALL_BRANCHES").unwrap();
        let v = ms.mean_vector(misp);
        let expect: Vec<f64> = branch::kernel_space().iter().map(|k| k.expectation[4]).collect();
        assert_eq!(v, expect, "MISP matches M row exactly");
    }

    #[test]
    fn gpu_measurements_structure() {
        let set = mi250x_like(2);
        let cfg = RunnerConfig::fast_test();
        let ms = run_gpu_flops(&set, &cfg);
        ms.validate().unwrap();
        assert_eq!(ms.num_points(), 45);
        let add = ms.event_index("rocm:::SQ_INSTS_VALU_ADD_F16:device=0").unwrap();
        let v = ms.mean_vector(add);
        // AH kernel: points 0..3 at 256/512/1024; SH kernel points 9..12.
        assert_eq!(&v[0..3], &[256.0, 512.0, 1024.0]);
        assert_eq!(&v[9..12], &[256.0, 512.0, 1024.0], "SUB feeds the ADD counter");
        assert_eq!(v[3], 0.0, "AS kernel does not touch F16 counter");
        // Idle device's counter reads zero everywhere.
        let add1 = ms.event_index("rocm:::SQ_INSTS_VALU_ADD_F16:device=1").unwrap();
        assert!(ms.mean_vector(add1).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn dcache_median_suppresses_outliers() {
        let set = sapphire_rapids_like();
        let mut cfg = RunnerConfig::fast_test();
        cfg.dcache_threads = 3;
        let per_thread = run_dcache_per_thread(&set, &cfg);
        assert_eq!(per_thread.len(), 3);
        for t in &per_thread {
            t.validate().unwrap();
        }
        let median = median_across_threads(&per_thread);
        median.validate().unwrap();
        assert_eq!(median.domain, "dcache");
        // The median at every cell lies between the per-thread min and max.
        for e in 0..median.num_events().min(20) {
            for p in 0..median.num_points() {
                let vals: Vec<f64> = per_thread.iter().map(|t| t.runs[0][e][p]).collect();
                let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let m = median.runs[0][e][p];
                assert!(m >= lo && m <= hi);
            }
        }
    }

    #[test]
    fn traced_runner_records_spans_and_counters() {
        use catalyze_obs::TraceCollector;
        let set = sapphire_rapids_like();
        let cfg = RunnerConfig::fast_test();
        let trace = TraceCollector::new();
        let ms = run_branch_obs(&set, &cfg, &trace);
        ms.validate().unwrap();
        // Root + simulate + read-counters spans.
        assert_eq!(trace.span_count(), 3);
        assert_eq!(trace.counter_value("runner.points"), Some(11));
        assert_eq!(trace.counter_value("runner.repetitions"), Some(3));
        assert!(trace.counter_value("runner.events").unwrap() > 0);
        // The noop-observer entry point produces the same measurements.
        let plain = run_branch(&set, &cfg);
        assert_eq!(plain.runs, ms.runs);
    }

    #[test]
    fn dcache_l1_region_hit_rate() {
        let set = sapphire_rapids_like();
        let cfg = RunnerConfig::fast_test();
        let ms = run_dcache(&set, &cfg);
        let l1hit = ms.event_index("MEM_LOAD_RETIRED:L1_HIT").unwrap();
        let v = ms.mean_vector(l1hit);
        // First two points are L1-resident: ~1 hit per access.
        assert!(v[0] > 0.97, "L1-resident hit rate {}", v[0]);
        assert!(v[1] > 0.97);
        // Memory-sized points: near zero.
        assert!(v[7] < 0.05, "memory-resident L1 hit rate {}", v[7]);
    }
}
