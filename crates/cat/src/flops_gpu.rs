//! The GPU-FLOPs benchmark: kernels for addition, subtraction,
//! multiplication, square root, and fused multiply-add in half, single, and
//! double precision — fifteen kernels, each run at three instruction counts.

use catalyze_sim::{FpKind, GpuKernel, Precision};
use serde::{Deserialize, Serialize};

/// One GPU-FLOPs kernel class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuFlopsKernel {
    /// Operation.
    pub op: FpKind,
    /// Precision.
    pub prec: Precision,
}

impl GpuFlopsKernel {
    /// Paper symbol: `T``P` with T in {A, S, M, SQ, F}, P in {H, S, D}.
    pub fn symbol(&self) -> String {
        let t = match self.op {
            FpKind::Add => "A",
            FpKind::Sub => "S",
            FpKind::Mul => "M",
            FpKind::Sqrt => "SQ",
            FpKind::Fma => "F",
            FpKind::Div => "DV",
        };
        let p = match self.prec {
            Precision::Half => "H",
            Precision::Single => "S",
            Precision::Double => "D",
        };
        format!("{t}{p}")
    }

    /// The three per-wavefront instruction counts each kernel is run at.
    pub fn sizes(&self) -> [u64; 3] {
        SIZES
    }

    /// Builds the launchable kernel for one size index.
    pub fn kernel(&self, size_index: usize, wavefronts: u64) -> GpuKernel {
        GpuKernel {
            name: self.symbol(),
            op: self.op,
            prec: self.prec,
            // lint: allow(reachable_panic): the runner sweeps size_index over 0..SIZES.len()
            instructions: SIZES[size_index],
            wavefronts,
        }
    }
}

/// Per-wavefront VALU instruction counts for the three runs of each kernel.
pub const SIZES: [u64; 3] = [256, 512, 1024];

/// Wavefronts dispatched per kernel launch.
pub(crate) const WAVEFRONTS: u64 = 880;

/// The fifteen kernels in expectation-basis order:
/// `AH, AS, AD, SH, SS, SD, MH, MS, MD, SQH, SQS, SQD, FH, FS, FD`
/// (the column order of the paper's Eq. 2).
pub fn kernel_space() -> Vec<GpuFlopsKernel> {
    let mut out = Vec::with_capacity(15);
    for op in [FpKind::Add, FpKind::Sub, FpKind::Mul, FpKind::Sqrt, FpKind::Fma] {
        for prec in Precision::ALL {
            out.push(GpuFlopsKernel { op, prec });
        }
    }
    out
}

/// Point labels (kernel-major, then size).
pub fn point_labels() -> Vec<String> {
    kernel_space()
        .iter()
        .flat_map(|k| SIZES.iter().map(move |s| format!("{}/{}", k.symbol(), s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyze_sim::{GpuConfig, GpuDevice};

    #[test]
    fn fifteen_kernels_in_basis_order() {
        let ks = kernel_space();
        assert_eq!(ks.len(), 15);
        let syms: Vec<String> = ks.iter().map(|k| k.symbol()).collect();
        assert_eq!(
            syms,
            vec![
                "AH", "AS", "AD", "SH", "SS", "SD", "MH", "MS", "MD", "SQH", "SQS", "SQD", "FH",
                "FS", "FD"
            ]
        );
    }

    #[test]
    fn forty_five_points() {
        let labels = point_labels();
        assert_eq!(labels.len(), 45);
        assert_eq!(labels[0], "AH/256");
        assert_eq!(labels[44], "FD/1024");
    }

    #[test]
    fn launch_counts_match() {
        let k = kernel_space()[0]; // AH
        let mut dev = GpuDevice::new(GpuConfig::default_sim());
        dev.launch(&k.kernel(1, 10));
        assert_eq!(dev.stats.valu_add[0], 512 * 10);
        assert_eq!(dev.stats.waves, 10);
    }

    #[test]
    fn sub_kernel_feeds_add_counter() {
        let sub = GpuFlopsKernel { op: FpKind::Sub, prec: Precision::Double };
        let mut dev = GpuDevice::new(GpuConfig::default_sim());
        dev.launch(&sub.kernel(0, 5));
        assert_eq!(dev.stats.valu_add[2], 256 * 5, "SUB lands in the ADD counter");
    }
}
