//! The CAT branching benchmark: eleven microkernels whose per-iteration
//! branch behavior spans the rows of the paper's branching expectation
//! matrix `E_branch` (Eq. 3).
//!
//! Each kernel is described by a two-iteration pattern of explicit
//! conditional branches (with exact taken/mispredict outcomes — data
//! patterns on real hardware are chosen to elicit exactly these rates) plus
//! unconditional jumps. A back-edge branch, always taken, closes each
//! iteration, exactly as the counted loop of the real benchmark does.
//!
//! Per iteration the kernels therefore retire, in `(CE, CR, T, D, M)`
//! expectation coordinates, exactly the rows of Eq. 3:
//!
//! ```text
//! k1  (2.0, 2.0, 1.5, 0, 0.0)    k7  (2.5, 2.0, 1.5, 0, 0.5)
//! k2  (2.0, 2.0, 1.0, 0, 0.0)    k8  (3.0, 2.5, 1.5, 0, 0.5)
//! k3  (2.0, 2.0, 2.0, 0, 0.0)    k9  (3.0, 2.5, 2.0, 0, 0.5)
//! k4  (2.0, 2.0, 1.5, 0, 0.5)    k10 (2.0, 2.0, 1.0, 1, 0.0)
//! k5  (2.5, 2.5, 1.5, 0, 0.5)    k11 (1.0, 1.0, 1.0, 0, 0.0)
//! k6  (2.5, 2.5, 2.0, 0, 0.5)
//! ```
//!
//! `CE` (conditional branches *executed*, i.e. including speculative
//! re-execution after a misprediction) exceeds `CR` on kernels 7–9; no raw
//! event on the simulated machine measures it — exactly the situation on
//! Sapphire Rapids that makes the "Conditional Branches Executed" metric
//! non-composable (Table VII).

use catalyze_sim::program::Block;
use catalyze_sim::{Instruction, IntKind, Program};
use serde::{Deserialize, Serialize};

/// One explicit conditional branch instance in the two-iteration pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CondSpec {
    /// Architectural outcome.
    pub taken: bool,
    /// Whether this instance mispredicts.
    pub mispredict: bool,
}

impl CondSpec {
    const fn new(taken: bool, mispredict: bool) -> Self {
        Self { taken, mispredict }
    }
}

/// Description of one branching kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchKernel {
    /// Kernel label (`k1`..`k11`).
    pub name: String,
    /// Explicit conditional branches in even iterations.
    pub even: Vec<CondSpec>,
    /// Explicit conditional branches in odd iterations.
    pub odd: Vec<CondSpec>,
    /// Unconditional jumps per iteration.
    pub uncond_per_iter: u32,
    /// The `(CE, CR, T, D, M)` expectation row (per iteration, including
    /// the always-taken back edge).
    pub expectation: [f64; 5],
}

impl BranchKernel {
    /// Per-iteration retired conditional branches (explicit + back edge).
    pub fn cond_retired_per_iter(&self) -> f64 {
        1.0 + (self.even.len() + self.odd.len()) as f64 / 2.0
    }

    /// Per-iteration taken conditional branches.
    pub fn taken_per_iter(&self) -> f64 {
        let explicit = self.even.iter().chain(&self.odd).filter(|c| c.taken).count() as f64;
        1.0 + explicit / 2.0
    }

    /// Per-iteration mispredicted branches.
    pub fn mispredicted_per_iter(&self) -> f64 {
        self.even.iter().chain(&self.odd).filter(|c| c.mispredict).count() as f64 / 2.0
    }

    /// Builds the program executing `iterations` iterations
    /// (`iterations` must be even — the pattern is two iterations long).
    ///
    /// # Panics
    /// Panics on odd `iterations`.
    pub fn program(&self, iterations: u64) -> Program {
        assert!(iterations % 2 == 0, "iterations must be even");
        let mut block = Block::new();
        let mut site = 100u32;
        for half in [&self.even, &self.odd] {
            // A couple of integer ops model the work computing conditions.
            block = block.push(Instruction::Int(IntKind::Add)).push(Instruction::Int(IntKind::Cmp));
            for c in half {
                block = block.push(Instruction::cond_forced(site, c.taken, c.mispredict));
                site += 1;
            }
            for _ in 0..self.uncond_per_iter {
                block = block.push(Instruction::UncondBranch);
            }
            // Back edge: always taken, always predicted.
            block = block.push(Instruction::cond_forced(99, true, false));
        }
        Program::new().bare_loop(block, iterations / 2)
    }
}

/// The eleven kernels, in the row order of Eq. 3.
pub fn kernel_space() -> Vec<BranchKernel> {
    let t = CondSpec::new(true, false);
    let n = CondSpec::new(false, false);
    // Mispredicting variants.
    let tm = CondSpec::new(true, true);
    let nm = CondSpec::new(false, true);
    vec![
        // k1 (2,2,1.5,0,0): one explicit branch, taken on alternate iters.
        BranchKernel {
            name: "k1".into(),
            even: vec![t],
            odd: vec![n],
            uncond_per_iter: 0,
            expectation: [2.0, 2.0, 1.5, 0.0, 0.0],
        },
        // k2 (2,2,1,0,0): one explicit branch, never taken.
        BranchKernel {
            name: "k2".into(),
            even: vec![n],
            odd: vec![n],
            uncond_per_iter: 0,
            expectation: [2.0, 2.0, 1.0, 0.0, 0.0],
        },
        // k3 (2,2,2,0,0): one explicit branch, always taken.
        BranchKernel {
            name: "k3".into(),
            even: vec![t],
            odd: vec![t],
            uncond_per_iter: 0,
            expectation: [2.0, 2.0, 2.0, 0.0, 0.0],
        },
        // k4 (2,2,1.5,0,0.5): alternate taken, mispredicted on the
        // not-taken instances (so that "mispredicted taken branches" is not
        // accidentally expressible in the expectation basis — on real
        // hardware the taken/not-taken split of mispredictions does not
        // line up with any CE/CR/T/D/M combination either).
        BranchKernel {
            name: "k4".into(),
            even: vec![t],
            odd: vec![nm],
            uncond_per_iter: 0,
            expectation: [2.0, 2.0, 1.5, 0.0, 0.5],
        },
        // k5 (2.5,2.5,1.5,0,0.5): three explicit branches per two iters,
        // one taken, one mispredicted.
        BranchKernel {
            name: "k5".into(),
            even: vec![tm, n],
            odd: vec![n],
            uncond_per_iter: 0,
            expectation: [2.5, 2.5, 1.5, 0.0, 0.5],
        },
        // k6 (2.5,2.5,2,0,0.5): as k5 but two taken per two iterations.
        BranchKernel {
            name: "k6".into(),
            even: vec![tm, n],
            odd: vec![t],
            uncond_per_iter: 0,
            expectation: [2.5, 2.5, 2.0, 0.0, 0.5],
        },
        // k7 (2.5,2,1.5,0,0.5): retired counts as k4; CE = 2.5 because the
        // mispredicted branch is re-executed speculatively.
        BranchKernel {
            name: "k7".into(),
            even: vec![nm],
            odd: vec![t],
            uncond_per_iter: 0,
            expectation: [2.5, 2.0, 1.5, 0.0, 0.5],
        },
        // k8 (3,2.5,1.5,0,0.5): three explicit per two iters, one taken.
        BranchKernel {
            name: "k8".into(),
            even: vec![nm, n],
            odd: vec![t],
            uncond_per_iter: 0,
            expectation: [3.0, 2.5, 1.5, 0.0, 0.5],
        },
        // k9 (3,2.5,2,0,0.5): three explicit per two iters, two taken.
        BranchKernel {
            name: "k9".into(),
            even: vec![nm, t],
            odd: vec![t],
            uncond_per_iter: 0,
            expectation: [3.0, 2.5, 2.0, 0.0, 0.5],
        },
        // k10 (2,2,1,1,0): one never-taken conditional plus one jump.
        BranchKernel {
            name: "k10".into(),
            even: vec![n],
            odd: vec![n],
            uncond_per_iter: 1,
            expectation: [2.0, 2.0, 1.0, 1.0, 0.0],
        },
        // k11 (1,1,1,0,0): the bare loop.
        BranchKernel {
            name: "k11".into(),
            even: vec![],
            odd: vec![],
            uncond_per_iter: 0,
            expectation: [1.0, 1.0, 1.0, 0.0, 0.0],
        },
    ]
}

/// Point labels (one per kernel).
pub fn point_labels() -> Vec<String> {
    kernel_space().iter().map(|k| k.name.clone()).collect()
}

/// Iterations per kernel measurement.
pub(crate) const ITERATIONS: u64 = 8192;

#[cfg(test)]
mod tests {
    use super::*;
    use catalyze_sim::{CoreConfig, Cpu};

    #[test]
    fn eleven_kernels() {
        assert_eq!(kernel_space().len(), 11);
        assert_eq!(point_labels()[10], "k11");
    }

    #[test]
    fn per_iteration_rates_match_expectations() {
        for k in kernel_space() {
            assert_eq!(k.cond_retired_per_iter(), k.expectation[1], "{} CR", k.name);
            assert_eq!(k.taken_per_iter(), k.expectation[2], "{} T", k.name);
            assert_eq!(k.uncond_per_iter as f64, k.expectation[3], "{} D", k.name);
            assert_eq!(k.mispredicted_per_iter(), k.expectation[4], "{} M", k.name);
            assert!(k.expectation[0] >= k.expectation[1], "{}: executed >= retired", k.name);
        }
    }

    #[test]
    fn simulated_counts_match_expectations_exactly() {
        let iters = 1000u64;
        for k in kernel_space() {
            let mut cpu = Cpu::new(CoreConfig::default_sim());
            cpu.run(&k.program(iters));
            let s = cpu.stats();
            let per = |x: u64| x as f64 / iters as f64;
            assert_eq!(per(s.branch.cond_retired), k.expectation[1], "{} CR", k.name);
            assert_eq!(per(s.branch.cond_taken), k.expectation[2], "{} T", k.name);
            assert_eq!(per(s.branch.uncond_retired), k.expectation[3], "{} D", k.name);
            assert_eq!(per(s.branch.mispredicted), k.expectation[4], "{} M", k.name);
        }
    }

    #[test]
    fn no_fp_activity() {
        let k = &kernel_space()[0];
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&k.program(100));
        assert_eq!(cpu.stats().flops(catalyze_sim::Precision::Double), 0);
        assert_eq!(cpu.stats().flops(catalyze_sim::Precision::Single), 0);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_iterations_rejected() {
        kernel_space()[0].program(7);
    }

    #[test]
    fn expectation_matrix_matches_paper_eq3() {
        let rows: Vec<[f64; 5]> = kernel_space().iter().map(|k| k.expectation).collect();
        let paper: [[f64; 5]; 11] = [
            [2.0, 2.0, 1.5, 0.0, 0.0],
            [2.0, 2.0, 1.0, 0.0, 0.0],
            [2.0, 2.0, 2.0, 0.0, 0.0],
            [2.0, 2.0, 1.5, 0.0, 0.5],
            [2.5, 2.5, 1.5, 0.0, 0.5],
            [2.5, 2.5, 2.0, 0.0, 0.5],
            [2.5, 2.0, 1.5, 0.0, 0.5],
            [3.0, 2.5, 1.5, 0.0, 0.5],
            [3.0, 2.5, 2.0, 0.0, 0.5],
            [2.0, 2.0, 1.0, 1.0, 0.0],
            [1.0, 1.0, 1.0, 0.0, 0.0],
        ];
        assert_eq!(rows, paper);
    }
}
