//! The unified runner front door: [`SimRequest`], a borrowing builder over
//! the six benchmark domains, plus typed configuration validation.
//!
//! Mirrors the analysis side's `AnalysisRequest`: setters borrow their
//! inputs, [`SimRequest::run`] validates up front and returns typed
//! [`RunError`]s instead of silently producing empty or degenerate
//! [`MeasurementSet`]s.
//!
//! ```
//! use catalyze_cat::{Domain, RunnerConfig, SimRequest};
//! use catalyze_sim::sapphire_rapids_like;
//!
//! let set = sapphire_rapids_like();
//! let cfg = RunnerConfig::fast_test();
//! let ms = SimRequest::new()
//!     .domain(Domain::Branch)
//!     .events(&set)
//!     .config(&cfg)
//!     .run()
//!     .expect("valid request");
//! assert_eq!(ms.domain, "branch");
//! ```

use crate::data::MeasurementSet;
use crate::runner::{self, RunnerConfig};
use catalyze_obs::{NoopObserver, Observer};
use catalyze_sim::{CpuEventSet, GpuEventSet};
use std::fmt;

/// The six CAT benchmark domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// CPU floating-point kernels (paper §III-B).
    CpuFlops,
    /// Branching kernels (paper §III-D).
    Branch,
    /// Multi-threaded data-cache pointer chase (paper §III-E).
    Dcache,
    /// Data-TLB page chase (extension domain).
    Dtlb,
    /// Store-path cache sweep (extension domain).
    Dstore,
    /// GPU floating-point kernels (paper §III-C).
    GpuFlops,
}

impl Domain {
    /// Every domain, in the canonical reporting order.
    pub const ALL: [Domain; 6] = [
        Domain::CpuFlops,
        Domain::Branch,
        Domain::Dcache,
        Domain::Dtlb,
        Domain::Dstore,
        Domain::GpuFlops,
    ];

    /// The measurement-set / CLI label of this domain.
    pub fn label(self) -> &'static str {
        match self {
            Domain::CpuFlops => "cpu-flops",
            Domain::Branch => "branch",
            Domain::Dcache => "dcache",
            Domain::Dtlb => "dtlb",
            Domain::Dstore => "dstore",
            Domain::GpuFlops => "gpu-flops",
        }
    }

    /// Parses a CLI label.
    pub fn parse(label: &str) -> Option<Domain> {
        Domain::ALL.into_iter().find(|d| d.label() == label)
    }

    /// Whether this domain measures the GPU event inventory.
    pub fn is_gpu(self) -> bool {
        matches!(self, Domain::GpuFlops)
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which simulation engine executes the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// Record each kernel once as a `KernelTrace` and replay it, with
    /// sweep points simulated in parallel — the default, and bit-identical
    /// to [`SimEngine::Direct`] (pinned by the engine-parity tests and the
    /// `BENCH_sim.json` CI gate).
    #[default]
    Replay,
    /// Sequential direct execution of every dynamic instruction — the
    /// reference path benchmarks and parity tests compare against.
    Direct,
}

/// A [`RunnerConfig`] value that would silently produce empty or
/// degenerate measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `repetitions == 0`: every domain would return zero runs.
    ZeroRepetitions,
    /// `flops_trips == 0`: the FLOPs kernels would retire nothing.
    ZeroFlopsTrips,
    /// `branch_iterations == 0`: the branching kernels would retire nothing.
    ZeroBranchIterations,
    /// `branch_iterations` odd: the kernels split iterations into halves.
    OddBranchIterations,
    /// `gpu_wavefronts == 0`: GPU kernels would launch empty.
    ZeroGpuWavefronts,
    /// `gpu_devices == 0`: no device to read events from.
    ZeroGpuDevices,
    /// `dcache_threads == 0`: the per-thread median would be over nothing.
    ZeroDcacheThreads,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroRepetitions => write!(f, "repetitions must be at least 1"),
            ConfigError::ZeroFlopsTrips => write!(f, "flops_trips must be at least 1"),
            ConfigError::ZeroBranchIterations => {
                write!(f, "branch_iterations must be at least 2")
            }
            ConfigError::OddBranchIterations => write!(f, "branch_iterations must be even"),
            ConfigError::ZeroGpuWavefronts => write!(f, "gpu_wavefronts must be at least 1"),
            ConfigError::ZeroGpuDevices => write!(f, "gpu_devices must be at least 1"),
            ConfigError::ZeroDcacheThreads => write!(f, "dcache_threads must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Why a [`SimRequest`] could not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// No domain was set.
    MissingDomain,
    /// A CPU domain was requested without [`SimRequest::events`].
    MissingCpuEvents(Domain),
    /// The GPU domain was requested without [`SimRequest::gpu_events`].
    MissingGpuEvents(Domain),
    /// The runner configuration is degenerate.
    InvalidConfig(ConfigError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::MissingDomain => write!(f, "no benchmark domain was selected"),
            RunError::MissingCpuEvents(d) => {
                write!(f, "domain {d} needs a CPU event set (SimRequest::events)")
            }
            RunError::MissingGpuEvents(d) => {
                write!(f, "domain {d} needs a GPU event set (SimRequest::gpu_events)")
            }
            RunError::InvalidConfig(e) => write!(f, "invalid runner config: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::InvalidConfig(e)
    }
}

impl RunnerConfig {
    /// Checks for degenerate values that would silently produce empty or
    /// meaningless measurements.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.repetitions == 0 {
            return Err(ConfigError::ZeroRepetitions);
        }
        if self.flops_trips == 0 {
            return Err(ConfigError::ZeroFlopsTrips);
        }
        if self.branch_iterations == 0 {
            return Err(ConfigError::ZeroBranchIterations);
        }
        if self.branch_iterations % 2 != 0 {
            return Err(ConfigError::OddBranchIterations);
        }
        if self.gpu_wavefronts == 0 {
            return Err(ConfigError::ZeroGpuWavefronts);
        }
        if self.gpu_devices == 0 {
            return Err(ConfigError::ZeroGpuDevices);
        }
        if self.dcache_threads == 0 {
            return Err(ConfigError::ZeroDcacheThreads);
        }
        Ok(())
    }

    /// A validating builder seeded with the full-scale defaults.
    pub fn builder() -> RunnerConfigBuilder {
        RunnerConfigBuilder { cfg: RunnerConfig::default_sim() }
    }
}

/// Builder for [`RunnerConfig`] whose [`RunnerConfigBuilder::build`]
/// rejects degenerate values with a typed [`ConfigError`].
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfigBuilder {
    cfg: RunnerConfig,
}

impl RunnerConfigBuilder {
    /// Sets the simulated core configuration.
    pub fn core(mut self, core: catalyze_sim::CoreConfig) -> Self {
        self.cfg.core = core;
        self
    }

    /// Sets the PMU configuration.
    pub fn pmu(mut self, pmu: catalyze_sim::PmuConfig) -> Self {
        self.cfg.pmu = pmu;
        self
    }

    /// Sets the benchmark repetition count.
    pub fn repetitions(mut self, n: usize) -> Self {
        self.cfg.repetitions = n;
        self
    }

    /// Sets the FLOPs-kernel trip count.
    pub fn flops_trips(mut self, n: u64) -> Self {
        self.cfg.flops_trips = n;
        self
    }

    /// Sets the branching-kernel iteration count (must be even).
    pub fn branch_iterations(mut self, n: u64) -> Self {
        self.cfg.branch_iterations = n;
        self
    }

    /// Sets GPU wavefronts per kernel launch.
    pub fn gpu_wavefronts(mut self, n: u64) -> Self {
        self.cfg.gpu_wavefronts = n;
        self
    }

    /// Sets the number of GPU devices on the node.
    pub fn gpu_devices(mut self, n: u32) -> Self {
        self.cfg.gpu_devices = n;
        self
    }

    /// Sets the data-cache benchmark thread count.
    pub fn dcache_threads(mut self, n: usize) -> Self {
        self.cfg.dcache_threads = n;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<RunnerConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// A borrowing builder over the measurement runners: pick a [`Domain`],
/// attach the matching event set, optionally override the configuration,
/// engine, or observer, and [`SimRequest::run`].
#[derive(Clone, Copy)]
pub struct SimRequest<'a> {
    domain: Option<Domain>,
    cpu_events: Option<&'a CpuEventSet>,
    gpu_events: Option<&'a GpuEventSet>,
    config: RunnerConfig,
    engine: SimEngine,
    observer: &'a dyn Observer,
}

impl Default for SimRequest<'_> {
    fn default() -> Self {
        Self {
            domain: None,
            cpu_events: None,
            gpu_events: None,
            config: RunnerConfig::default_sim(),
            engine: SimEngine::default(),
            observer: &NoopObserver,
        }
    }
}

impl<'a> SimRequest<'a> {
    /// An empty request with full-scale defaults and a no-op observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the benchmark domain.
    pub fn domain(mut self, domain: Domain) -> Self {
        self.domain = Some(domain);
        self
    }

    /// Attaches the CPU event inventory (required for CPU domains).
    pub fn events(mut self, set: &'a CpuEventSet) -> Self {
        self.cpu_events = Some(set);
        self
    }

    /// Attaches the GPU event inventory (required for [`Domain::GpuFlops`]).
    pub fn gpu_events(mut self, set: &'a GpuEventSet) -> Self {
        self.gpu_events = Some(set);
        self
    }

    /// Overrides the runner configuration (copied out of the reference).
    pub fn config(mut self, cfg: &RunnerConfig) -> Self {
        self.config = *cfg;
        self
    }

    /// Selects the simulation engine.
    pub fn engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches an observer for spans and counters.
    pub fn observer(mut self, obs: &'a dyn Observer) -> Self {
        self.observer = obs;
        self
    }

    /// Checks the request without running it.
    pub fn validate(&self) -> Result<Domain, RunError> {
        let domain = self.domain.ok_or(RunError::MissingDomain)?;
        self.config.validate()?;
        if domain.is_gpu() {
            if self.gpu_events.is_none() {
                return Err(RunError::MissingGpuEvents(domain));
            }
        } else if self.cpu_events.is_none() {
            return Err(RunError::MissingCpuEvents(domain));
        }
        Ok(domain)
    }

    /// Runs the selected benchmark and returns its measurements.
    // lint: contract(deterministic)
    pub fn run(self) -> Result<MeasurementSet, RunError> {
        let domain = self.validate()?;
        let cfg = &self.config;
        let obs = self.observer;
        let engine = self.engine;
        Ok(match domain {
            Domain::CpuFlops => {
                let set = self.cpu_events.ok_or(RunError::MissingCpuEvents(domain))?;
                runner::cpu_flops_with_engine(set, cfg, obs, engine)
            }
            Domain::Branch => {
                let set = self.cpu_events.ok_or(RunError::MissingCpuEvents(domain))?;
                runner::branch_with_engine(set, cfg, obs, engine)
            }
            Domain::Dcache => {
                let set = self.cpu_events.ok_or(RunError::MissingCpuEvents(domain))?;
                runner::dcache_with_engine(set, cfg, obs, engine)
            }
            Domain::Dtlb => {
                let set = self.cpu_events.ok_or(RunError::MissingCpuEvents(domain))?;
                runner::dtlb_with_engine(set, cfg, obs, engine)
            }
            Domain::Dstore => {
                let set = self.cpu_events.ok_or(RunError::MissingCpuEvents(domain))?;
                runner::dstore_with_engine(set, cfg, obs, engine)
            }
            Domain::GpuFlops => {
                let set = self.gpu_events.ok_or(RunError::MissingGpuEvents(domain))?;
                runner::measure_gpu_flops(set, cfg, obs)
            }
        })
    }
}

impl fmt::Debug for SimRequest<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimRequest")
            .field("domain", &self.domain)
            .field("cpu_events", &self.cpu_events.map(|s| s.len()))
            .field("gpu_events", &self.gpu_events.map(|s| s.len()))
            .field("engine", &self.engine)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyze_sim::{mi250x_like, sapphire_rapids_like};

    #[test]
    fn builder_rejects_every_degenerate_field() {
        assert_eq!(
            RunnerConfig::builder().repetitions(0).build().unwrap_err(),
            ConfigError::ZeroRepetitions
        );
        assert_eq!(
            RunnerConfig::builder().flops_trips(0).build().unwrap_err(),
            ConfigError::ZeroFlopsTrips
        );
        assert_eq!(
            RunnerConfig::builder().branch_iterations(0).build().unwrap_err(),
            ConfigError::ZeroBranchIterations
        );
        assert_eq!(
            RunnerConfig::builder().branch_iterations(7).build().unwrap_err(),
            ConfigError::OddBranchIterations
        );
        assert_eq!(
            RunnerConfig::builder().gpu_wavefronts(0).build().unwrap_err(),
            ConfigError::ZeroGpuWavefronts
        );
        assert_eq!(
            RunnerConfig::builder().gpu_devices(0).build().unwrap_err(),
            ConfigError::ZeroGpuDevices
        );
        assert_eq!(
            RunnerConfig::builder().dcache_threads(0).build().unwrap_err(),
            ConfigError::ZeroDcacheThreads
        );
    }

    #[test]
    fn builder_accepts_valid_overrides() {
        let cfg = RunnerConfig::builder()
            .repetitions(2)
            .flops_trips(32)
            .branch_iterations(128)
            .gpu_wavefronts(8)
            .gpu_devices(1)
            .dcache_threads(1)
            .build()
            .unwrap();
        assert_eq!(cfg.repetitions, 2);
        assert_eq!(cfg.dcache_threads, 1);
        cfg.validate().unwrap();
    }

    #[test]
    fn request_requires_domain_and_matching_events() {
        let set = sapphire_rapids_like();
        let gpu = mi250x_like(1);
        assert_eq!(SimRequest::new().run().unwrap_err(), RunError::MissingDomain);
        assert_eq!(
            SimRequest::new().domain(Domain::Branch).run().unwrap_err(),
            RunError::MissingCpuEvents(Domain::Branch)
        );
        assert_eq!(
            SimRequest::new().domain(Domain::GpuFlops).events(&set).run().unwrap_err(),
            RunError::MissingGpuEvents(Domain::GpuFlops)
        );
        // A GPU set does not satisfy a CPU domain and vice versa.
        assert_eq!(
            SimRequest::new().domain(Domain::CpuFlops).gpu_events(&gpu).run().unwrap_err(),
            RunError::MissingCpuEvents(Domain::CpuFlops)
        );
    }

    #[test]
    fn request_surfaces_config_errors() {
        let set = sapphire_rapids_like();
        let mut cfg = RunnerConfig::fast_test();
        cfg.repetitions = 0;
        assert_eq!(
            SimRequest::new().domain(Domain::Branch).events(&set).config(&cfg).run().unwrap_err(),
            RunError::InvalidConfig(ConfigError::ZeroRepetitions)
        );
    }

    #[test]
    fn domain_labels_round_trip() {
        for d in Domain::ALL {
            assert_eq!(Domain::parse(d.label()), Some(d));
            assert_eq!(format!("{d}"), d.label());
        }
        assert_eq!(Domain::parse("nope"), None);
    }
}
