//! The CAT CPU-FLOPs benchmark: 16 microkernels spanning
//! `{scalar, 128, 256, 512} x {FMA, non-FMA} x {SP, DP}`.
//!
//! Every kernel contains three loops with a known number of FP instructions
//! per iteration (24/48/96 for non-FMA kernels, 12/24/48 for FMA kernels —
//! the structure of the paper's Figure 1), so each kernel contributes three
//! measurement points whose expected per-iteration counts are exact.

use catalyze_sim::program::Block;
use catalyze_sim::{FpKind, Instruction, Precision, Program, VecWidth};
use serde::{Deserialize, Serialize};

/// Identity of one FLOPs kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlopsKernel {
    /// Element precision (Single or Double on the CPU).
    pub prec: Precision,
    /// SIMD width.
    pub width: VecWidth,
    /// Fused multiply-add kernel?
    pub fma: bool,
}

impl FlopsKernel {
    /// Short symbol, matching the paper's notation: `SSCAL`, `D256_FMA`, ...
    pub fn symbol(&self) -> String {
        let p = match self.prec {
            Precision::Single => "S",
            Precision::Double => "D",
            Precision::Half => "H",
        };
        let w = match self.width {
            VecWidth::Scalar => "SCAL".to_string(),
            w => w.bits().to_string(),
        };
        if self.fma {
            format!("{p}{w}_FMA")
        } else {
            format!("{p}{w}")
        }
    }

    /// FP instructions per loop iteration for the three loops.
    pub fn loop_sizes(&self) -> [u64; 3] {
        if self.fma {
            [12, 24, 48]
        } else {
            [24, 48, 96]
        }
    }

    /// The instruction this kernel's loop body repeats. Non-FMA kernels
    /// alternate add and multiply (like the real CAT kernels, which chain
    /// independent adds/muls); FMA kernels issue fused multiply-adds.
    fn instruction(&self, slot: u64) -> Instruction {
        let kind = if self.fma {
            FpKind::Fma
        } else if slot % 2 == 0 {
            FpKind::Add
        } else {
            FpKind::Mul
        };
        Instruction::fp(self.prec, self.width, kind)
    }

    /// Builds the program for one of the three loops.
    pub fn program(&self, loop_index: usize, trips: u64) -> Program {
        // lint: allow(reachable_panic): the runner only passes loop indices 0..3
        let n = self.loop_sizes()[loop_index];
        let mut block = Block::new();
        for slot in 0..n {
            block = block.push(self.instruction(slot));
        }
        Program::new().counted_loop(block, trips, loop_index as u32)
    }
}

/// The 16 kernels in expectation-basis order:
/// `SSCAL, S128, S256, S512, DSCAL, ..., D512, SSCAL_FMA, ..., S512_FMA,
/// DSCAL_FMA, ..., D512_FMA` (the column order of the paper's matrix `E`).
pub fn kernel_space() -> Vec<FlopsKernel> {
    let mut kernels = Vec::with_capacity(16);
    for fma in [false, true] {
        for prec in [Precision::Single, Precision::Double] {
            for width in VecWidth::ALL {
                kernels.push(FlopsKernel { prec, width, fma });
            }
        }
    }
    kernels
}

/// Measurement-point labels for the full benchmark (kernel-major, then
/// loop), matching the order produced by the runner.
pub fn point_labels() -> Vec<String> {
    kernel_space()
        .iter()
        .flat_map(|k| k.loop_sizes().into_iter().map(move |n| format!("{}/{}", k.symbol(), n)))
        .collect()
}

/// Trip count used for every loop (large enough that one-off effects like
/// the final back-edge fall-through are negligible).
pub const TRIPS: u64 = 4096;

#[cfg(test)]
mod tests {
    use super::*;
    use catalyze_sim::{CoreConfig, Cpu};

    #[test]
    fn sixteen_kernels_in_basis_order() {
        let ks = kernel_space();
        assert_eq!(ks.len(), 16);
        let symbols: Vec<String> = ks.iter().map(|k| k.symbol()).collect();
        assert_eq!(symbols[0], "SSCAL");
        assert_eq!(symbols[3], "S512");
        assert_eq!(symbols[4], "DSCAL");
        assert_eq!(symbols[7], "D512");
        assert_eq!(symbols[8], "SSCAL_FMA");
        assert_eq!(symbols[12], "DSCAL_FMA");
        assert_eq!(symbols[15], "D512_FMA");
    }

    #[test]
    fn loop_sizes_follow_paper() {
        let scal = FlopsKernel { prec: Precision::Double, width: VecWidth::Scalar, fma: false };
        assert_eq!(scal.loop_sizes(), [24, 48, 96]);
        let fma = FlopsKernel { prec: Precision::Double, width: VecWidth::V256, fma: true };
        assert_eq!(fma.loop_sizes(), [12, 24, 48]);
    }

    #[test]
    fn program_counts_match_expectation() {
        let k = FlopsKernel { prec: Precision::Double, width: VecWidth::V256, fma: true };
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&k.program(0, 10));
        let s = cpu.stats();
        assert_eq!(s.fp_class(Precision::Double, VecWidth::V256, FpKind::Fma), 120);
        // Loop header: one int add + one cmp + one branch per iteration.
        assert_eq!(s.int_total(), 20);
        assert_eq!(s.branch.cond_retired, 10);
    }

    #[test]
    fn non_fma_kernels_mix_add_and_mul() {
        let k = FlopsKernel { prec: Precision::Single, width: VecWidth::Scalar, fma: false };
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&k.program(2, 1));
        let s = cpu.stats();
        assert_eq!(s.fp_class(Precision::Single, VecWidth::Scalar, FpKind::Add), 48);
        assert_eq!(s.fp_class(Precision::Single, VecWidth::Scalar, FpKind::Mul), 48);
        assert_eq!(s.fp_class(Precision::Single, VecWidth::Scalar, FpKind::Fma), 0);
    }

    #[test]
    fn labels_are_48_points() {
        let labels = point_labels();
        assert_eq!(labels.len(), 48);
        assert_eq!(labels[0], "SSCAL/24");
        assert_eq!(labels[47], "D512_FMA/48");
    }
}
