//! A store-path (write) cache benchmark — a second extension domain: the
//! same footprint-sweep idea as the load benchmark, applied to the cache
//! hierarchy's *write* side (read-for-ownership traffic).
//!
//! The interesting per-architecture discoveries on the SPR-like machine:
//! no raw event attributes retired stores to a cache level the way
//! `MEM_LOAD_RETIRED:*` does for loads, so L1 store hits must be *composed*
//! (`stores − RFOs`); and nothing counts L3-level store hits at all, so
//! that metric is honestly non-composable (backward error 1).

use catalyze_sim::hierarchy::HierarchyConfig;
use catalyze_sim::program::Block;
use catalyze_sim::{Instruction, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

pub use crate::dcache::Region;

/// One store-sweep configuration: `lines` cache lines written per pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Number of distinct lines stored to.
    pub lines: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl StoreConfig {
    /// Footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.lines * self.line_bytes
    }

    /// Region for a hierarchy.
    pub fn region(&self, h: &HierarchyConfig) -> Region {
        let f = self.footprint_bytes();
        if f <= h.l1.size_bytes {
            Region::L1
        } else if f <= h.l2.size_bytes {
            Region::L2
        } else if f <= h.l3.size_bytes {
            Region::L3
        } else {
            Region::Memory
        }
    }

    /// Point label.
    pub fn label(&self, h: &HierarchyConfig) -> String {
        format!("stores/lines={}/{}", self.lines, self.region(h).label())
    }

    /// Store addresses: a seeded permutation of the line set.
    pub fn addresses(&self, base: u64, seed: u64) -> Vec<u64> {
        let n = self.lines as usize;
        let mut order: Vec<u64> = (0..self.lines).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        order.into_iter().map(|l| base + l * self.line_bytes).collect()
    }

    /// Program performing `passes` full write passes.
    pub fn program(&self, base: u64, seed: u64, passes: u64) -> Program {
        let mut block = Block::new();
        for &a in &self.addresses(base, seed) {
            block = block.push(Instruction::Store { addr: a, size: 8 });
        }
        Program::new().counted_loop(block, passes, 13)
    }
}

/// The sweep: two footprints per region (like the load benchmark, one
/// stride).
pub fn sweep(h: &HierarchyConfig) -> Vec<StoreConfig> {
    let line = h.l1.line_bytes;
    [
        h.l1.size_bytes / 4,
        h.l1.size_bytes / 2,
        h.l2.size_bytes / 4,
        h.l2.size_bytes / 2,
        h.l3.size_bytes / 4,
        h.l3.size_bytes / 2,
        h.l3.size_bytes * 2,
        h.l3.size_bytes * 4,
    ]
    .into_iter()
    .map(|f| StoreConfig { lines: f / line, line_bytes: line })
    .collect()
}

/// Point labels.
pub fn point_labels(h: &HierarchyConfig) -> Vec<String> {
    sweep(h).iter().map(|c| c.label(h)).collect()
}

/// Regions per point.
pub fn point_regions(h: &HierarchyConfig) -> Vec<Region> {
    sweep(h).iter().map(|c| c.region(h)).collect()
}

/// Warmup passes.
pub const WARMUP_PASSES: u64 = 2;
/// Measured passes. Normalized per-store rates are window-independent in
/// steady state, and the replay engine's keyed memo collapses measured
/// passes without re-driving the stream, so a longer window costs replay
/// nothing while amortizing the direct engine's per-pass work — the same
/// lever the dcache domain uses, stretched further because this domain's
/// footprints are smaller.
pub const MEASURE_PASSES: u64 = 16;

#[cfg(test)]
mod tests {
    use super::*;
    use catalyze_sim::{CoreConfig, Cpu};

    fn h() -> HierarchyConfig {
        HierarchyConfig::default_sim()
    }

    #[test]
    fn sweep_covers_regions() {
        let regions = point_regions(&h());
        assert_eq!(regions.len(), 8);
        for r in [Region::L1, Region::L2, Region::L3, Region::Memory] {
            assert_eq!(regions.iter().filter(|&&x| x == r).count(), 2, "{r:?}");
        }
    }

    #[test]
    fn l1_resident_stores_hit_l1() {
        let cfg = sweep(&h())[0];
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&cfg.program(0, 3, WARMUP_PASSES));
        cpu.reset_stats();
        cpu.run(&cfg.program(0, 3, MEASURE_PASSES));
        let s = cpu.stats();
        let accesses = cfg.lines * MEASURE_PASSES;
        assert_eq!(s.stores, accesses);
        assert_eq!(s.memory.l1.write_misses, 0, "fully L1-resident write set");
        assert_eq!(s.memory.l2.write_hits + s.memory.l2.write_misses, 0);
    }

    #[test]
    fn l2_resident_stores_rfo_into_l2() {
        let cfg = sweep(&h())[2];
        assert_eq!(cfg.region(&h()), Region::L2);
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&cfg.program(0, 3, WARMUP_PASSES));
        cpu.reset_stats();
        cpu.run(&cfg.program(0, 3, MEASURE_PASSES));
        let s = cpu.stats();
        let accesses = (cfg.lines * MEASURE_PASSES) as f64;
        let l1_miss_rate = s.memory.l1.write_misses as f64 / accesses;
        let l2_hit_rate = s.memory.l2.write_hits as f64 / accesses;
        assert!(l1_miss_rate > 0.99, "{l1_miss_rate}");
        assert!(l2_hit_rate > 0.95, "{l2_hit_rate}");
    }

    #[test]
    fn memory_sized_stores_miss_everywhere() {
        let cfg = *sweep(&h()).last().unwrap();
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&cfg.program(0, 3, 1));
        cpu.reset_stats();
        cpu.run(&cfg.program(0, 3, 1));
        let s = cpu.stats();
        let accesses = cfg.lines as f64;
        assert!(s.memory.l2.write_misses as f64 / accesses > 0.95);
        assert!(s.memory.l3.write_misses as f64 / accesses > 0.9);
    }

    #[test]
    fn addresses_are_a_permutation() {
        let cfg = StoreConfig { lines: 100, line_bytes: 64 };
        let a = cfg.addresses(0, 9);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
        assert_eq!(cfg.addresses(0, 9), a, "deterministic");
        assert_ne!(cfg.addresses(0, 10), a);
    }
}
