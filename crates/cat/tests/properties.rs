//! Property tests for the benchmark generators: chase permutations,
//! kernel accounting, and measurement invariants.

use catalyze_cat::branch::{BranchKernel, CondSpec};
use catalyze_cat::dcache::ChaseConfig;
use catalyze_cat::dtlb::TlbChaseConfig;
use catalyze_sim::{CoreConfig, Cpu};
use proptest::prelude::*;

proptest! {
    #[test]
    fn dcache_chase_is_a_permutation(pointers in 2u64..512, seed in 0u64..100) {
        let cfg = ChaseConfig { stride: 64, pointers, line_bytes: 64 };
        let addrs = cfg.chase_addresses(0, seed);
        prop_assert_eq!(addrs.len() as u64, pointers);
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len() as u64, pointers, "every slot exactly once");
        for &a in &addrs {
            prop_assert!(a < pointers * 64);
            prop_assert_eq!(a % 64, 0);
        }
    }

    #[test]
    fn dcache_chase_deterministic_per_seed(pointers in 2u64..128, seed in 0u64..50) {
        let cfg = ChaseConfig { stride: 128, pointers, line_bytes: 64 };
        prop_assert_eq!(cfg.chase_addresses(0, seed), cfg.chase_addresses(0, seed));
    }

    #[test]
    fn dtlb_chase_touches_every_page(pages in 2u64..64, lpp in 1u64..8, seed in 0u64..20) {
        let cfg = TlbChaseConfig { pages, lines_per_page: lpp, page_bytes: 4096 };
        let addrs = cfg.chase_addresses(0, seed);
        prop_assert_eq!(addrs.len() as u64, pages * lpp);
        let mut touched: Vec<u64> = addrs.iter().map(|a| a / 4096).collect();
        touched.sort_unstable();
        touched.dedup();
        prop_assert_eq!(touched.len() as u64, pages);
        // Distinct slots map to distinct addresses.
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), addrs.len());
    }

    #[test]
    fn branch_kernel_counts_scale_linearly(
        even_taken in any::<bool>(),
        odd_taken in any::<bool>(),
        misp in any::<bool>(),
        iters in 1u64..20,
    ) {
        let k = BranchKernel {
            name: "p".into(),
            even: vec![CondSpec { taken: even_taken, mispredict: misp }],
            odd: vec![CondSpec { taken: odd_taken, mispredict: false }],
            uncond_per_iter: 1,
            expectation: [0.0; 5],
        };
        let iters = iters * 2;
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&k.program(iters));
        let s = cpu.stats();
        // 1 explicit + 1 back edge per iteration.
        prop_assert_eq!(s.branch.cond_retired, 2 * iters);
        let explicit_taken = (even_taken as u64 + odd_taken as u64) * (iters / 2);
        prop_assert_eq!(s.branch.cond_taken, iters + explicit_taken);
        prop_assert_eq!(s.branch.uncond_retired, iters);
        prop_assert_eq!(s.branch.mispredicted, if misp { iters / 2 } else { 0 });
    }

    #[test]
    fn flops_kernel_instruction_counts(kernel_idx in 0usize..16, loop_idx in 0usize..3, trips in 1u64..16) {
        let kernels = catalyze_cat::flops_cpu::kernel_space();
        let k = kernels[kernel_idx];
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&k.program(loop_idx, trips));
        let s = cpu.stats();
        let expected_fp = k.loop_sizes()[loop_idx] * trips;
        let measured: u64 = s.fp_filtered(None, None, 1);
        prop_assert_eq!(measured, expected_fp);
        prop_assert_eq!(s.branch.cond_retired, trips, "one back edge per iteration");
    }
}
