//! Golden-file test for the Prometheus-style exposition format: a
//! deterministic registry built on the manual clock must render
//! byte-for-byte what `tests/golden_expo.txt` pins. Any format drift —
//! metric naming, label quoting, bucket bounds, line order — fails here
//! first, before a scraper or the CI jq gate sees it.
//!
//! To regenerate the golden file after an *intentional* format change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p catalyze-obs --test golden_expo
//! ```

use catalyze_obs::{FunnelRecord, MetricsRegistry, Observer, Span, TraceCollector};

/// One deterministic pipeline-shaped run: a root span, two stage children
/// with distinct durations, a funnel with drops, and counters.
fn reference_run(base_ns: u64) -> TraceCollector {
    let t = TraceCollector::manual();
    {
        let obs: &dyn Observer = &t;
        let _root = Span::enter(obs, "analyze/golden");
        {
            let _noise = Span::enter(obs, "noise");
            t.advance_ns(base_ns);
        }
        obs.funnel(FunnelRecord::new("noise", 12, 9).dropped("noisy", 2).dropped("zero", 1));
        {
            let _represent = Span::enter(obs, "represent");
            t.advance_ns(base_ns * 3);
            obs.counter("represent.lstsq_solves", 9);
        }
        obs.funnel(FunnelRecord::new("represent", 9, 7).dropped("unrepresentable", 2));
        obs.counter("linalg.lstsq_solves", 16);
    }
    t
}

/// Two runs with different timings folded into one registry, so the
/// golden file exercises multi-run aggregation, not just a single trace.
fn reference_registry() -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    reg.fold(&reference_run(100));
    reg.fold(&reference_run(700));
    reg
}

#[test]
fn exposition_matches_golden_file() {
    let expo = catalyze_obs::render_exposition(&reference_registry());
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_expo.txt");
        std::fs::write(path, &expo).unwrap();
        return;
    }
    let expected = include_str!("golden_expo.txt");
    assert_eq!(
        expo, expected,
        "exposition format drifted from tests/golden_expo.txt; \
         regenerate with GOLDEN_REGEN=1 if the change is intentional"
    );
}

#[test]
fn reference_registry_is_well_formed() {
    let reg = reference_registry();
    assert_eq!(reg.runs(), 2);
    // Every span from the reference runs aggregates with two samples.
    for name in ["analyze/golden", "noise", "represent"] {
        let h = reg.histogram(name).unwrap_or_else(|| panic!("missing span {name}"));
        assert_eq!(h.count(), 2);
    }
    assert_eq!(reg.counter_total("linalg.lstsq_solves"), Some(32));
    let noise = reg.funnel_stage("noise").expect("noise stage aggregated");
    assert_eq!(noise.records, 2);
    assert_eq!(noise.events_in, 24);
    assert_eq!(noise.kept, 18);
}
