//! Golden-file test for the trace JSON schema: a deterministic trace built
//! on the manual clock must render byte-for-byte what
//! `tests/golden_trace.json` pins. Any schema drift — key order, nesting,
//! indentation, the `version` field — fails here first.
//!
//! To regenerate the golden file after an *intentional* schema change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p catalyze-obs --test golden
//! ```

use catalyze_obs::{FunnelRecord, Observer, Span, TraceCollector};

/// Builds the reference trace: a root analysis span with two stage
/// children, two funnel records, and counters — the same shapes the
/// pipeline emits.
fn reference_trace() -> TraceCollector {
    let t = TraceCollector::manual();
    {
        let obs: &dyn Observer = &t;
        let _root = Span::enter(obs, "analyze/golden");
        t.advance_ns(10);
        {
            let _noise = Span::enter(obs, "noise");
            t.advance_ns(100);
        }
        obs.funnel(FunnelRecord::new("noise", 12, 9).dropped("noisy", 2).dropped("zero", 1));
        {
            let _represent = Span::enter(obs, "represent");
            t.advance_ns(50);
            obs.counter("represent.lstsq_solves", 9);
        }
        obs.funnel(FunnelRecord::new("represent", 9, 7).dropped("unrepresentable", 2));
        obs.counter("linalg.lstsq_solves", 16);
    }
    t
}

#[test]
fn trace_json_matches_golden_file() {
    let t = reference_trace();
    let json = t.render_json();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_trace.json");
        std::fs::write(path, &json).unwrap();
        return;
    }
    let expected = include_str!("golden_trace.json");
    assert_eq!(
        json, expected,
        "trace JSON schema drifted from tests/golden_trace.json; \
         regenerate with GOLDEN_REGEN=1 if the change is intentional"
    );
}

#[test]
fn reference_trace_is_well_formed() {
    let t = reference_trace();
    // Both stage spans nest under the root; nothing is left open.
    assert_eq!(t.span_count(), 3);
    let json = t.render_json();
    assert!(!json.contains("null"), "all spans closed: {json}");
    // Every funnel record reconciles: kept + dropped == in.
    let funnel = t.funnel_records();
    assert_eq!(funnel.len(), 2);
    assert!(funnel.iter().all(|f| f.reconciles()));
    // Counters are summed and sorted by name.
    assert_eq!(t.counter_value("linalg.lstsq_solves"), Some(16));
    let names: Vec<String> = t.counters().into_iter().map(|(n, _)| n).collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);
}
