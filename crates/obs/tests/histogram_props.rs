//! Property tests for the log-bucketed [`Histogram`]: merging two
//! histograms must be indistinguishable from recording every sample into
//! one, merge order must not matter, and quantile estimates must honour
//! the documented error bound — exact below 16, within 12.5 % relative
//! error at or above it.

use catalyze_obs::Histogram;
use proptest::prelude::*;

/// Records every sample of `vals` into a fresh histogram.
fn hist(vals: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

/// Observable fingerprint of a histogram: everything a caller can read.
/// Two histograms with equal fingerprints are interchangeable.
type Fingerprint = (u64, u64, Option<u64>, Option<u64>, Vec<(u64, u64)>);

fn fingerprint(h: &Histogram) -> Fingerprint {
    (h.count(), h.sum(), h.min(), h.max(), h.cumulative_buckets())
}

/// The exact `q`-quantile of `vals` under the histogram's rank rule:
/// 1-based rank `ceil(q * n)` clamped to `1..=n`, over the sorted samples.
fn exact_quantile(vals: &[u64], q: f64) -> u64 {
    let mut sorted = vals.to_vec();
    sorted.sort_unstable();
    if q <= 0.0 {
        return sorted[0];
    }
    if q >= 1.0 {
        return *sorted.last().unwrap();
    }
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Samples spanning the singleton range, several octaves, and large
/// magnitudes where bucket widths are widest.
fn sample() -> impl Strategy<Value = u64> {
    (0usize..4).prop_flat_map(|band| match band {
        0 => 0u64..16,
        1 => 16u64..4096,
        2 => 4096u64..1_000_000,
        _ => 1_000_000u64..(1u64 << 40),
    })
}

fn samples(max: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(sample(), 0..max)
}

proptest! {
    /// Merging `hist(a)` with `hist(b)` must equal `hist(a ++ b)` on every
    /// observable surface — count, sum, min, max, and the full cumulative
    /// bucket series.
    #[test]
    fn merge_matches_bulk_recording(a in samples(150), b in samples(150)) {
        let mut merged = hist(&a);
        merged.merge(&hist(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(fingerprint(&merged), fingerprint(&hist(&both)));
    }

    /// Merge is associative and commutative: folding three shards in any
    /// grouping or order yields the same histogram.
    #[test]
    fn merge_is_associative_and_commutative(
        a in samples(80),
        b in samples(80),
        c in samples(80),
    ) {
        // (a + b) + c
        let mut left = hist(&a);
        left.merge(&hist(&b));
        left.merge(&hist(&c));
        // a + (b + c)
        let mut right_inner = hist(&b);
        right_inner.merge(&hist(&c));
        let mut right = hist(&a);
        right.merge(&right_inner);
        // c + b + a
        let mut reversed = hist(&c);
        reversed.merge(&hist(&b));
        reversed.merge(&hist(&a));
        prop_assert_eq!(fingerprint(&left), fingerprint(&right));
        prop_assert_eq!(fingerprint(&left), fingerprint(&reversed));
    }

    /// Quantile estimates stay within the documented bound relative to the
    /// exact rank statistic: equal below 16 (singleton buckets), and within
    /// 12.5 % of the true value at or above 16 (bucket width is at most a
    /// quarter of the bucket's base, so the midpoint is off by at most an
    /// eighth).
    #[test]
    fn quantile_error_is_bounded(
        vals in proptest::collection::vec(sample(), 1..300),
        q in 0.0f64..1.0,
    ) {
        let h = hist(&vals);
        let est = h.quantile(q).expect("non-empty histogram");
        let truth = exact_quantile(&vals, q);
        if truth < 16 {
            prop_assert_eq!(est, truth, "singleton buckets must be exact");
        } else {
            let err = est.abs_diff(truth);
            // err <= truth / 8, in integer arithmetic.
            prop_assert!(
                err * 8 <= truth,
                "quantile({}) = {} drifted more than 12.5% from exact {}",
                q, est, truth
            );
        }
    }

    /// The extreme quantiles are always exact, and estimates never leave
    /// the observed value range.
    #[test]
    fn quantiles_are_clamped_to_observed_range(
        vals in proptest::collection::vec(sample(), 1..200),
        q in 0.0f64..1.0,
    ) {
        let h = hist(&vals);
        let min = *vals.iter().min().unwrap();
        let max = *vals.iter().max().unwrap();
        prop_assert_eq!(h.quantile(0.0).unwrap(), min);
        prop_assert_eq!(h.quantile(1.0).unwrap(), max);
        let est = h.quantile(q).unwrap();
        prop_assert!(est >= min && est <= max);
    }
}
