//! Dependency-free renderers for a folded [`MetricsRegistry`]: a
//! Prometheus-style text exposition and the versioned `metrics.v1` JSON
//! document.
//!
//! Both renderings are deterministic — the registry keeps everything in
//! sorted `BTreeMap`s and the histogram buckets have fixed boundaries — so
//! a manual-clock trace renders byte-identically on every run (the golden
//! test in `tests/golden_expo.rs` pins exactly that).
//!
//! The exposition format follows the Prometheus text conventions
//! (`# HELP`/`# TYPE` headers, cumulative `_bucket{le="…"}` series with a
//! closing `+Inf`, `_sum`/`_count` pairs) without claiming full spec
//! compliance; empty buckets are skipped to keep the output proportional
//! to what was actually observed.

use crate::collector::json_string;
use crate::MetricsRegistry;
use std::fmt::Write as _;

/// Escapes a Prometheus label value (backslash, double quote, newline).
fn label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a rate so the exposition stays byte-stable: fixed six decimal
/// places, which is plenty for a `0.0..=1.0` drop rate.
fn rate(r: f64) -> String {
    format!("{r:.6}")
}

/// Renders the Prometheus-style text exposition of a registry: run count,
/// per-span duration histograms, counter totals, and per-stage funnel
/// series.
pub fn render_exposition(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("# HELP catalyze_runs_total Trace runs folded into this registry.\n");
    out.push_str("# TYPE catalyze_runs_total counter\n");
    let _ = writeln!(out, "catalyze_runs_total {}", reg.runs());

    if !reg.span_names().is_empty() {
        out.push_str(
            "# HELP catalyze_span_duration_ns Span wall-time distribution in nanoseconds.\n",
        );
        out.push_str("# TYPE catalyze_span_duration_ns histogram\n");
        for (name, h) in reg.spans() {
            let span = label_value(name);
            for (le, cum) in h.cumulative_buckets() {
                let _ = writeln!(
                    out,
                    "catalyze_span_duration_ns_bucket{{span=\"{span}\",le=\"{le}\"}} {cum}"
                );
            }
            let _ = writeln!(
                out,
                "catalyze_span_duration_ns_bucket{{span=\"{span}\",le=\"+Inf\"}} {}",
                h.count()
            );
            let _ = writeln!(out, "catalyze_span_duration_ns_sum{{span=\"{span}\"}} {}", h.sum());
            let _ =
                writeln!(out, "catalyze_span_duration_ns_count{{span=\"{span}\"}} {}", h.count());
        }
    }

    if reg.counters().next().is_some() {
        out.push_str("# HELP catalyze_counter_total Observer counter totals across runs.\n");
        out.push_str("# TYPE catalyze_counter_total counter\n");
        for (name, total) in reg.counters() {
            let _ =
                writeln!(out, "catalyze_counter_total{{name=\"{}\"}} {total}", label_value(name));
        }
    }

    if reg.funnel().next().is_some() {
        out.push_str(
            "# HELP catalyze_funnel_events_total Events entering and surviving each stage.\n",
        );
        out.push_str("# TYPE catalyze_funnel_events_total counter\n");
        for (stage, agg) in reg.funnel() {
            let stage = label_value(stage);
            let _ = writeln!(
                out,
                "catalyze_funnel_events_total{{stage=\"{stage}\",disposition=\"in\"}} {}",
                agg.events_in
            );
            let _ = writeln!(
                out,
                "catalyze_funnel_events_total{{stage=\"{stage}\",disposition=\"kept\"}} {}",
                agg.kept
            );
        }
        out.push_str("# HELP catalyze_funnel_dropped_total Per-reason drop totals per stage.\n");
        out.push_str("# TYPE catalyze_funnel_dropped_total counter\n");
        for (stage, agg) in reg.funnel() {
            for (reason, count) in &agg.dropped {
                let _ = writeln!(
                    out,
                    "catalyze_funnel_dropped_total{{stage=\"{}\",reason=\"{}\"}} {count}",
                    label_value(stage),
                    label_value(reason)
                );
            }
        }
        out.push_str("# HELP catalyze_funnel_drop_rate Aggregate drop rate per stage.\n");
        out.push_str("# TYPE catalyze_funnel_drop_rate gauge\n");
        for (stage, agg) in reg.funnel() {
            let _ = writeln!(
                out,
                "catalyze_funnel_drop_rate{{stage=\"{}\"}} {}",
                label_value(stage),
                rate(agg.drop_rate())
            );
        }
    }
    out
}

/// Renders the versioned `metrics.v1` JSON document:
///
/// ```json
/// {
///   "version": 1,
///   "schema": "metrics.v1",
///   "runs": 3,
///   "spans": [
///     {"name": "...", "count": 3, "sum_ns": 360, "min_ns": 100,
///      "max_ns": 140, "p50_ns": 120, "p90_ns": 140, "p99_ns": 140}
///   ],
///   "counters": [{"name": "...", "total": 9}],
///   "funnel": [
///     {"stage": "...", "records": 3, "in": 30, "kept": 24,
///      "drop_rate": 0.200000,
///      "dropped": [{"reason": "...", "count": 6}]}
///   ]
/// }
/// ```
///
/// Key order is fixed and every map is sorted by name, mirroring the trace
/// schema's conventions; quantiles carry the histogram's documented
/// 12.5 % error bound. This is a *separate artifact* from the trace v1
/// schema — aggregating never bumps the trace schema version.
pub fn render_metrics_json(reg: &MetricsRegistry) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"schema\": \"metrics.v1\",\n");
    let _ = write!(out, "  \"runs\": {},\n  \"spans\": [", reg.runs());
    for (i, (name, h)) in reg.spans().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": {}, \"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \
             \"max_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}",
            json_string(name),
            h.count(),
            h.sum(),
            h.min().unwrap_or(0),
            h.max().unwrap_or(0),
            h.p50().unwrap_or(0),
            h.p90().unwrap_or(0),
            h.p99().unwrap_or(0)
        );
    }
    if reg.spans().next().is_some() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"counters\": [");
    for (i, (name, total)) in reg.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {{\"name\": {}, \"total\": {total}}}", json_string(name));
    }
    if reg.counters().next().is_some() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"funnel\": [");
    for (i, (stage, agg)) in reg.funnel().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"stage\": {}, \"records\": {}, \"in\": {}, \"kept\": {}, \
             \"drop_rate\": {}, \"dropped\": [",
            json_string(stage),
            agg.records,
            agg.events_in,
            agg.kept,
            rate(agg.drop_rate())
        );
        for (j, (reason, count)) in agg.dropped.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"reason\": {}, \"count\": {count}}}", json_string(reason));
        }
        out.push_str("]}");
    }
    if reg.funnel().next().is_some() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunnelRecord, Observer, TraceCollector};

    fn registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for scale in [1u64, 2] {
            let t = TraceCollector::manual();
            let id = t.span_start("analyze/x");
            t.advance_ns(1000 * scale);
            t.span_end(id);
            t.counter("solves", 5);
            t.funnel(FunnelRecord::new("noise", 10, 8).dropped("noisy", 2).dropped("zero", 0));
            reg.fold(&t);
        }
        reg
    }

    #[test]
    fn exposition_has_all_families_and_is_deterministic() {
        let reg = registry();
        let expo = render_exposition(&reg);
        assert!(expo.contains("catalyze_runs_total 2\n"), "{expo}");
        assert!(expo.contains("# TYPE catalyze_span_duration_ns histogram"), "{expo}");
        assert!(
            expo.contains("catalyze_span_duration_ns_bucket{span=\"analyze/x\",le=\"+Inf\"} 2"),
            "{expo}"
        );
        assert!(expo.contains("catalyze_span_duration_ns_sum{span=\"analyze/x\"} 3000"), "{expo}");
        assert!(expo.contains("catalyze_counter_total{name=\"solves\"} 10"), "{expo}");
        assert!(
            expo.contains("catalyze_funnel_events_total{stage=\"noise\",disposition=\"in\"} 20"),
            "{expo}"
        );
        assert!(
            expo.contains("catalyze_funnel_dropped_total{stage=\"noise\",reason=\"noisy\"} 4"),
            "{expo}"
        );
        assert!(expo.contains("catalyze_funnel_drop_rate{stage=\"noise\"} 0.200000"), "{expo}");
        assert_eq!(expo, render_exposition(&registry()), "byte-stable");
    }

    #[test]
    fn cumulative_buckets_end_at_count_before_inf() {
        let reg = registry();
        let expo = render_exposition(&reg);
        // The last finite bucket's cumulative count equals _count.
        let lines: Vec<&str> = expo
            .lines()
            .filter(|l| l.starts_with("catalyze_span_duration_ns_bucket{span=\"analyze/x\""))
            .collect();
        assert!(lines.len() >= 2, "{expo}");
        assert!(lines[lines.len() - 2].ends_with(" 2"), "{lines:?}");
    }

    #[test]
    fn metrics_json_shape() {
        let reg = registry();
        let json = render_metrics_json(&reg);
        assert!(json.contains("\"version\": 1"), "{json}");
        assert!(json.contains("\"schema\": \"metrics.v1\""), "{json}");
        assert!(json.contains("\"runs\": 2"), "{json}");
        assert!(json.contains("\"name\": \"analyze/x\", \"count\": 2, \"sum_ns\": 3000"), "{json}");
        assert!(json.contains("\"drop_rate\": 0.200000"), "{json}");
        assert!(json.contains("{\"reason\": \"zero\", \"count\": 0}"), "{json}");
    }

    #[test]
    fn empty_registry_renders_empty_sections() {
        let reg = MetricsRegistry::new();
        let expo = render_exposition(&reg);
        assert!(expo.contains("catalyze_runs_total 0\n"), "{expo}");
        assert!(!expo.contains("histogram"), "{expo}");
        let json = render_metrics_json(&reg);
        assert!(json.contains("\"spans\": [],"), "{json}");
        assert!(json.ends_with("\"funnel\": []\n}\n"), "{json}");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(label_value("plain"), "plain");
        assert_eq!(label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
