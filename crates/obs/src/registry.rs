//! Aggregation across runs: fold any number of [`TraceCollector`]s into
//! per-span duration histograms, counter totals, and per-stage funnel
//! aggregates.
//!
//! One [`TraceCollector`] describes a single run; production health is a
//! *distribution* over many. [`MetricsRegistry::fold`] walks a collector's
//! recorded spans (closed ones contribute their wall time to a
//! [`Histogram`] keyed by span name), sums its counters, and accumulates
//! its funnel records by stage, so repeated runs — a `--repeat N` sweep, a
//! CI matrix, a long-lived service — collapse into one scrape-able view
//! (see [`crate::render_exposition`] and [`crate::render_metrics_json`]).

use crate::histogram::Histogram;
use crate::{FunnelRecord, TraceCollector};
use std::collections::BTreeMap;

/// Per-stage funnel totals across every folded run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
// lint: allow(dead_api): aggregate type returned by the registry's funnel view
pub struct FunnelAggregate {
    /// Number of [`FunnelRecord`]s folded for this stage.
    pub records: u64,
    /// Total measurements entering the stage across runs.
    pub events_in: u64,
    /// Total measurements surviving the stage across runs.
    pub kept: u64,
    /// Per-reason drop totals, sorted by reason.
    pub dropped: BTreeMap<String, u64>,
}

impl FunnelAggregate {
    fn fold(&mut self, rec: &FunnelRecord) {
        self.records = self.records.saturating_add(1);
        self.events_in = self.events_in.saturating_add(rec.events_in as u64);
        self.kept = self.kept.saturating_add(rec.kept as u64);
        for (reason, count) in &rec.dropped {
            let slot = self.dropped.entry(reason.clone()).or_insert(0);
            *slot = slot.saturating_add(*count as u64);
        }
    }

    /// Total drops across all reasons.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.values().fold(0u64, |acc, &n| acc.saturating_add(n))
    }

    /// Aggregate drop rate in `0.0..=1.0`; `0.0` when no events entered
    /// (same zero-event semantics as [`FunnelRecord::drop_rate`]).
    pub fn drop_rate(&self) -> f64 {
        if self.events_in == 0 {
            return 0.0;
        }
        (self.total_dropped() as f64 / self.events_in as f64).min(1.0)
    }
}

/// Folds [`TraceCollector`] runs into aggregate metrics: span-duration
/// histograms, counter totals, and funnel aggregates, all keyed by name in
/// sorted order so every rendering of the registry is deterministic.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    runs: u64,
    spans: BTreeMap<String, Histogram>,
    counters: BTreeMap<String, u64>,
    funnel: BTreeMap<String, FunnelAggregate>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one run into the registry. Closed spans contribute their wall
    /// time to the histogram keyed by their name; spans still open when
    /// the collector is folded have no duration and are skipped.
    pub fn fold(&mut self, trace: &TraceCollector) {
        self.runs = self.runs.saturating_add(1);
        for span in trace.span_records() {
            if let Some(d) = span.duration_ns {
                self.spans.entry(span.name).or_default().record(d);
            }
        }
        for (name, value) in trace.counters() {
            let slot = self.counters.entry(name).or_insert(0);
            *slot = slot.saturating_add(value);
        }
        for rec in trace.funnel_records() {
            self.funnel.entry(rec.stage.clone()).or_default().fold(&rec);
        }
    }

    /// Number of runs folded so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Span names with at least one closed observation, sorted.
    pub fn span_names(&self) -> Vec<&str> {
        self.spans.keys().map(String::as_str).collect()
    }

    /// The duration histogram of one span name, if observed.
    pub fn histogram(&self, span: &str) -> Option<&Histogram> {
        self.spans.get(span)
    }

    /// All span histograms, sorted by name.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total of one counter across every folded run.
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// All counter totals, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// One stage's funnel aggregate, if observed.
    pub fn funnel_stage(&self, stage: &str) -> Option<&FunnelAggregate> {
        self.funnel.get(stage)
    }

    /// All funnel aggregates, sorted by stage name.
    pub fn funnel(&self) -> impl Iterator<Item = (&str, &FunnelAggregate)> {
        self.funnel.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been folded.
    pub fn is_empty(&self) -> bool {
        self.runs == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Observer, Span};

    fn one_run(scale: u64) -> TraceCollector {
        let t = TraceCollector::manual();
        {
            let obs: &dyn Observer = &t;
            let _root = Span::enter(obs, "analyze/demo");
            {
                let _s = Span::enter(obs, "noise");
                t.advance_ns(100 * scale);
            }
            obs.counter("solves", 3);
            obs.funnel(FunnelRecord::new("noise", 10, 8).dropped("noisy", 2));
            t.advance_ns(7);
        }
        t
    }

    #[test]
    fn folding_accumulates_spans_counters_and_funnel() {
        let mut reg = MetricsRegistry::new();
        assert!(reg.is_empty());
        reg.fold(&one_run(1));
        reg.fold(&one_run(3));
        assert_eq!(reg.runs(), 2);
        assert_eq!(reg.span_names(), vec!["analyze/demo", "noise"]);
        let noise = reg.histogram("noise").unwrap();
        assert_eq!(noise.count(), 2);
        assert_eq!(noise.min(), Some(100));
        assert_eq!(noise.max(), Some(300));
        assert_eq!(reg.counter_total("solves"), Some(6));
        let f = reg.funnel_stage("noise").unwrap();
        assert_eq!(f.records, 2);
        assert_eq!(f.events_in, 20);
        assert_eq!(f.kept, 16);
        assert_eq!(f.dropped.get("noisy"), Some(&4));
        assert_eq!(f.drop_rate(), 0.2);
    }

    #[test]
    fn open_spans_are_skipped() {
        let t = TraceCollector::manual();
        let _open = t.span_start("open");
        t.advance_ns(5);
        let mut reg = MetricsRegistry::new();
        reg.fold(&t);
        assert_eq!(reg.runs(), 1);
        assert!(reg.histogram("open").is_none(), "open span has no duration to record");
    }

    #[test]
    fn same_name_spans_in_one_run_all_count() {
        let t = TraceCollector::manual();
        for ns in [10u64, 20, 30] {
            let id = t.span_start("kernel");
            t.advance_ns(ns);
            t.span_end(id);
        }
        let mut reg = MetricsRegistry::new();
        reg.fold(&t);
        let h = reg.histogram("kernel").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 60);
    }
}
