//! The recording observer: span tree, counters, funnel records, and the
//! human/JSON renderers.

use crate::{FunnelRecord, Observer, SpanId};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Time source for span stamps. Production traces use the monotonic clock;
/// tests drive a manual clock so rendered traces are byte-reproducible.
#[derive(Debug, Clone, Copy)]
enum Clock {
    Monotonic(Instant),
    Manual(u64),
}

#[derive(Debug, Clone)]
struct SpanNode {
    name: String,
    depth: usize,
    start_ns: u64,
    /// `None` while the span is still open.
    duration_ns: Option<u64>,
    children: Vec<usize>,
}

/// One recorded span, flattened out of the trace tree — the shape the
/// aggregation layer ([`crate::MetricsRegistry`]) folds over.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint: allow(dead_api): record type returned by the collector's drain API
pub struct SpanRecord {
    /// Span name as passed to [`Observer::span_start`].
    pub name: String,
    /// Nesting depth at start time (roots are 0).
    pub depth: usize,
    /// Start stamp relative to the collector's epoch.
    pub start_ns: u64,
    /// Wall time, or `None` while the span is still open.
    pub duration_ns: Option<u64>,
}

#[derive(Debug)]
struct Inner {
    clock: Clock,
    spans: Vec<SpanNode>,
    roots: Vec<usize>,
    stack: Vec<usize>,
    counters: BTreeMap<String, u64>,
    funnel: Vec<FunnelRecord>,
}

impl Inner {
    fn now_ns(&self) -> u64 {
        match self.clock {
            Clock::Monotonic(epoch) => {
                u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            Clock::Manual(now) => now,
        }
    }
}

/// An [`Observer`] that records everything it sees: a nested span tree with
/// monotonic-clock durations, summed counters, and funnel records in
/// arrival order.
///
/// The collector uses interior mutability and is intended for the
/// single-threaded orchestration path of an analysis (the pipeline's
/// stages run sequentially on the calling thread); it is deliberately not
/// `Sync`.
#[derive(Debug)]
pub struct TraceCollector {
    inner: RefCell<Inner>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// A collector stamping spans with the system monotonic clock.
    pub fn new() -> Self {
        // lint: allow(nondet_time): span timestamps are observability metadata; certified payloads go through manual()
        Self::with_clock(Clock::Monotonic(Instant::now()))
    }

    /// A collector with a manually advanced clock starting at 0 ns — spans
    /// get deterministic stamps, so rendered traces are byte-reproducible
    /// (used by the golden-file tests).
    pub fn manual() -> Self {
        Self::with_clock(Clock::Manual(0))
    }

    fn with_clock(clock: Clock) -> Self {
        Self {
            inner: RefCell::new(Inner {
                clock,
                spans: Vec::new(),
                roots: Vec::new(),
                stack: Vec::new(),
                counters: BTreeMap::new(),
                funnel: Vec::new(),
            }),
        }
    }

    /// Advances the manual clock by `ns`. No effect on a monotonic-clock
    /// collector.
    pub fn advance_ns(&self, ns: u64) {
        let mut inner = self.inner.borrow_mut();
        if let Clock::Manual(now) = &mut inner.clock {
            *now = now.saturating_add(ns);
        }
    }

    /// Current value of a counter, if it was ever incremented.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner.borrow().counters.get(name).copied()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner.borrow().counters.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    /// All funnel records, in arrival order. (Named to stay clear of the
    /// `Observer::funnel` recording method.)
    pub fn funnel_records(&self) -> Vec<FunnelRecord> {
        self.inner.borrow().funnel.clone()
    }

    /// Number of spans started so far (open or closed).
    pub fn span_count(&self) -> usize {
        self.inner.borrow().spans.len()
    }

    /// All recorded spans in start order, flattened out of the tree.
    pub fn span_records(&self) -> Vec<SpanRecord> {
        self.inner
            .borrow()
            .spans
            .iter()
            .map(|s| SpanRecord {
                name: s.name.clone(),
                depth: s.depth,
                start_ns: s.start_ns,
                duration_ns: s.duration_ns,
            })
            .collect()
    }

    /// Renders the schema-stable JSON trace:
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "spans": [
    ///     {"name": "...", "start_ns": 0, "duration_ns": 10, "children": [...]}
    ///   ],
    ///   "counters": [{"name": "...", "value": 1}],
    ///   "funnel": [
    ///     {"stage": "...", "in": 7, "kept": 5,
    ///      "dropped": [{"reason": "...", "count": 2}]}
    ///   ]
    /// }
    /// ```
    ///
    /// Key order is fixed, counters are sorted by name, spans and funnel
    /// records appear in recording order, and a still-open span renders
    /// `"duration_ns": null`. The schema carries a `version` field so
    /// downstream consumers (CI validation, `BENCH_pipeline.json`
    /// trajectories) can evolve with it.
    pub fn render_json(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::from("{\n  \"version\": 1,\n  \"spans\": [");
        render_span_list(&mut out, &inner.spans, &inner.roots, 2);
        out.push_str("],\n  \"counters\": [");
        for (i, (name, value)) in inner.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{\"name\": {}, \"value\": {value}}}", json_string(name));
        }
        if !inner.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"funnel\": [");
        for (i, rec) in inner.funnel.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"stage\": {}, \"in\": {}, \"kept\": {}, \"dropped\": [",
                json_string(&rec.stage),
                rec.events_in,
                rec.kept
            );
            for (j, (reason, count)) in rec.dropped.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"reason\": {}, \"count\": {count}}}", json_string(reason));
            }
            out.push_str("]}");
        }
        if !inner.funnel.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders the human summary: the span tree with wall times, the
    /// per-stage funnel, and the counters.
    pub fn render_human(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::from("trace\n");
        let now = inner.now_ns();
        for &root in &inner.roots {
            render_human_span(&mut out, &inner.spans, root, now);
        }
        if !inner.funnel.is_empty() {
            out.push_str("funnel\n");
            for rec in &inner.funnel {
                // Zero-count reasons stay in the JSON (a stage that *could*
                // drop is information) but would only be noise here.
                let parts: Vec<String> = rec
                    .dropped
                    .iter()
                    .filter(|(_, n)| *n > 0)
                    .map(|(r, n)| format!("{r} {n}"))
                    .collect();
                let drops = if parts.is_empty() { String::from("-") } else { parts.join(", ") };
                let _ = writeln!(
                    out,
                    "  {:<12} in {:>5}  kept {:>5}  dropped: {}",
                    rec.stage, rec.events_in, rec.kept, drops
                );
            }
        }
        if !inner.counters.is_empty() {
            out.push_str("counters\n");
            for (name, value) in &inner.counters {
                let _ = writeln!(out, "  {name:<36} {value:>12}");
            }
        }
        out
    }
}

impl Observer for TraceCollector {
    fn span_start(&self, name: &str) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        let start_ns = inner.now_ns();
        let id = inner.spans.len();
        let depth = inner.stack.len();
        inner.spans.push(SpanNode {
            name: name.to_string(),
            depth,
            start_ns,
            duration_ns: None,
            children: Vec::new(),
        });
        match inner.stack.last().copied() {
            Some(parent) => inner.spans[parent].children.push(id),
            None => inner.roots.push(id),
        }
        inner.stack.push(id);
        SpanId(u64::try_from(id).unwrap_or(u64::MAX))
    }

    fn span_end(&self, id: SpanId) {
        let mut inner = self.inner.borrow_mut();
        let Ok(target) = usize::try_from(id.0) else { return };
        if !inner.stack.contains(&target) {
            return; // already closed, or a foreign id — ignore
        }
        let now = inner.now_ns();
        // Unwind to the target: any span left open below it closes with it.
        while let Some(open) = inner.stack.pop() {
            let node = &mut inner.spans[open];
            node.duration_ns = Some(now.saturating_sub(node.start_ns));
            if open == target {
                break;
            }
        }
    }

    fn counter(&self, name: &str, delta: u64) {
        let mut inner = self.inner.borrow_mut();
        let slot = inner.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn funnel(&self, record: FunnelRecord) {
        self.inner.borrow_mut().funnel.push(record);
    }
}

/// Renders `ids` as a JSON array body (without the surrounding brackets'
/// first `[`/last `]`), indented `indent` levels deep.
fn render_span_list(out: &mut String, spans: &[SpanNode], ids: &[usize], indent: usize) {
    let pad = "  ".repeat(indent);
    for (i, &id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let node = &spans[id];
        let _ = write!(
            out,
            "\n{pad}{{\"name\": {}, \"start_ns\": {}, \"duration_ns\": ",
            json_string(&node.name),
            node.start_ns
        );
        match node.duration_ns {
            Some(d) => {
                let _ = write!(out, "{d}");
            }
            None => out.push_str("null"),
        }
        out.push_str(", \"children\": [");
        render_span_list(out, spans, &node.children, indent + 1);
        out.push_str("]}");
    }
    if !ids.is_empty() {
        let _ = write!(out, "\n{}", "  ".repeat(indent - 1));
    }
}

fn render_human_span(out: &mut String, spans: &[SpanNode], id: usize, now: u64) {
    // lint: allow(reachable_panic): ids come from the collector's own span table
    let node = &spans[id];
    let label = format!("{}{}", "  ".repeat(node.depth + 1), node.name);
    let time = match node.duration_ns {
        Some(d) => format_ns(d),
        None => format!("{} (open)", format_ns(now.saturating_sub(node.start_ns))),
    };
    let _ = writeln!(out, "{label:<48} {time:>12}");
    for &child in &node.children {
        render_human_span(out, spans, child, now);
    }
}

/// Formats a nanosecond count at a human scale.
fn format_ns(ns: u64) -> String {
    let v = ns as f64;
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", v / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", v / 1e6)
    } else {
        format!("{:.3} s", v / 1e9)
    }
}

/// Escapes `s` as a JSON string literal, including the quotes. (Shared
/// with the exposition and diff renderers.)
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;

    #[test]
    fn spans_nest_by_call_order() {
        let t = TraceCollector::manual();
        let obs: &dyn Observer = &t;
        {
            let _root = Span::enter(obs, "root");
            t.advance_ns(10);
            {
                let _child = Span::enter(obs, "child");
                t.advance_ns(5);
            }
            {
                let _child = Span::enter(obs, "sibling");
                t.advance_ns(1);
            }
        }
        assert_eq!(t.span_count(), 3);
        let json = t.render_json();
        let root_at = json.find("\"root\"").unwrap();
        let child_at = json.find("\"child\"").unwrap();
        assert!(child_at > root_at, "child rendered inside root");
        assert!(json.contains("\"duration_ns\": 16"), "{json}");
        assert!(json.contains("\"duration_ns\": 5"), "{json}");
    }

    #[test]
    fn unclosed_span_renders_null_duration() {
        let t = TraceCollector::manual();
        let id = t.span_start("open");
        t.advance_ns(3);
        let json = t.render_json();
        assert!(json.contains("\"duration_ns\": null"), "{json}");
        t.span_end(id);
        assert!(!t.render_json().contains("null"));
    }

    #[test]
    fn dropping_a_parent_closes_orphaned_children() {
        let t = TraceCollector::manual();
        let parent = t.span_start("parent");
        let _child = t.span_start("child");
        t.advance_ns(7);
        t.span_end(parent); // child was never ended explicitly
        let json = t.render_json();
        assert!(!json.contains("null"), "unwind closed the child: {json}");
    }

    #[test]
    fn double_end_is_ignored() {
        let t = TraceCollector::manual();
        let a = t.span_start("a");
        t.span_end(a);
        t.span_end(a);
        t.span_end(SpanId(999));
        assert_eq!(t.span_count(), 1);
    }

    #[test]
    fn counters_sum_and_sort() {
        let t = TraceCollector::new();
        t.counter("b", 2);
        t.counter("a", 1);
        t.counter("b", 3);
        assert_eq!(t.counters(), vec![("a".into(), 1), ("b".into(), 5)]);
        assert_eq!(t.counter_value("b"), Some(5));
        assert_eq!(t.counter_value("missing"), None);
    }

    #[test]
    fn human_rendering_has_all_sections() {
        let t = TraceCollector::manual();
        {
            let _s = Span::enter(&t, "stage");
            t.advance_ns(1_500);
        }
        t.counter("solves", 4);
        t.funnel(FunnelRecord::new("stage", 3, 2).dropped("noisy", 1));
        let human = t.render_human();
        assert!(human.contains("trace\n"));
        assert!(human.contains("stage"));
        assert!(human.contains("1.5 µs"));
        assert!(human.contains("funnel"));
        assert!(human.contains("noisy 1"));
        assert!(human.contains("counters"));
        assert!(human.contains("solves"));
    }

    #[test]
    fn zero_count_drop_reasons_stay_out_of_the_human_tree() {
        let t = TraceCollector::manual();
        t.funnel(FunnelRecord::new("select", 4, 4).dropped("dependent", 0));
        t.funnel(FunnelRecord::new("noise", 5, 4).dropped("noisy", 1).dropped("zero", 0));
        let human = t.render_human();
        assert!(!human.contains("dependent"), "{human}");
        assert!(!human.contains("zero 0"), "{human}");
        assert!(human.contains("dropped: -"), "all-zero stage renders a dash: {human}");
        assert!(human.contains("noisy 1"), "{human}");
        // The JSON keeps every reason, zero counts included.
        let json = t.render_json();
        assert!(json.contains("\"reason\": \"dependent\", \"count\": 0"), "{json}");
    }

    #[test]
    fn span_records_flatten_the_tree_in_start_order() {
        let t = TraceCollector::manual();
        {
            let obs: &dyn Observer = &t;
            let _root = Span::enter(obs, "root");
            t.advance_ns(2);
            let _child = Span::enter(obs, "child");
            t.advance_ns(3);
        }
        let open = t.span_start("open");
        let records = t.span_records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "root");
        assert_eq!(records[0].depth, 0);
        assert_eq!(records[0].duration_ns, Some(5));
        assert_eq!(records[1].name, "child");
        assert_eq!(records[1].depth, 1);
        assert_eq!(records[1].start_ns, 2);
        assert_eq!(records[1].duration_ns, Some(3));
        assert_eq!(records[2].duration_ns, None, "still open");
        t.span_end(open);
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("n\nl"), "\"n\\nl\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(12), "12 ns");
        assert_eq!(format_ns(1_500), "1.5 µs");
        assert_eq!(format_ns(2_500_000), "2.50 ms");
        assert_eq!(format_ns(3_200_000_000), "3.200 s");
    }
}
