//! Log-bucketed duration histogram: fixed bucket boundaries, mergeable,
//! with documented quantile error bounds.
//!
//! The bucket layout is fixed for every histogram (which is what makes two
//! histograms mergeable by element-wise addition):
//!
//! * values `0..=15` land in sixteen singleton buckets — one value per
//!   bucket, so small durations are recorded exactly;
//! * values `>= 16` land in log₂ octaves, each split into four equal-width
//!   linear sub-buckets: octave `k = floor(log2 v)` covers
//!   `[2^k, 2^(k+1))` and its sub-buckets each span `2^(k-2)` values.
//!
//! That gives [`NUM_BUCKETS`] = 16 + 60·4 = 256 buckets covering the whole
//! `u64` range with no configuration and no allocation growth.
//!
//! # Quantile error bound
//!
//! [`Histogram::quantile`] locates the bucket holding the requested rank
//! and returns the bucket midpoint, clamped to the exact observed
//! `[min, max]`. For values `< 16` the answer is exact. For values
//! `>= 16` the true value and the estimate share a sub-bucket of width
//! `2^(k-2)` whose lower bound is at least `2^k`, so the relative error is
//! at most `(width/2) / lo = 2^(k-3) / 2^k` = **12.5 %**. `quantile(0.0)`
//! and `quantile(1.0)` return the exact `min`/`max`.

use std::fmt;

/// Total number of buckets: 16 singletons + 60 octaves × 4 sub-buckets.
pub const NUM_BUCKETS: usize = 256;

/// Sub-buckets per octave (a power of two; controls the error bound).
const SUBS: u64 = 4;

/// First octave that uses sub-bucketing (`2^4 = 16`).
const FIRST_OCTAVE: u32 = 4;

/// Bucket index for a value, per the layout documented at module level.
fn bucket_index(v: u64) -> usize {
    if v < 16 {
        // lint: allow(lossy_cast): v < 16 fits any usize
        return v as usize;
    }
    let k = 63 - v.leading_zeros(); // floor(log2 v), >= FIRST_OCTAVE
    let sub = (v - (1u64 << k)) >> (k - 2); // 0..SUBS
                                            // lint: allow(lossy_cast): SUBS = 4 and sub < 4 fit any usize
    16 + ((k - FIRST_OCTAVE) as usize) * SUBS as usize + sub as usize
}

/// Inclusive `(lo, hi)` value range of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < 16 {
        return (i as u64, i as u64);
    }
    // lint: allow(lossy_cast): SUBS = 4 fits any usize
    let k = FIRST_OCTAVE + ((i - 16) / SUBS as usize) as u32;
    // lint: allow(lossy_cast): SUBS = 4 fits any usize
    let sub = ((i - 16) % SUBS as usize) as u64;
    let width = 1u64 << (k - 2);
    let lo = (1u64 << k) + sub * width;
    (lo, lo + (width - 1))
}

/// A fixed-boundary log-bucketed histogram of `u64` samples (span
/// durations in nanoseconds, in this crate's use), tracking exact
/// `count`/`sum`/`min`/`max` alongside the bucket counts.
///
/// Two histograms always share the same boundaries, so [`Histogram::merge`]
/// is element-wise addition — associative, commutative, and
/// count-preserving (see the property tests in `tests/`).
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { counts: Box::new([0; NUM_BUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample. Saturates (rather than wraps) on `count`/`sum`
    /// overflow.
    pub fn record(&mut self, v: u64) {
        // `bucket_index` is total over u64, but clamp anyway: `v` is
        // caller-controlled, and an index bug here must cost accuracy in
        // the last bucket, not a panic in the metrics path.
        let b = bucket_index(v).min(NUM_BUCKETS - 1);
        self.counts[b] = self.counts[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` (element-wise bucket addition plus
    /// `count`/`sum`/`min`/`max` combination). Because the boundaries are
    /// fixed, merging is associative and count-preserving.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimated `q`-quantile (`0.0..=1.0`) with the module-level error
    /// bound: exact for samples `< 16` and within 12.5 % relative error
    /// otherwise; `q <= 0` returns the exact minimum and `q >= 1` the
    /// exact maximum. `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        // 1-based rank of the requested sample.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                let mid = lo + (hi - lo) / 2;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max) // unreachable in practice: counts sum to count
    }

    /// Estimated median (`quantile(0.5)`).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.9)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Occupied buckets as `(upper_bound, cumulative_count)` pairs in
    /// ascending bound order — the shape a Prometheus-style `_bucket{le=…}`
    /// series wants. Empty buckets are skipped; the caller appends the
    /// `+Inf` bucket (which equals [`Histogram::count`]).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum = cum.saturating_add(c);
            out.push((bucket_bounds(i).1, cum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_exhaustive_and_ordered() {
        // Every bucket's bounds are contiguous with its neighbour's and
        // every value maps back into its own bucket.
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi, "bucket {i}");
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
            if i + 1 < NUM_BUCKETS {
                let (next_lo, _) = bucket_bounds(i + 1);
                assert_eq!(hi + 1, next_lo, "gap after bucket {i}");
            }
        }
        assert_eq!(bucket_bounds(0).0, 0);
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn record_is_total_over_the_u64_range() {
        // Regression for the reachable-panic fix: `record` indexes through
        // a clamped local, so no caller-supplied value can reach an
        // out-of-bounds bucket.
        let mut h = Histogram::new();
        for v in [0u64, 15, 16, 1u64 << 40, u64::MAX - 1, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 7, 15] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.p50(), Some(2));
        assert_eq!(h.quantile(1.0), Some(15));
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 25);
    }

    #[test]
    fn quantiles_respect_the_error_bound() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (0..1000).map(|i| 100 + i * 97).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1] as f64;
            let got = h.quantile(q).unwrap() as f64;
            assert!((got - truth).abs() / truth <= 0.125, "q={q}: got {got}, truth {truth}");
        }
    }

    #[test]
    fn empty_histogram_has_no_statistics() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn merge_preserves_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5u64, 1_000, 40_000] {
            a.record(v);
        }
        for v in [2u64, 9_999_999] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), Some(9_999_999));
        assert_eq!(a.sum(), 5 + 1_000 + 40_000 + 2 + 9_999_999);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 17, 900, 900, 900, 1 << 40] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(buckets.last().unwrap().1, h.count());
    }
}
