//! A minimal recursive-descent JSON reader, just big enough for the diff
//! loader to consume the crate's own artifacts (trace v1, `metrics.v1`,
//! and the bench envelopes around them).
//!
//! The crate stays dependency-free, so it cannot lean on `serde_json`;
//! this parser accepts standard JSON (RFC 8259) with two deliberate
//! simplifications: numbers are read as `f64` (the artifacts' counters and
//! nanosecond sums fit well inside the integers `f64` represents exactly
//! for any realistic trace), and `\uXXXX` escapes outside the BMP are
//! accepted pair-wise without surrogate validation.

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys are sorted (duplicate keys: last one
/// wins), which is fine for reading the crate's own deterministic
/// artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key`, when `self` is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, when `self` is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The text, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when `self` is numeric. (The artifact loaders only read
    /// unsigned integers; this is for tests and future signed fields.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer (truncating), when `self` is
    /// a finite non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.is_finite() && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    // lint: allow(reachable_panic): *pos < bytes.len() guards the index
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected `{}` at byte {}", *c as char, *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    // lint: allow(reachable_panic): parse_value dispatched on bytes[*pos], so pos is in range
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        // lint: allow(reachable_panic): *pos < bytes.len() guards the index
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    // lint: allow(reachable_panic): start <= *pos <= bytes.len() by the scan loop
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number `{text}`: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape `{hex}`: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar from the source text.
                // lint: allow(reachable_panic): the match arm saw a byte at *pos
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_crate_s_own_trace_rendering() {
        use crate::{FunnelRecord, Observer, TraceCollector};
        let t = TraceCollector::manual();
        let id = t.span_start("analyze/\"quoted\"");
        t.advance_ns(42);
        t.span_end(id);
        t.counter("linalg.lstsq_solves", 7);
        t.funnel(FunnelRecord::new("noise", 3, 2).dropped("noisy", 1));
        let parsed = parse(&t.render_json()).unwrap();
        assert_eq!(parsed.get("version").and_then(Value::as_u64), Some(1));
        let spans = parsed.get("spans").and_then(Value::as_arr).unwrap();
        assert_eq!(spans[0].get("name").and_then(Value::as_str), Some("analyze/\"quoted\""));
        assert_eq!(spans[0].get("duration_ns").and_then(Value::as_u64), Some(42));
        let counters = parsed.get("counters").and_then(Value::as_arr).unwrap();
        assert_eq!(counters[0].get("total"), None);
        assert_eq!(counters[0].get("value").and_then(Value::as_u64), Some(7));
    }

    #[test]
    fn scalars_arrays_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5e3, true, false, null, "x\nA"], "b": {}}"#).unwrap();
        let a = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2500.0));
        assert_eq!(a[2], Value::Bool(true));
        assert_eq!(a[3], Value::Bool(false));
        assert_eq!(a[4], Value::Null);
        assert_eq!(a[5].as_str(), Some("x\nA"));
        assert_eq!(v.get("b"), Some(&Value::Obj(BTreeMap::new())));
    }

    #[test]
    fn malformed_documents_error() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("12 34").is_err(), "trailing data");
        assert!(parse("nul").is_err());
    }

    #[test]
    fn negative_numbers_are_not_u64() {
        let v = parse("-3").unwrap();
        assert_eq!(v.as_f64(), Some(-3.0));
        assert_eq!(v.as_u64(), None);
    }
}
