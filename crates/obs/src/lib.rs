//! # catalyze-obs
//!
//! Structured observability for the CATalyze analysis pipeline. The paper's
//! pipeline is a funnel — hundreds of raw events in, a handful of defined
//! metrics out — and a performance study is only trustworthy when the
//! measurement harness instruments *itself*: how long each stage took, how
//! many events each stage dropped and why, and how many linear-algebra
//! solves ran underneath.
//!
//! The crate is dependency-free and exposes three pieces:
//!
//! * [`Observer`] — the instrumentation trait: nested spans (monotonic-clock
//!   timed), named counters, and per-stage [`FunnelRecord`]s
//!   (events in / kept / dropped-with-reason);
//! * [`NoopObserver`] — the zero-cost default; every method is an empty
//!   body, so uninstrumented runs pay nothing and produce byte-identical
//!   results;
//! * [`TraceCollector`] — records everything and renders both a human
//!   summary tree and a schema-stable JSON trace (see
//!   [`TraceCollector::render_json`] for the schema).
//!
//! ```
//! use catalyze_obs::{FunnelRecord, Observer, Span, TraceCollector};
//!
//! let trace = TraceCollector::new();
//! {
//!     let obs: &dyn Observer = &trace;
//!     let _root = Span::enter(obs, "analyze/demo");
//!     {
//!         let _stage = Span::enter(obs, "noise");
//!         obs.counter("events.scanned", 7);
//!     }
//!     obs.funnel(FunnelRecord::new("noise", 7, 5).dropped("noisy", 1).dropped("zero", 1));
//! }
//! let json = trace.render_json();
//! assert!(json.contains("\"analyze/demo\""));
//! assert!(trace.funnel_records().iter().all(|f| f.reconciles()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod collector;
mod diff;
mod expo;
mod histogram;
mod json;
mod registry;
mod shared;

pub use collector::{SpanRecord, TraceCollector};
pub use diff::{diff, DiffConfig, DiffReport, Snapshot};
pub use expo::{render_exposition, render_metrics_json};
pub use histogram::{Histogram, NUM_BUCKETS};
pub use registry::{FunnelAggregate, MetricsRegistry};
pub use shared::SharedObserver;

/// Opaque handle to a started span, returned by [`Observer::span_start`]
/// and consumed by [`Observer::span_end`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u64);

/// How many measurements entered a pipeline stage, how many survived, and
/// where the rest went. A well-formed record *reconciles*:
/// `kept + Σ dropped == events_in`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunnelRecord {
    /// Stage label (e.g. `"noise"`, `"represent"`).
    pub stage: String,
    /// Measurements entering the stage.
    pub events_in: usize,
    /// Measurements surviving the stage.
    pub kept: usize,
    /// `(reason, count)` pairs for everything the stage discarded, in the
    /// order the reasons were attached.
    pub dropped: Vec<(String, usize)>,
}

impl FunnelRecord {
    /// A record with no drop reasons attached yet.
    pub fn new(stage: &str, events_in: usize, kept: usize) -> Self {
        Self { stage: stage.to_string(), events_in, kept, dropped: Vec::new() }
    }

    /// Attaches a drop reason (builder style). Zero-count reasons are kept:
    /// a stage that *could* drop for a reason but didn't is still
    /// information.
    pub fn dropped(mut self, reason: &str, count: usize) -> Self {
        self.dropped.push((reason.to_string(), count));
        self
    }

    /// Total measurements dropped across all reasons (saturating, so a
    /// corrupt record cannot panic the accounting).
    pub fn total_dropped(&self) -> usize {
        self.dropped.iter().fold(0usize, |acc, (_, n)| acc.saturating_add(*n))
    }

    /// True when `kept + dropped == events_in` — every input is accounted
    /// for. Well-defined on the edges: a zero-event stage
    /// (`in == kept == 0`, any number of zero-count reasons) reconciles,
    /// and an over-reporting record (`kept + dropped > events_in`, even at
    /// the brink of `usize` overflow) is `false` rather than a panic.
    pub fn reconciles(&self) -> bool {
        self.kept.checked_add(self.total_dropped()) == Some(self.events_in)
    }

    /// True when the record claims more outcomes than inputs
    /// (`kept + dropped > events_in`) — the specific way a stage's
    /// bookkeeping goes wrong that [`FunnelRecord::reconciles`] cannot
    /// distinguish from under-reporting.
    pub fn over_reported(&self) -> bool {
        match self.kept.checked_add(self.total_dropped()) {
            Some(total) => total > self.events_in,
            None => true,
        }
    }

    /// Fraction of inputs the stage discarded, in `0.0..=1.0`. A
    /// zero-event stage has a drop rate of `0.0` (nothing entered, so
    /// nothing was lost); the rate is capped at `1.0` for over-reporting
    /// records.
    pub fn drop_rate(&self) -> f64 {
        if self.events_in == 0 {
            return 0.0;
        }
        (self.total_dropped() as f64 / self.events_in as f64).min(1.0)
    }
}

/// The instrumentation sink threaded through the pipeline.
///
/// Implementations use interior mutability (`&self` everywhere) so a single
/// observer can be shared by reference across the stages of one analysis.
/// All methods must be cheap; the pipeline calls them on its hot path.
pub trait Observer {
    /// Opens a span. Nesting is by call order: a span started while another
    /// is open becomes its child.
    fn span_start(&self, name: &str) -> SpanId;

    /// Closes the span `id`. Out-of-order closes are tolerated (the
    /// collector unwinds to the matching span).
    fn span_end(&self, id: SpanId);

    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &str, delta: u64);

    /// Records a per-stage funnel observation.
    fn funnel(&self, record: FunnelRecord);
}

/// RAII guard for a span: [`Span::enter`] opens it, dropping the guard
/// closes it, so early returns and `?` propagation cannot leak an open
/// span.
pub struct Span<'a> {
    obs: &'a dyn Observer,
    id: SpanId,
}

impl<'a> Span<'a> {
    /// Opens a span on `obs` and returns the guard that closes it.
    pub fn enter(obs: &'a dyn Observer, name: &str) -> Self {
        Self { obs, id: obs.span_start(name) }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.obs.span_end(self.id);
    }
}

/// The zero-cost default observer: every method is an empty body the
/// optimizer erases, so `NoopObserver` runs are byte-identical to — and no
/// slower than — uninstrumented ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    fn span_start(&self, _name: &str) -> SpanId {
        SpanId(0)
    }

    fn span_end(&self, _id: SpanId) {}

    fn counter(&self, _name: &str, _delta: u64) {}

    fn funnel(&self, _record: FunnelRecord) {}
}

/// A shared `&'static` noop observer, convenient as a default for builder
/// APIs that hold `&dyn Observer`.
pub static NOOP: NoopObserver = NoopObserver;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn funnel_reconciliation() {
        let ok = FunnelRecord::new("noise", 7, 5).dropped("noisy", 1).dropped("zero", 1);
        assert!(ok.reconciles());
        assert_eq!(ok.total_dropped(), 2);
        let bad = FunnelRecord::new("noise", 7, 5).dropped("noisy", 1);
        assert!(!bad.reconciles());
        let exact = FunnelRecord::new("select", 5, 5).dropped("dependent", 0);
        assert!(exact.reconciles());
    }

    #[test]
    fn zero_event_stages_are_well_defined() {
        let empty = FunnelRecord::new("gpu", 0, 0);
        assert!(empty.reconciles());
        assert!(!empty.over_reported());
        assert_eq!(empty.drop_rate(), 0.0);
        let with_reasons = FunnelRecord::new("gpu", 0, 0).dropped("nan", 0).dropped("zero", 0);
        assert!(with_reasons.reconciles());
        assert_eq!(with_reasons.drop_rate(), 0.0);
        // Outcomes claimed out of thin air: not reconciled, over-reported.
        let phantom = FunnelRecord::new("gpu", 0, 1);
        assert!(!phantom.reconciles());
        assert!(phantom.over_reported());
    }

    #[test]
    fn over_reporting_is_detected_without_overflow() {
        let over = FunnelRecord::new("noise", 5, 4).dropped("noisy", 3);
        assert!(!over.reconciles());
        assert!(over.over_reported());
        assert_eq!(over.drop_rate(), 0.6);
        // kept + dropped overflows usize: still false/true, never a panic.
        let huge = FunnelRecord::new("noise", 10, usize::MAX).dropped("noisy", usize::MAX);
        assert!(!huge.reconciles());
        assert!(huge.over_reported());
        assert_eq!(huge.drop_rate(), 1.0, "capped");
        // Under-reporting is not over-reporting.
        let under = FunnelRecord::new("noise", 7, 5).dropped("noisy", 1);
        assert!(!under.reconciles());
        assert!(!under.over_reported());
    }

    #[test]
    fn noop_observer_is_inert() {
        let obs: &dyn Observer = &NOOP;
        let _span = Span::enter(obs, "anything");
        obs.counter("x", 3);
        obs.funnel(FunnelRecord::new("s", 1, 1));
        assert_eq!(obs.span_start("y"), SpanId(0));
    }
}
