//! [`SharedObserver`]: a thread-safe wrapper that lets one
//! [`TraceCollector`] receive events from rayon-parallel sections.
//!
//! [`TraceCollector`] is deliberately `!Sync` — it records through a
//! `RefCell` so the single-threaded hot path pays no synchronization.
//! Parallel sections therefore cannot share `&TraceCollector` directly.
//! [`SharedObserver`] closes that gap by serializing every [`Observer`]
//! call through a `Mutex`.
//!
//! # When to use which
//!
//! * **`SharedObserver`** when you need the *full* event stream — spans,
//!   counters, and funnel records — from inside a parallel region, and can
//!   afford a lock per event. Span nesting under contention reflects
//!   arrival order at the lock, so prefer recording spans around the
//!   parallel region and only counters/funnels inside it.
//! * **`catalyze_linalg`'s relaxed-atomic `stats_snapshot()`** when you
//!   only need monotonic counters from a hot parallel loop. Relaxed
//!   atomics cost a few nanoseconds and never serialize the workers, but
//!   they cannot carry spans or structured funnel records.

use crate::{FunnelRecord, Observer, SpanId, TraceCollector};
use std::sync::Mutex;

/// A `Sync` adapter around [`TraceCollector`] for parallel sections: every
/// [`Observer`] method takes the internal mutex, forwards to the wrapped
/// collector, and releases it.
///
/// A panic while the lock is held (e.g. a worker thread dying mid-record)
/// poisons the mutex; `SharedObserver` recovers the inner collector anyway
/// — a partially recorded trace is still worth rendering.
#[derive(Debug, Default)]
pub struct SharedObserver {
    inner: Mutex<TraceCollector>,
}

impl SharedObserver {
    /// Wraps a collector for shared use.
    pub fn new(collector: TraceCollector) -> Self {
        Self { inner: Mutex::new(collector) }
    }

    /// Runs `f` with the wrapped collector while holding the lock — for
    /// mid-flight reads like rendering a progress snapshot.
    pub fn with<R>(&self, f: impl FnOnce(&TraceCollector) -> R) -> R {
        f(&self.lock())
    }

    /// Unwraps the collector once the parallel section is done.
    pub fn into_inner(self) -> TraceCollector {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceCollector> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Observer for SharedObserver {
    fn span_start(&self, name: &str) -> SpanId {
        self.lock().span_start(name)
    }

    fn span_end(&self, id: SpanId) {
        self.lock().span_end(id)
    }

    fn counter(&self, name: &str, delta: u64) {
        self.lock().counter(name, delta)
    }

    fn funnel(&self, record: FunnelRecord) {
        self.lock().funnel(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn is_sync_and_usable_as_dyn_observer() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<SharedObserver>();
        let shared = SharedObserver::new(TraceCollector::manual());
        let obs: &dyn Observer = &shared;
        let id = obs.span_start("parallel");
        obs.counter("work_items", 2);
        obs.span_end(id);
        let trace = shared.into_inner();
        assert_eq!(trace.counters(), vec![("work_items".to_string(), 2)]);
    }

    #[test]
    fn concurrent_counters_all_land() {
        let shared = Arc::new(SharedObserver::new(TraceCollector::new()));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        shared.counter("hits", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let shared = Arc::try_unwrap(shared).expect("all workers joined");
        let trace = shared.into_inner();
        assert_eq!(trace.counters(), vec![("hits".to_string(), 1000)]);
    }

    #[test]
    fn with_reads_mid_flight() {
        let shared = SharedObserver::new(TraceCollector::manual());
        shared.counter("seen", 5);
        let total = shared.with(|t| t.counters().iter().map(|(_, v)| *v).sum::<u64>());
        assert_eq!(total, 5);
    }

    #[test]
    fn poisoned_lock_still_yields_the_trace() {
        let shared = Arc::new(SharedObserver::new(TraceCollector::manual()));
        shared.counter("before_panic", 1);
        let clone = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            clone.with(|_| panic!("worker dies holding the lock"));
        })
        .join();
        // The mutex is now poisoned; recording and unwrapping still work.
        shared.counter("after_panic", 1);
        let trace = Arc::try_unwrap(shared).expect("worker joined").into_inner();
        assert_eq!(trace.counters().len(), 2);
    }
}
