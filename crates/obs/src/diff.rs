//! `trace diff`: span-by-span and counter-by-counter comparison of two
//! observability artifacts, with a configurable regression gate.
//!
//! A [`Snapshot`] is the common denominator the loader extracts from any
//! of the crate's artifacts — a single trace (trace schema v1, the
//! `--trace` output), an aggregated `metrics.v1` document (`--metrics`,
//! `catalyze metrics`), or the bench envelope that wraps one
//! (`BENCH_obs.json`). [`diff`] then compares baseline and candidate and
//! produces a [`DiffReport`] with a human table, a versioned JSON delta
//! document, and a pass/fail verdict.
//!
//! # Gate semantics
//!
//! * **Spans** regress when the candidate's duration statistic (p50 when
//!   the artifact carries quantiles, mean otherwise) exceeds the
//!   baseline's by more than [`DiffConfig::max_span_regression`]
//!   (relative, default **0.25** = +25 %). Spans where both sides sit
//!   below [`DiffConfig::min_span_ns`] are too fast to gate meaningfully
//!   and are reported as `skipped`.
//! * **Counters** fail when their relative change exceeds
//!   [`DiffConfig::max_counter_delta`] in either direction (default
//!   `+inf`, i.e. report-only; CI sets `0` because the simulated runs are
//!   deterministic at a fixed scale). Counters whose name ends in
//!   `nanos`/`_ns` carry wall-clock time, which is *not* deterministic, so
//!   they are gated like spans (threshold + floor) instead of exactly.
//! * Spans or counters present on only one side are reported (`added` /
//!   `removed`) but never gate — scale or instrumentation changes should
//!   be visible, not fatal.

use crate::collector::json_string;
use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Thresholds for the regression gate, overridable through the CLI's
/// `--set diff.<key>=<value>` plumbing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// Maximum tolerated relative span-time growth before the diff fails
    /// (0.25 = +25 %).
    pub max_span_regression: f64,
    /// Noise floor in nanoseconds: spans (and timing counters) where both
    /// sides are below this are skipped, not gated.
    pub min_span_ns: u64,
    /// Maximum tolerated relative change of a (non-timing) counter in
    /// either direction; `f64::INFINITY` means report-only.
    pub max_counter_delta: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self { max_span_regression: 0.25, min_span_ns: 0, max_counter_delta: f64::INFINITY }
    }
}

impl DiffConfig {
    /// Applies one `diff.<key>=<value>` override. Recognized keys:
    /// `diff.max_span_regression`, `diff.min_span_ns`,
    /// `diff.max_counter_delta`. Returns `false` for an unknown key.
    pub fn set(&mut self, key: &str, value: f64) -> bool {
        match key {
            "diff.max_span_regression" => self.max_span_regression = value,
            "diff.min_span_ns" => self.min_span_ns = value.max(0.0) as u64,
            "diff.max_counter_delta" => self.max_counter_delta = value,
            _ => return false,
        }
        true
    }

    /// The override keys [`DiffConfig::set`] accepts, for usage texts.
    pub fn keys() -> [&'static str; 3] {
        ["diff.max_span_regression", "diff.min_span_ns", "diff.max_counter_delta"]
    }
}

/// One span's duration statistics inside a [`Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanStat {
    /// Observations folded into this span.
    pub count: u64,
    /// Total nanoseconds across observations.
    pub sum_ns: u64,
    /// Median estimate, when the artifact carries quantiles.
    pub p50_ns: Option<u64>,
}

impl SpanStat {
    /// The statistic the gate compares: p50 when available, mean
    /// otherwise.
    pub fn stat_ns(&self) -> f64 {
        match self.p50_ns {
            Some(p) => p as f64,
            None if self.count > 0 => self.sum_ns as f64 / self.count as f64,
            None => 0.0,
        }
    }
}

/// The comparable content of one observability artifact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Per-span-name duration statistics.
    pub spans: BTreeMap<String, SpanStat>,
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
}

impl Snapshot {
    /// Loads a snapshot from any supported artifact: trace schema v1,
    /// `metrics.v1`, or an envelope object wrapping either under a
    /// `"metrics"` or `"trace"` key.
    ///
    /// # Errors
    ///
    /// A human-readable message when the text is not JSON or is JSON in
    /// none of the supported shapes.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        Self::from_value(&value)
    }

    fn from_value(value: &Value) -> Result<Self, String> {
        if let Some(inner) = value.get("metrics").or_else(|| value.get("trace")) {
            return Self::from_value(inner);
        }
        match value.get("schema").and_then(Value::as_str) {
            Some("metrics.v1") => Self::from_metrics(value),
            Some(other) => Err(format!("unsupported schema `{other}`")),
            None if value.get("spans").is_some() => Self::from_trace(value),
            None => Err("neither a metrics.v1 document nor a v1 trace".to_string()),
        }
    }

    fn from_metrics(value: &Value) -> Result<Self, String> {
        let mut snap = Snapshot::default();
        for span in value.get("spans").and_then(Value::as_arr).unwrap_or(&[]) {
            let name = span
                .get("name")
                .and_then(Value::as_str)
                .ok_or("metrics span without a name")?
                .to_string();
            snap.spans.insert(
                name,
                SpanStat {
                    count: span.get("count").and_then(Value::as_u64).unwrap_or(0),
                    sum_ns: span.get("sum_ns").and_then(Value::as_u64).unwrap_or(0),
                    p50_ns: span.get("p50_ns").and_then(Value::as_u64),
                },
            );
        }
        for counter in value.get("counters").and_then(Value::as_arr).unwrap_or(&[]) {
            let name = counter
                .get("name")
                .and_then(Value::as_str)
                .ok_or("metrics counter without a name")?
                .to_string();
            let total = counter.get("total").and_then(Value::as_u64).unwrap_or(0);
            snap.counters.insert(name, total);
        }
        Ok(snap)
    }

    fn from_trace(value: &Value) -> Result<Self, String> {
        if value.get("version").and_then(Value::as_u64) != Some(1) {
            return Err("trace document is not schema version 1".to_string());
        }
        let mut snap = Snapshot::default();
        fn walk(spans: &[Value], snap: &mut Snapshot) -> Result<(), String> {
            for span in spans {
                let name =
                    span.get("name").and_then(Value::as_str).ok_or("trace span without a name")?;
                if let Some(d) = span.get("duration_ns").and_then(Value::as_u64) {
                    let stat = snap.spans.entry(name.to_string()).or_insert(SpanStat {
                        count: 0,
                        sum_ns: 0,
                        p50_ns: None,
                    });
                    stat.count += 1;
                    stat.sum_ns = stat.sum_ns.saturating_add(d);
                }
                if let Some(children) = span.get("children").and_then(Value::as_arr) {
                    walk(children, snap)?;
                }
            }
            Ok(())
        }
        walk(value.get("spans").and_then(Value::as_arr).unwrap_or(&[]), &mut snap)?;
        for counter in value.get("counters").and_then(Value::as_arr).unwrap_or(&[]) {
            let name = counter
                .get("name")
                .and_then(Value::as_str)
                .ok_or("trace counter without a name")?
                .to_string();
            let total = counter.get("value").and_then(Value::as_u64).unwrap_or(0);
            snap.counters.insert(name, total);
        }
        Ok(snap)
    }
}

/// Verdict of one compared row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowStatus {
    /// Within the threshold.
    Ok,
    /// Beyond the threshold in the slow/changed direction — gates.
    Regressed,
    /// Faster than baseline by more than the threshold (informational).
    Improved,
    /// Present only in the candidate.
    Added,
    /// Present only in the baseline.
    Removed,
    /// Below the noise floor on both sides.
    Skipped,
}

impl RowStatus {
    fn label(self) -> &'static str {
        match self {
            RowStatus::Ok => "ok",
            RowStatus::Regressed => "regressed",
            RowStatus::Improved => "improved",
            RowStatus::Added => "added",
            RowStatus::Removed => "removed",
            RowStatus::Skipped => "skipped",
        }
    }
}

/// One compared span or counter.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead_api): row type in DiffReport's public fields
pub struct DiffRow {
    /// Span or counter name.
    pub name: String,
    /// Baseline statistic (ns for spans, total for counters); `None` when
    /// the row is `added`.
    pub base: Option<f64>,
    /// Candidate statistic; `None` when the row is `removed`.
    pub cand: Option<f64>,
    /// Relative change `(cand - base) / base`, when both sides exist and
    /// the baseline is nonzero.
    pub ratio: Option<f64>,
    /// The verdict.
    pub status: RowStatus,
}

/// The full comparison: every span row, every counter row, and the
/// configuration that judged them.
#[derive(Debug, Clone)]
// lint: allow(dead_api): result type of the trace diff API; fields are the gate's read surface
pub struct DiffReport {
    config: DiffConfig,
    spans: Vec<DiffRow>,
    counters: Vec<DiffRow>,
}

impl DiffReport {
    /// Rows that regressed (spans and counters).
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.spans
            .iter()
            .chain(&self.counters)
            .filter(|r| r.status == RowStatus::Regressed)
            .collect()
    }

    /// True when any row regressed beyond its threshold — the CLI exit
    /// verdict.
    pub fn regressed(&self) -> bool {
        !self.regressions().is_empty()
    }

    /// Span rows, sorted by name.
    pub fn span_rows(&self) -> &[DiffRow] {
        &self.spans
    }

    /// Counter rows, sorted by name.
    pub fn counter_rows(&self) -> &[DiffRow] {
        &self.counters
    }

    /// Renders the human delta table.
    pub fn render_human(&self) -> String {
        let mut out = String::from("trace diff\n");
        let _ = writeln!(
            out,
            "  gate: span regression > {:.0}% (floor {} ns), counter delta {}",
            self.config.max_span_regression * 100.0,
            self.config.min_span_ns,
            if self.config.max_counter_delta.is_finite() {
                format!("> {:.0}%", self.config.max_counter_delta * 100.0)
            } else {
                "report-only".to_string()
            }
        );
        out.push_str("spans\n");
        for row in &self.spans {
            let _ = writeln!(out, "{}", Self::row_line(row, "ns"));
        }
        out.push_str("counters\n");
        for row in &self.counters {
            let _ = writeln!(out, "{}", Self::row_line(row, ""));
        }
        let regressions = self.regressions();
        if regressions.is_empty() {
            out.push_str("verdict: PASS (no regressions)\n");
        } else {
            let _ = writeln!(out, "verdict: FAIL ({} regression(s))", regressions.len());
        }
        out
    }

    fn row_line(row: &DiffRow, unit: &str) -> String {
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{:>14}", format!("{v:.0}{unit}")),
            None => format!("{:>14}", "-"),
        };
        let ratio = match row.ratio {
            Some(r) => format!("{:>+8.1}%", r * 100.0),
            None => format!("{:>9}", "-"),
        };
        format!(
            "  {:<40} {} -> {}  {}  {}",
            row.name,
            fmt(row.base),
            fmt(row.cand),
            ratio,
            row.status.label()
        )
    }

    /// Renders the versioned JSON delta document (`trace-diff.v1`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"schema\": \"trace-diff.v1\",\n");
        let _ = write!(
            out,
            "  \"max_span_regression\": {},\n  \"min_span_ns\": {},\n",
            fmt_f64(self.config.max_span_regression),
            self.config.min_span_ns
        );
        let _ =
            writeln!(out, "  \"max_counter_delta\": {},", fmt_f64(self.config.max_counter_delta));
        let _ = write!(out, "  \"regressions\": {},\n  \"spans\": [", self.regressions().len());
        Self::render_rows(&mut out, &self.spans);
        out.push_str("],\n  \"counters\": [");
        Self::render_rows(&mut out, &self.counters);
        out.push_str("]\n}\n");
        out
    }

    fn render_rows(out: &mut String, rows: &[DiffRow]) {
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let opt = |v: Option<f64>| match v {
                Some(v) => fmt_f64(v),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"base\": {}, \"cand\": {}, \"ratio\": {}, \
                 \"status\": \"{}\"}}",
                json_string(&row.name),
                opt(row.base),
                opt(row.cand),
                opt(row.ratio),
                row.status.label()
            );
        }
        if !rows.is_empty() {
            out.push_str("\n  ");
        }
    }
}

/// Formats an `f64` as JSON: finite values in shortest-round-trip form,
/// infinities as the strings jq can still compare against.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // lint: allow(float_cmp): trunc() round-trips exactly for integral values
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// True when a counter carries wall-clock time (nanosecond totals), which
/// is never deterministic and therefore gated like a span.
fn is_timing_counter(name: &str) -> bool {
    name.ends_with("nanos") || name.ends_with("_ns")
}

/// Judges one timed pair against the span threshold and floor.
fn judge_timed(base: f64, cand: f64, cfg: &DiffConfig) -> (Option<f64>, RowStatus) {
    if base < cfg.min_span_ns as f64 && cand < cfg.min_span_ns as f64 {
        return (ratio_of(base, cand), RowStatus::Skipped);
    }
    let ratio = ratio_of(base, cand);
    match ratio {
        Some(r) if r > cfg.max_span_regression => (ratio, RowStatus::Regressed),
        Some(r) if r < -cfg.max_span_regression => (ratio, RowStatus::Improved),
        Some(_) => (ratio, RowStatus::Ok),
        // Baseline of zero: any nonzero candidate is growth we cannot
        // express as a ratio; treat appearing time as a regression only
        // when it clears the floor.
        // lint: allow(float_cmp): zero baseline is an exact sentinel, not a measurement
        None if cand >= cfg.min_span_ns.max(1) as f64 && base == 0.0 => {
            (None, RowStatus::Regressed)
        }
        None => (None, RowStatus::Ok),
    }
}

fn ratio_of(base: f64, cand: f64) -> Option<f64> {
    (base > 0.0).then(|| (cand - base) / base)
}

/// Compares two snapshots under `config`.
pub fn diff(baseline: &Snapshot, candidate: &Snapshot, config: DiffConfig) -> DiffReport {
    let mut spans = Vec::new();
    let names: std::collections::BTreeSet<&String> =
        baseline.spans.keys().chain(candidate.spans.keys()).collect();
    for name in names {
        let row = match (baseline.spans.get(name), candidate.spans.get(name)) {
            (Some(b), Some(c)) => {
                let (base, cand) = (b.stat_ns(), c.stat_ns());
                let (ratio, status) = judge_timed(base, cand, &config);
                DiffRow { name: name.clone(), base: Some(base), cand: Some(cand), ratio, status }
            }
            (Some(b), None) => DiffRow {
                name: name.clone(),
                base: Some(b.stat_ns()),
                cand: None,
                ratio: None,
                status: RowStatus::Removed,
            },
            (None, Some(c)) => DiffRow {
                name: name.clone(),
                base: None,
                cand: Some(c.stat_ns()),
                ratio: None,
                status: RowStatus::Added,
            },
            (None, None) => continue,
        };
        spans.push(row);
    }

    let mut counters = Vec::new();
    let names: std::collections::BTreeSet<&String> =
        baseline.counters.keys().chain(candidate.counters.keys()).collect();
    for name in names {
        let row = match (baseline.counters.get(name), candidate.counters.get(name)) {
            (Some(&b), Some(&c)) => {
                let (base, cand) = (b as f64, c as f64);
                if is_timing_counter(name) {
                    let (ratio, status) = judge_timed(base, cand, &config);
                    DiffRow {
                        name: name.clone(),
                        base: Some(base),
                        cand: Some(cand),
                        ratio,
                        status,
                    }
                } else {
                    let ratio = ratio_of(base, cand);
                    let status = match ratio {
                        Some(r) if r.abs() > config.max_counter_delta => RowStatus::Regressed,
                        Some(_) => RowStatus::Ok,
                        None if cand > 0.0 && config.max_counter_delta.is_finite() => {
                            RowStatus::Regressed
                        }
                        None => RowStatus::Ok,
                    };
                    DiffRow {
                        name: name.clone(),
                        base: Some(base),
                        cand: Some(cand),
                        ratio,
                        status,
                    }
                }
            }
            (Some(&b), None) => DiffRow {
                name: name.clone(),
                base: Some(b as f64),
                cand: None,
                ratio: None,
                status: RowStatus::Removed,
            },
            (None, Some(&c)) => DiffRow {
                name: name.clone(),
                base: None,
                cand: Some(c as f64),
                ratio: None,
                status: RowStatus::Added,
            },
            (None, None) => continue,
        };
        counters.push(row);
    }

    DiffReport { config, spans, counters }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(spans: &[(&str, u64)], counters: &[(&str, u64)]) -> Snapshot {
        let mut s = Snapshot::default();
        for &(name, ns) in spans {
            s.spans.insert(name.to_string(), SpanStat { count: 1, sum_ns: ns, p50_ns: None });
        }
        for &(name, total) in counters {
            s.counters.insert(name.to_string(), total);
        }
        s
    }

    #[test]
    fn within_threshold_passes() {
        let base = snap(&[("analyze", 1000)], &[("solves", 10)]);
        let cand = snap(&[("analyze", 1200)], &[("solves", 10)]);
        let report = diff(&base, &cand, DiffConfig::default());
        assert!(!report.regressed(), "{}", report.render_human());
        assert_eq!(report.span_rows()[0].status, RowStatus::Ok);
    }

    #[test]
    fn span_regression_beyond_threshold_fails() {
        let base = snap(&[("analyze", 1000)], &[]);
        let cand = snap(&[("analyze", 1300)], &[]);
        let report = diff(&base, &cand, DiffConfig::default());
        assert!(report.regressed());
        assert_eq!(report.regressions().len(), 1);
        assert!(report.render_human().contains("FAIL"), "{}", report.render_human());
        assert!(report.render_json().contains("\"regressions\": 1"));
    }

    #[test]
    fn improvement_and_noise_floor() {
        let base = snap(&[("fast", 100), ("big", 10_000)], &[]);
        let cand = snap(&[("fast", 900), ("big", 5_000)], &[]);
        let mut cfg = DiffConfig::default();
        assert!(cfg.set("diff.min_span_ns", 1000.0));
        let report = diff(&base, &cand, cfg);
        assert!(!report.regressed(), "sub-floor span skipped: {}", report.render_human());
        assert_eq!(report.span_rows()[1].status, RowStatus::Skipped, "fast");
        assert_eq!(report.span_rows()[0].status, RowStatus::Improved, "big");
    }

    #[test]
    fn counter_gate_and_timing_exemption() {
        let base = snap(&[], &[("linalg.lstsq_solves", 10), ("linalg.lstsq_nanos", 1_000_000)]);
        let cand = snap(&[], &[("linalg.lstsq_solves", 11), ("linalg.lstsq_nanos", 9_000_000)]);
        // The nanos counter is wall-clock time, so it is gated like a
        // span: the default 25% threshold catches its 9x blowup even
        // while plain counters stay report-only.
        let default_report = diff(&base, &cand, DiffConfig::default());
        let failed: Vec<&str> =
            default_report.regressions().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(failed, vec!["linalg.lstsq_nanos"], "{}", default_report.render_human());
        // Strict counters + loose span gate: now only the solve count
        // fails; the timing counter rides the span threshold instead of
        // the exact-delta rule.
        let mut cfg = DiffConfig::default();
        assert!(cfg.set("diff.max_counter_delta", 0.0));
        assert!(cfg.set("diff.max_span_regression", 100.0));
        let report = diff(&base, &cand, cfg);
        let failed: Vec<&str> = report.regressions().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(failed, vec!["linalg.lstsq_solves"], "{}", report.render_human());
    }

    #[test]
    fn added_and_removed_rows_report_but_do_not_gate() {
        let base = snap(&[("old", 1000)], &[("gone", 5)]);
        let cand = snap(&[("new", 1000)], &[("fresh", 5)]);
        let mut cfg = DiffConfig::default();
        assert!(cfg.set("diff.max_counter_delta", 0.0));
        let report = diff(&base, &cand, cfg);
        assert!(!report.regressed(), "{}", report.render_human());
        let statuses: Vec<RowStatus> = report.span_rows().iter().map(|r| r.status).collect();
        assert_eq!(statuses, vec![RowStatus::Added, RowStatus::Removed]);
    }

    #[test]
    fn unknown_config_keys_are_rejected() {
        let mut cfg = DiffConfig::default();
        assert!(!cfg.set("diff.bogus", 1.0));
        assert!(!cfg.set("tau", 1.0));
        assert_eq!(DiffConfig::keys().len(), 3);
    }

    #[test]
    fn loads_trace_v1_and_metrics_v1_and_envelopes() {
        use crate::{MetricsRegistry, Observer, TraceCollector};
        let t = TraceCollector::manual();
        let root = t.span_start("analyze/x");
        let child = t.span_start("noise");
        t.advance_ns(40);
        t.span_end(child);
        t.advance_ns(2);
        t.span_end(root);
        t.counter("solves", 6);

        let from_trace = Snapshot::from_json(&t.render_json()).unwrap();
        assert_eq!(from_trace.spans["noise"].sum_ns, 40);
        assert_eq!(from_trace.spans["analyze/x"].sum_ns, 42);
        assert_eq!(from_trace.counters["solves"], 6);

        let mut reg = MetricsRegistry::new();
        reg.fold(&t);
        let metrics_doc = crate::render_metrics_json(&reg);
        let from_metrics = Snapshot::from_json(&metrics_doc).unwrap();
        assert_eq!(from_metrics.spans["noise"].p50_ns, Some(40));
        assert_eq!(from_metrics.counters["solves"], 6);

        let envelope = format!("{{\"version\":1,\"scale\":\"fast\",\"metrics\":{metrics_doc}}}");
        let from_envelope = Snapshot::from_json(&envelope).unwrap();
        assert_eq!(from_envelope, from_metrics);

        assert!(Snapshot::from_json("not json").is_err());
        assert!(Snapshot::from_json("{\"version\": 2, \"spans\": []}").is_err());
        assert!(Snapshot::from_json("{\"schema\": \"metrics.v2\"}").is_err());
    }
}
