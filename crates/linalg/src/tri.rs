//! Triangular solves.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Solves `R x = b` for upper-triangular `R` (back substitution).
///
/// Only the upper triangle of `r` is read. `n = r.cols()` unknowns are
/// produced; `b` must have at least `n` entries (extra entries, e.g. the
/// residual part of a least-squares right-hand side, are ignored).
pub fn solve_upper(r: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = r.cols();
    if r.rows() < n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, n),
            got: r.shape(),
            context: "solve_upper",
        });
    }
    if b.len() < n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, 1),
            got: (b.len(), 1),
            context: "solve_upper",
        });
    }
    let mut x = b[..n].to_vec();
    for i in (0..n).rev() {
        let diag = r[(i, i)];
        // lint: allow(float_cmp): exact-zero diagonal is exact singularity
        if diag == 0.0 {
            return Err(LinalgError::Singular { pivot: i, context: "solve_upper" });
        }
        let mut s = x[i];
        for j in i + 1..n {
            s -= r[(i, j)] * x[j];
        }
        x[i] = s / diag;
    }
    Ok(x)
}

/// Solves `L x = b` for lower-triangular `L` (forward substitution).
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = l.cols();
    if l.rows() < n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, n),
            got: l.shape(),
            context: "solve_lower",
        });
    }
    if b.len() < n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, 1),
            got: (b.len(), 1),
            context: "solve_lower",
        });
    }
    let mut x = b[..n].to_vec();
    for i in 0..n {
        let diag = l[(i, i)];
        // lint: allow(float_cmp): exact-zero diagonal is exact singularity
        if diag == 0.0 {
            return Err(LinalgError::Singular { pivot: i, context: "solve_lower" });
        }
        let mut s = x[i];
        for j in 0..i {
            s -= l[(i, j)] * x[j];
        }
        x[i] = s / diag;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_solve_hand_example() {
        let r = Matrix::from_rows(2, 2, &[2.0, 1.0, 0.0, 3.0]).unwrap();
        let x = solve_upper(&r, &[5.0, 6.0]).unwrap();
        assert!((x[1] - 2.0).abs() < 1e-15);
        assert!((x[0] - 1.5).abs() < 1e-15);
    }

    #[test]
    fn lower_solve_hand_example() {
        let l = Matrix::from_rows(2, 2, &[2.0, 0.0, 1.0, 3.0]).unwrap();
        let x = solve_lower(&l, &[4.0, 5.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-15);
        assert!((x[1] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn singular_diagonal_rejected() {
        let r = Matrix::from_rows(2, 2, &[2.0, 1.0, 0.0, 0.0]).unwrap();
        assert_eq!(
            solve_upper(&r, &[1.0, 1.0]),
            Err(LinalgError::Singular { pivot: 1, context: "solve_upper" })
        );
        let l = Matrix::from_rows(2, 2, &[0.0, 0.0, 1.0, 3.0]).unwrap();
        assert!(solve_lower(&l, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn rectangular_tall_r_uses_top_block() {
        // 3x2 "R" from a thin QR: bottom row ignored.
        let r = Matrix::from_rows(3, 2, &[2.0, 1.0, 0.0, 3.0, 0.0, 0.0]).unwrap();
        let x = solve_upper(&r, &[5.0, 6.0, 99.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-15);
        assert!((x[1] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn shape_errors() {
        let r = Matrix::zeros(1, 2);
        assert!(solve_upper(&r, &[1.0, 1.0]).is_err());
        let r = Matrix::identity(2);
        assert!(solve_upper(&r, &[1.0]).is_err());
        assert!(solve_lower(&r, &[1.0]).is_err());
        let l = Matrix::zeros(1, 2);
        assert!(solve_lower(&l, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn identity_solves_are_copies() {
        let i = Matrix::identity(3);
        let b = [1.0, 2.0, 3.0];
        assert_eq!(solve_upper(&i, &b).unwrap(), b.to_vec());
        assert_eq!(solve_lower(&i, &b).unwrap(), b.to_vec());
    }
}
