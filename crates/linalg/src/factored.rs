//! Factor-once/solve-many least squares.
//!
//! Both hot stages of the analysis pipeline solve many least-squares
//! problems against *one* matrix: representation solves `E·x_e = m_e` once
//! per surviving event, metric definition solves `X̂·y = s` once per
//! signature. The one-shot [`crate::lstsq`] entry point re-runs a full
//! Householder QR *and* a Jacobi-SVD spectral norm of that same matrix on
//! every call. [`FactoredLstsq`] is the workspace that amortizes both: it
//! factors `A` once at construction, lazily computes `‖A‖₂` once, and then
//! serves any number of right-hand sides from the cached factorization —
//! with results bit-identical to the one-shot path, because every solve
//! goes through exactly the same arithmetic, just without repeating the
//! factorization.
//!
//! The workspace is deliberately `!Sync` (interior-mutability cells track
//! the lazy norm and the reuse counters); [`FactoredLstsq::solve_many`]
//! still parallelizes *across* right-hand sides internally by handing the
//! rayon pool only `Sync` views of the factorization.

use std::cell::{Cell, OnceCell};
use std::time::Instant;

use crate::error::{LinalgError, Result};
use crate::lstsq::LstsqSolution;
use crate::matrix::Matrix;
use crate::qr::Qr;
use crate::stats;
use crate::svd;
use crate::tri;
use crate::vector;

/// Per-RHS work (`rows · cols` reflector flops) below which a batch stays
/// sequential, mirroring [`Matrix::matmul`]'s fork/join threshold.
const PARALLEL_WORK_THRESHOLD: u64 = 1 << 20;

/// A least-squares workspace over one matrix `A`: Householder QR computed
/// once, `‖A‖₂` computed lazily once, any number of right-hand sides solved
/// against both.
///
/// ```
/// use catalyze_linalg::{lstsq, FactoredLstsq, Matrix};
///
/// let a = Matrix::from_rows(3, 2, &[1.0, 0.0, 1.0, 1.0, 1.0, 2.0]).unwrap();
/// let factored = FactoredLstsq::factor(&a).unwrap();
/// let b1 = [1.0, 3.0, 5.0];
/// let b2 = [2.0, 2.0, 2.0];
/// let batch = factored.solve_many(&[&b1, &b2]).unwrap();
/// // Bit-identical to the one-shot path, with one QR instead of two.
/// assert_eq!(batch[0].x, lstsq(&a, &b1).unwrap().x);
/// assert_eq!(batch[1].x, lstsq(&a, &b2).unwrap().x);
/// ```
#[derive(Debug)]
pub struct FactoredLstsq<'a> {
    a: &'a Matrix,
    qr: Qr,
    /// The `n x n` triangular factor, materialized once (the naive path
    /// rebuilds it from the packed factorization on every solve).
    r: Matrix,
    /// Lazily cached `‖A‖₂`; only successful computations are cached.
    norm: OnceCell<f64>,
    /// Right-hand sides solved so far, for the factorization-reuse counter.
    solves: Cell<u64>,
}

impl<'a> FactoredLstsq<'a> {
    /// Factors `a` once. Requirements are [`Qr::factor`]'s: square or tall,
    /// non-empty, finite.
    ///
    /// # Errors
    ///
    /// Exactly the [`Qr::factor`] errors: [`LinalgError::Empty`],
    /// [`LinalgError::ShapeMismatch`] for a wide matrix,
    /// [`LinalgError::NonFinite`].
    pub fn factor(a: &'a Matrix) -> Result<Self> {
        let qr = Qr::factor(a)?;
        let r = qr.r();
        Ok(Self { a, qr, r, norm: OnceCell::new(), solves: Cell::new(0) })
    }

    /// The factored matrix.
    pub fn matrix(&self) -> &Matrix {
        self.a
    }

    /// Number of rows of `A` (the required right-hand-side length).
    pub fn rows(&self) -> usize {
        self.a.rows()
    }

    /// Number of columns of `A` (the solution length).
    pub fn cols(&self) -> usize {
        self.a.cols()
    }

    /// `‖A‖₂`, computed on first use and served from the cache afterwards.
    /// Cache hits increment the `spectral_norms_cached` stats counter.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::spectral_norm`]'s Jacobi-SVD convergence failure
    /// (failures are not cached; a later call retries).
    pub fn spectral_norm(&self) -> Result<f64> {
        if let Some(&n) = self.norm.get() {
            stats::record_spectral_norms_cached(1);
            return Ok(n);
        }
        let n = svd::spectral_norm(self.a)?;
        let _ = self.norm.set(n);
        Ok(n)
    }

    /// Validates one right-hand side exactly as the one-shot [`crate::lstsq`]
    /// does (same error variants and contexts).
    fn validate_rhs(&self, b: &[f64]) -> Result<()> {
        if b.len() != self.rows() {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows(), 1),
                got: (b.len(), 1),
                context: "lstsq",
            });
        }
        if b.iter().any(|v| !v.is_finite()) {
            return Err(LinalgError::NonFinite { context: "lstsq (rhs)" });
        }
        Ok(())
    }

    /// Records `new_solves` more right-hand sides against this
    /// factorization; every solve beyond the instance's first avoided one
    /// QR factorization relative to the one-shot baseline.
    fn note_reuse(&self, new_solves: u64) {
        let prior = self.solves.get();
        let avoided = if prior == 0 { new_solves.saturating_sub(1) } else { new_solves };
        if avoided > 0 {
            stats::record_qr_factorizations_avoided(avoided);
        }
        self.solves.set(prior + new_solves);
    }

    /// Solves `min ‖A x − b‖₂` with full diagnostics, reusing the cached
    /// factorization and spectral norm.
    ///
    /// # Errors
    ///
    /// The one-shot [`crate::lstsq`] errors: [`LinalgError::ShapeMismatch`]
    /// / [`LinalgError::NonFinite`] for a mis-shaped or non-finite `b`,
    /// [`LinalgError::Singular`] when `A` is rank deficient.
    // lint: contract(deterministic)
    pub fn solve(&self, b: &[f64]) -> Result<LstsqSolution> {
        let _timer = stats::time(stats::Kernel::Lstsq);
        self.validate_rhs(b)?;
        self.note_reuse(1);
        let y = self.qr.apply_qt(b)?;
        let norm = self.spectral_norm()?;
        finish_column(&self.r, self.a, norm, &y, b)
    }

    /// Backward error (Eq. 5) of a candidate solution `x` against `b`,
    /// using the cached `‖A‖₂` — the workspace counterpart of
    /// [`crate::backward_error`], bit-identical to it.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `x` or `b` disagree with `A`'s
    /// shape; a Jacobi-SVD convergence failure on the first norm use.
    pub fn backward_error(&self, x: &[f64], b: &[f64]) -> Result<f64> {
        let ax = self.a.matvec(x)?;
        if ax.len() != b.len() {
            return Err(LinalgError::ShapeMismatch {
                expected: (ax.len(), 1),
                got: (b.len(), 1),
                context: "backward_error",
            });
        }
        let residual: Vec<f64> = ax.iter().zip(b).map(|(&p, &q)| p - q).collect();
        let num = vector::norm2(&residual);
        let denom = self.spectral_norm()? * vector::norm2(x) + vector::norm2(b);
        // lint: allow(float_cmp): exact-zero guard before forming the error ratio
        if denom == 0.0 {
            // lint: allow(float_cmp): 0/0 is defined as 0 here, x/0 as infinity
            return Ok(if num == 0.0 { 0.0 } else { f64::INFINITY });
        }
        Ok(num / denom)
    }

    /// Solves one least-squares problem per right-hand side as a blocked
    /// panel: `Q^T` is applied to all columns at once (see
    /// [`Qr::apply_qt_panel`]), then each column is back-substituted and
    /// diagnosed. Batches above the `1 << 20` work threshold run
    /// column-parallel across the rayon pool; solutions are bit-identical
    /// to calling [`FactoredLstsq::solve`] (and therefore [`crate::lstsq`])
    /// once per right-hand side either way.
    ///
    /// Every right-hand side is validated before any work starts, so a
    /// mis-shaped or non-finite entry anywhere in the batch fails the whole
    /// call with the same error the one-shot path would produce for it.
    ///
    /// # Errors
    ///
    /// The [`FactoredLstsq::solve`] errors, for the first offending
    /// right-hand side.
    // lint: contract(deterministic)
    pub fn solve_many(&self, rhs: &[&[f64]]) -> Result<Vec<LstsqSolution>> {
        if rhs.is_empty() {
            return Ok(Vec::new());
        }
        // lint: allow(raw_timing): batched-solve wall time lands in the lstsq_nanos stats counter
        let start = Instant::now();
        for b in rhs {
            self.validate_rhs(b)?;
        }
        let norm = self.spectral_norm()?;
        self.note_reuse(rhs.len() as u64);
        // Every column after the first reuses the norm computed (or found
        // cached) above.
        stats::record_spectral_norms_cached(rhs.len() as u64 - 1);

        let m = self.rows();
        let mut panel = Matrix::zeros(m, rhs.len());
        for (j, b) in rhs.iter().enumerate() {
            panel.col_mut(j).copy_from_slice(b);
        }
        self.qr.apply_qt_panel(&mut panel)?;

        let r = &self.r;
        let a = self.a;
        let finish =
            |j: usize| -> Result<LstsqSolution> { finish_column(r, a, norm, panel.col(j), rhs[j]) };
        let work = m as u64 * self.cols() as u64 * rhs.len() as u64;
        let results: Vec<Result<LstsqSolution>> = if work < PARALLEL_WORK_THRESHOLD {
            (0..rhs.len()).map(finish).collect()
        } else {
            use rayon::prelude::*;
            let columns: Vec<usize> = (0..rhs.len()).collect();
            columns.par_iter().map(|&j| finish(j)).collect()
        };
        let solutions = results.into_iter().collect::<Result<Vec<_>>>()?;
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        stats::record_batch(stats::Kernel::Lstsq, rhs.len() as u64, elapsed);
        Ok(solutions)
    }
}

/// Back-substitutes one transformed right-hand side and computes the
/// one-shot path's diagnostics — the same expressions in the same order, so
/// the result is bit-identical to [`crate::lstsq`].
fn finish_column(
    r: &Matrix,
    a: &Matrix,
    spectral_norm: f64,
    y: &[f64],
    b: &[f64],
) -> Result<LstsqSolution> {
    let x = tri::solve_upper(r, y)?;
    let ax = a.matvec(&x)?;
    let residual: Vec<f64> = ax.iter().zip(b).map(|(&p, &q)| p - q).collect();
    let residual_norm = vector::norm2(&residual);
    let bnorm = vector::norm2(b);
    // lint: allow(float_cmp): exact-zero guard before forming the residual ratio
    let relative_residual = if bnorm == 0.0 {
        // lint: allow(float_cmp): exact-zero guard before forming the residual ratio
        if residual_norm == 0.0 {
            0.0
        } else {
            1.0
        }
    } else {
        residual_norm / bnorm
    };
    // The one-shot path recomputes `A x − b` inside `backward_error`; the
    // recomputation is deterministic, so reusing `residual_norm` as the
    // numerator is exact.
    let denom = spectral_norm * vector::norm2(&x) + bnorm;
    // lint: allow(float_cmp): exact-zero guard before forming the error ratio
    let backward_error = if denom == 0.0 {
        // lint: allow(float_cmp): 0/0 is defined as 0 here, x/0 as infinity
        if residual_norm == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        residual_norm / denom
    };
    Ok(LstsqSolution { x, residual_norm, relative_residual, backward_error })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstsq::lstsq;

    fn tall() -> Matrix {
        Matrix::from_rows(4, 2, &[2.0, -1.0, 1.0, 3.0, 0.5, 1.0, -2.0, 4.0]).unwrap()
    }

    fn assert_bits_equal(got: &LstsqSolution, want: &LstsqSolution) {
        for (g, w) in got.x.iter().zip(&want.x) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
        assert_eq!(got.residual_norm.to_bits(), want.residual_norm.to_bits());
        assert_eq!(got.relative_residual.to_bits(), want.relative_residual.to_bits());
        assert_eq!(got.backward_error.to_bits(), want.backward_error.to_bits());
    }

    #[test]
    fn solve_is_bit_identical_to_one_shot() {
        let a = tall();
        let b = [1.0, -2.0, 0.25, 3.0];
        let f = FactoredLstsq::factor(&a).unwrap();
        assert_bits_equal(&f.solve(&b).unwrap(), &lstsq(&a, &b).unwrap());
        // And again: the cached norm must not drift the result.
        assert_bits_equal(&f.solve(&b).unwrap(), &lstsq(&a, &b).unwrap());
    }

    #[test]
    fn solve_many_matches_repeated_solves() {
        let a = tall();
        let b1 = [1.0, 2.0, 3.0, 4.0];
        let b2 = [0.0, 0.0, 0.0, 0.0];
        let b3 = [-5.0, 0.5, 2.0, 1.0];
        let f = FactoredLstsq::factor(&a).unwrap();
        let batch = f.solve_many(&[&b1, &b2, &b3]).unwrap();
        assert_eq!(batch.len(), 3);
        for (got, b) in batch.iter().zip([&b1[..], &b2, &b3]) {
            assert_bits_equal(got, &lstsq(&a, b).unwrap());
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let a = tall();
        let f = FactoredLstsq::factor(&a).unwrap();
        assert!(f.solve_many(&[]).unwrap().is_empty());
    }

    #[test]
    fn error_variants_match_one_shot() {
        let a = tall();
        let f = FactoredLstsq::factor(&a).unwrap();
        // Mis-shaped RHS.
        assert_eq!(f.solve(&[1.0]).unwrap_err(), lstsq(&a, &[1.0]).unwrap_err());
        // Non-finite RHS.
        let nan = [f64::NAN, 0.0, 0.0, 0.0];
        assert_eq!(f.solve(&nan).unwrap_err(), lstsq(&a, &nan).unwrap_err());
        // A bad entry anywhere fails the batch with the same error.
        let good = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(f.solve_many(&[&good, &nan]).unwrap_err(), lstsq(&a, &nan).unwrap_err());
        // Factor-time errors are the QR's.
        assert!(matches!(
            FactoredLstsq::factor(&Matrix::zeros(2, 3)).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn exactly_singular_matrix_errors_like_one_shot() {
        // A zero column survives factorization but makes back-substitution
        // hit an exactly-zero pivot in both paths.
        let a = Matrix::from_columns(&[vec![1.0, 2.0, 3.0], vec![0.0, 0.0, 0.0]]).unwrap();
        let b = [1.0, 1.0, 1.0];
        let f = FactoredLstsq::factor(&a).unwrap();
        let got = f.solve(&b).unwrap_err();
        assert_eq!(got, lstsq(&a, &b).unwrap_err());
        assert!(matches!(got, LinalgError::Singular { .. }));
    }

    #[test]
    fn reuse_counters_track_avoided_work() {
        let a = tall();
        let before = stats::snapshot();
        let f = FactoredLstsq::factor(&a).unwrap();
        let b1 = [1.0, 2.0, 3.0, 4.0];
        let b2 = [4.0, 3.0, 2.0, 1.0];
        f.solve(&b1).unwrap();
        f.solve(&b2).unwrap();
        f.solve_many(&[&b1, &b2]).unwrap();
        let delta = stats::snapshot().delta_since(&before);
        // One real factorization and one real norm; three of each avoided
        // (solves 2, 3, and 4 reused both).
        assert!(delta.qr_factorizations >= 1);
        assert!(delta.qr_factorizations_avoided >= 3);
        assert!(delta.spectral_norms >= 1);
        assert!(delta.spectral_norms_cached >= 3);
        assert!(delta.lstsq_solves >= 4);
    }

    #[test]
    fn spectral_norm_matches_free_function() {
        let a = tall();
        let f = FactoredLstsq::factor(&a).unwrap();
        let free = svd::spectral_norm(&a).unwrap();
        assert_eq!(f.spectral_norm().unwrap().to_bits(), free.to_bits());
        assert_eq!(f.spectral_norm().unwrap().to_bits(), free.to_bits());
    }

    #[test]
    fn backward_error_matches_free_function() {
        let a = tall();
        let f = FactoredLstsq::factor(&a).unwrap();
        let x = [0.5, -1.5];
        let b = [1.0, 0.0, 2.0, -1.0];
        let free = crate::lstsq::backward_error(&a, &x, &b).unwrap();
        assert_eq!(f.backward_error(&x, &b).unwrap().to_bits(), free.to_bits());
        assert!(f.backward_error(&x, &[1.0]).is_err());
    }
}
