//! Standard column-pivoted QR (Algorithm 1 of the paper).
//!
//! At every step the pivot is the trailing column with the **largest**
//! residual norm — the classical Businger–Golub rule. The paper argues this
//! rule is exactly wrong for event analysis (large-norm columns are
//! cycle-like, irrelevant events); it is implemented here both as the
//! baseline for the specialized scheme and for the pivot-rule ablation.

use crate::error::{LinalgError, Result};
use crate::householder::Reflector;
use crate::matrix::Matrix;
use crate::vector;

/// Result of a column-pivoted QR factorization.
#[derive(Debug, Clone)]
// lint: allow(dead_api): re-exported result type of qrcp; fields are the caller's read surface
pub struct QrcpResult {
    /// Column permutation: `permutation[k]` is the original index of the
    /// column moved to position `k`. The first `rank` entries are the
    /// selected (linearly independent) columns in pivot order.
    pub permutation: Vec<usize>,
    /// Number of pivots accepted before the rank tolerance triggered.
    pub rank: usize,
    /// The upper-trapezoidal factor `R` of the permuted matrix
    /// (`min(m,n) x n`).
    pub r: Matrix,
}

impl QrcpResult {
    /// Original indices of the selected columns, in pivot order.
    pub fn selected(&self) -> &[usize] {
        &self.permutation[..self.rank]
    }
}

/// Factors `a` with classical max-norm column pivoting.
///
/// `rel_tol` stops the factorization once the best remaining residual norm
/// drops below `rel_tol * (largest initial column norm)` — the usual
/// numerical-rank criterion.
pub fn qrcp(a: &Matrix, rel_tol: f64) -> Result<QrcpResult> {
    let _timer = crate::stats::time(crate::stats::Kernel::Qrcp);
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty { context: "qrcp" });
    }
    if !a.all_finite() {
        return Err(LinalgError::NonFinite { context: "qrcp" });
    }
    let mut work = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let steps = m.min(n);
    let max_initial = (0..n).map(|j| vector::norm2(work.col(j))).fold(0.0_f64, f64::max);
    let threshold = rel_tol * max_initial;
    let mut rank = 0;

    for i in 0..steps {
        // Pivot: trailing column with the largest residual norm.
        let mut best = i;
        let mut best_norm = -1.0;
        for j in i..n {
            let nrm = vector::norm2(&work.col(j)[i..]);
            if nrm > best_norm {
                best_norm = nrm;
                best = j;
            }
        }
        if best_norm <= threshold {
            break;
        }
        work.swap_cols(i, best);
        perm.swap(i, best);
        let h = Reflector::compute(&work.col(i)[i..]);
        work.col_mut(i)[i] = h.beta;
        for v in work.col_mut(i)[i + 1..].iter_mut() {
            *v = 0.0;
        }
        h.apply_left(&mut work, i, i + 1);
        rank = i + 1;
    }

    Ok(QrcpResult { permutation: perm, rank, r: work.submatrix(0, steps, 0, n) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_rank_identity_like() {
        let a = Matrix::from_rows(3, 3, &[1.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0]).unwrap();
        let res = qrcp(&a, 1e-12).unwrap();
        assert_eq!(res.rank, 3);
        // Largest-norm column (index 2, norm 3) must be pivoted first.
        assert_eq!(res.permutation[0], 2);
    }

    #[test]
    fn detects_rank_deficiency() {
        // col2 = col0 + col1
        let a =
            Matrix::from_rows(4, 3, &[1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 2.0, 1.0, 3.0, 1.0, 2.0, 3.0])
                .unwrap();
        let res = qrcp(&a, 1e-10).unwrap();
        assert_eq!(res.rank, 2);
        assert_eq!(res.selected().len(), 2);
    }

    #[test]
    fn duplicate_columns_collapse() {
        let a =
            Matrix::from_columns(&[vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 6.0]])
                .unwrap();
        let res = qrcp(&a, 1e-10).unwrap();
        assert_eq!(res.rank, 1);
    }

    #[test]
    fn wide_matrix_rank_bounded_by_rows() {
        let a = Matrix::from_rows(2, 4, &[1.0, 0.0, 1.0, 2.0, 0.0, 1.0, 1.0, 2.0]).unwrap();
        let res = qrcp(&a, 1e-10).unwrap();
        assert_eq!(res.rank, 2);
    }

    #[test]
    fn permutation_is_valid() {
        let a = Matrix::from_rows(3, 3, &[4.0, 1.0, 0.5, 1.0, 3.0, 0.25, 0.0, 1.0, 0.125]).unwrap();
        let res = qrcp(&a, 1e-12).unwrap();
        let mut sorted = res.permutation.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn zero_matrix_rank_zero() {
        let res = qrcp(&Matrix::zeros(3, 3), 1e-10).unwrap();
        assert_eq!(res.rank, 0);
    }

    #[test]
    fn selected_columns_are_independent() {
        let a = Matrix::from_rows(
            4,
            4,
            &[
                1.0, 2.0, 3.0, 1.0, //
                0.0, 0.0, 0.0, 1.0, //
                1.0, 2.0, 3.0, 0.0, //
                2.0, 4.0, 6.0, 0.0,
            ],
        )
        .unwrap();
        let res = qrcp(&a, 1e-10).unwrap();
        assert_eq!(res.rank, 2);
        let sel = a.select_columns(res.selected()).unwrap();
        let sub = crate::qr::Qr::factor(&sel).unwrap();
        assert_eq!(sub.rank(1e-10), 2);
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(qrcp(&Matrix::zeros(0, 0), 1e-10).is_err());
        let mut a = Matrix::identity(2);
        a[(1, 1)] = f64::NAN;
        assert!(qrcp(&a, 1e-10).is_err());
    }
}
