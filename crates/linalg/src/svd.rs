//! One-sided Jacobi SVD.
//!
//! Small and robust: the analysis matrices are at most a few hundred columns
//! by a few dozen rows, so a sweep-based Jacobi method converges quickly and
//! gives fully accurate singular values — which the backward-error formula
//! (Eq. 5 of the paper) needs through the spectral norm.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::vector;

/// Singular values of `a`, in descending order.
#[derive(Debug, Clone)]
// lint: allow(dead_api): re-exported result type of the SVD entry points
pub struct Svd {
    /// Singular values, descending.
    pub singular_values: Vec<f64>,
}

impl Svd {
    /// Largest singular value (the spectral norm); zero for a zero matrix.
    pub fn spectral_norm(&self) -> f64 {
        self.singular_values.first().copied().unwrap_or(0.0)
    }

    /// Smallest singular value.
    pub fn min_singular_value(&self) -> f64 {
        self.singular_values.last().copied().unwrap_or(0.0)
    }

    /// 2-norm condition number; infinite when the smallest singular value
    /// is zero.
    pub fn condition_number(&self) -> f64 {
        let min = self.min_singular_value();
        // lint: allow(float_cmp): exact-zero smallest singular value means infinite condition
        if min == 0.0 {
            f64::INFINITY
        } else {
            self.spectral_norm() / min
        }
    }

    /// Numerical rank: singular values above `rel_tol * sigma_max`.
    pub fn rank(&self, rel_tol: f64) -> usize {
        let smax = self.spectral_norm();
        // lint: allow(float_cmp): exact-zero spectral norm only happens for the zero matrix
        if smax == 0.0 {
            return 0;
        }
        self.singular_values.iter().filter(|&&s| s > rel_tol * smax).count()
    }
}

/// Computes the singular values of `a` by one-sided Jacobi rotations.
///
/// Works on the transpose when `a` is wide so the working matrix is always
/// tall; complexity is `O(sweeps · n² · m)` which is ample for the pipeline's
/// matrix sizes.
pub fn singular_values(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty { context: "svd" });
    }
    if !a.all_finite() {
        return Err(LinalgError::NonFinite { context: "svd" });
    }
    let mut u = if m >= n { a.clone() } else { a.transpose() };
    let ncols = u.cols();
    let eps = f64::EPSILON;
    let max_sweeps = 60;
    let mut converged = false;
    for _ in 0..max_sweeps {
        let mut off = 0.0_f64;
        for p in 0..ncols {
            for q in p + 1..ncols {
                let (app, aqq, apq) = {
                    let cp = u.col(p);
                    let cq = u.col(q);
                    (vector::dot(cp, cp), vector::dot(cq, cq), vector::dot(cp, cq))
                };
                // lint: allow(float_cmp): exactly-orthogonal columns need no rotation
                if apq == 0.0 {
                    continue;
                }
                off = off.max(apq.abs() / (app * aqq).sqrt().max(f64::MIN_POSITIVE));
                if apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                // Jacobi rotation zeroing the (p,q) entry of U^T U.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let rows = u.rows();
                for i in 0..rows {
                    let uip = u[(i, p)];
                    let uiq = u[(i, q)];
                    u[(i, p)] = c * uip - s * uiq;
                    u[(i, q)] = s * uip + c * uiq;
                }
            }
        }
        if off <= 16.0 * eps {
            converged = true;
            break;
        }
    }
    if !converged {
        // One-sided Jacobi converges in a handful of sweeps on the matrices
        // this library produces; reaching the budget indicates pathology.
        return Err(LinalgError::NoConvergence { iterations: max_sweeps, context: "svd" });
    }
    let mut sv: Vec<f64> = (0..ncols).map(|j| vector::norm2(u.col(j))).collect();
    sv.sort_by(|a, b| b.total_cmp(a));
    Ok(Svd { singular_values: sv })
}

/// Spectral norm ‖a‖₂ of a matrix (largest singular value).
///
/// Every call runs a fresh Jacobi SVD and increments the
/// [`crate::stats::Kernel::SpectralNorm`] counter; callers that need the
/// norm of one matrix repeatedly should go through
/// [`crate::FactoredLstsq`], which computes it once and serves the rest
/// from its cache.
pub fn spectral_norm(a: &Matrix) -> Result<f64> {
    let _timer = crate::stats::time(crate::stats::Kernel::SpectralNorm);
    Ok(singular_values(a)?.spectral_norm())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = Matrix::from_rows(3, 3, &[3.0, 0.0, 0.0, 0.0, -5.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        let svd = singular_values(&a).unwrap();
        let expect = [5.0, 3.0, 1.0];
        for (got, want) in svd.singular_values.iter().zip(expect) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
        assert!((svd.spectral_norm() - 5.0).abs() < 1e-12);
        assert!((svd.condition_number() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_columns_norms() {
        // Columns orthogonal with norms sqrt(5) each -> all sv = sqrt(5).
        let a =
            Matrix::from_columns(&[vec![1.0, 2.0, 0.0, 0.0], vec![0.0, 0.0, 2.0, 1.0]]).unwrap();
        let svd = singular_values(&a).unwrap();
        for s in &svd.singular_values {
            assert!((s - 5.0_f64.sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn known_2x2() {
        // A = [[1,1],[0,1]]: singular values are sqrt((3±sqrt5)/2).
        let a = Matrix::from_rows(2, 2, &[1.0, 1.0, 0.0, 1.0]).unwrap();
        let svd = singular_values(&a).unwrap();
        let s1 = ((3.0 + 5.0_f64.sqrt()) / 2.0).sqrt();
        let s2 = ((3.0 - 5.0_f64.sqrt()) / 2.0).sqrt();
        assert!((svd.singular_values[0] - s1).abs() < 1e-12);
        assert!((svd.singular_values[1] - s2).abs() < 1e-12);
    }

    #[test]
    fn wide_matrix_same_as_transpose() {
        let a = Matrix::from_rows(2, 4, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        let sa = singular_values(&a).unwrap();
        let st = singular_values(&a.transpose()).unwrap();
        for (x, y) in sa.singular_values.iter().zip(&st.singular_values) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn rank_detection() {
        let a = Matrix::from_columns(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let svd = singular_values(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        assert_eq!(svd.condition_number(), f64::INFINITY);
    }

    #[test]
    fn zero_matrix() {
        let svd = singular_values(&Matrix::zeros(3, 2)).unwrap();
        assert_eq!(svd.spectral_norm(), 0.0);
        assert_eq!(svd.rank(1e-10), 0);
    }

    #[test]
    fn frobenius_bound_holds() {
        let a = Matrix::from_rows(3, 2, &[1.0, -2.0, 0.5, 3.0, 2.0, 1.0]).unwrap();
        let s = spectral_norm(&a).unwrap();
        let f = a.frobenius_norm();
        assert!(s <= f + 1e-12);
        assert!(f <= s * (2.0_f64).sqrt() + 1e-12);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(singular_values(&Matrix::zeros(0, 2)).is_err());
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::INFINITY;
        assert!(singular_values(&a).is_err());
    }
}
