//! Level-1 vector kernels used throughout the factorizations.

/// Dot product of two equally long slices.
///
/// Panics in debug builds when the lengths differ; in release builds the
/// shorter length wins (standard `zip` semantics), which is never exercised
/// by the internal callers.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm with overflow/underflow-safe scaling.
///
/// Uses the textbook two-pass scaled formulation rather than `sqrt(dot(v,v))`
/// so that vectors with entries near `f64::MAX.sqrt()` do not overflow.
pub fn norm2(v: &[f64]) -> f64 {
    let maxabs = v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
    // lint: allow(float_cmp): exact-zero guard before scaling by 1/maxabs
    if maxabs == 0.0 || !maxabs.is_finite() {
        return maxabs;
    }
    let mut sum = 0.0;
    for &x in v {
        let s = x / maxabs;
        sum += s * s;
    }
    maxabs * sum.sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    // lint: allow(float_cmp): axpy with exactly-zero alpha is a no-op
    if alpha == 0.0 {
        return;
    }
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales `v` in place by `alpha`.
#[inline]
pub fn scale(v: &mut [f64], alpha: f64) {
    for x in v {
        *x *= alpha;
    }
}

/// Euclidean distance between two vectors.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "distance: length mismatch");
    let diff: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    norm2(&diff)
}

/// Arithmetic mean; zero for an empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Median of a slice (average of the middle two for even lengths).
///
/// Returns `None` for an empty slice and ignores NaN ordering subtleties by
/// using total ordering on bit patterns (callers pass finite data).
pub fn median(v: &[f64]) -> Option<f64> {
    if v.is_empty() {
        return None;
    }
    let mut sorted = v.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    Some(if n % 2 == 1 { sorted[n / 2] } else { 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]) })
}

/// Largest absolute entry; zero for an empty slice.
pub fn max_abs(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// True when every entry is exactly zero.
pub fn is_zero(v: &[f64]) -> bool {
    // lint: allow(float_cmp): the zero vector is exactly zero by definition
    v.iter().all(|&x| x == 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm2_pythagoras() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn norm2_no_overflow() {
        let big = f64::MAX / 2.0;
        let n = norm2(&[big, big]);
        assert!(n.is_finite());
        assert!((n / big - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn norm2_no_underflow() {
        let tiny = f64::MIN_POSITIVE;
        let n = norm2(&[tiny, tiny]);
        assert!(n > 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        axpy(0.0, &[f64::NAN, f64::NAN], &mut y); // alpha=0 short-circuits
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut v = vec![1.0, -2.0];
        scale(&mut v, -3.0);
        assert_eq!(v, vec![-3.0, 6.0]);
    }

    #[test]
    fn distance_symmetric() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert!((distance(&a, &b) - 5.0).abs() < 1e-15);
        assert_eq!(distance(&a, &b), distance(&b, &a));
    }

    #[test]
    fn mean_and_median() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[7.0]), Some(7.0));
    }

    #[test]
    fn max_abs_and_is_zero() {
        assert_eq!(max_abs(&[-3.0, 2.0]), 3.0);
        assert!(is_zero(&[0.0, 0.0]));
        assert!(!is_zero(&[0.0, 1e-300]));
    }
}
