//! Householder reflectors — the building block for the QR factorizations.
//!
//! A reflector is stored as `(v, tau)` with `H = I - tau * v * v^T` and
//! `v[0] = 1` implicitly (LAPACK convention), so the essential part of `v`
//! can overwrite the zeroed column entries.

use crate::matrix::Matrix;
use crate::vector;

/// A Householder reflector `H = I - tau * v v^T` acting on vectors of length
/// `v.len()`, with `v[0] == 1` by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Reflector {
    /// Householder vector with unit first entry.
    pub v: Vec<f64>,
    /// Scaling coefficient; zero means the identity (nothing to annihilate).
    pub tau: f64,
    /// Value the reflector maps the input's first entry to (the resulting
    /// R diagonal entry): `H x = (beta, 0, ..., 0)`.
    pub beta: f64,
}

impl Reflector {
    /// Computes the reflector annihilating all but the first entry of `x`.
    ///
    /// Follows the LAPACK `dlarfg` sign convention: `beta = -sign(x[0])·‖x‖`,
    /// which keeps `v[0] = x[0] - beta` away from cancellation.
    pub fn compute(x: &[f64]) -> Reflector {
        let n = x.len();
        assert!(n > 0, "Reflector::compute: empty input");
        let alpha = x[0];
        let tail_norm = vector::norm2(&x[1..]);
        // lint: allow(float_cmp): exact-zero breakdown guard, the standard LAPACK idiom
        if tail_norm == 0.0 {
            // Nothing below the diagonal: identity reflector.
            return Reflector {
                v: std::iter::once(1.0).chain(vec![0.0; n - 1]).collect(),
                tau: 0.0,
                beta: alpha,
            };
        }
        let norm = vector::norm2(x);
        let beta = if alpha >= 0.0 { -norm } else { norm };
        let tau = (beta - alpha) / beta;
        let scale = 1.0 / (alpha - beta);
        let mut v = Vec::with_capacity(n);
        v.push(1.0);
        v.extend(x[1..].iter().map(|&xi| xi * scale));
        Reflector { v, tau, beta }
    }

    /// Applies `H` to a vector in place: `x <- (I - tau v v^T) x`.
    pub fn apply_vec(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.v.len(), "Reflector::apply_vec length mismatch");
        // lint: allow(float_cmp): tau is set to exactly 0.0 to mark an identity reflector
        if self.tau == 0.0 {
            return;
        }
        let w = vector::dot(&self.v, x);
        vector::axpy(-self.tau * w, &self.v, x);
    }

    /// Applies `H` from the left to the trailing block of `a`: for every
    /// column `j in j0..a.cols()`, rows `i0..i0+v.len()` are transformed.
    pub fn apply_left(&self, a: &mut Matrix, i0: usize, j0: usize) {
        // lint: allow(float_cmp): tau is set to exactly 0.0 to mark an identity reflector
        if self.tau == 0.0 {
            return;
        }
        let len = self.v.len();
        for j in j0..a.cols() {
            // lint: allow(reachable_panic): QRCP applies reflectors at their own pivot offsets
            let col = &mut a.col_mut(j)[i0..i0 + len];
            let w = vector::dot(&self.v, col);
            vector::axpy(-self.tau * w, &self.v, col);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annihilates_tail() {
        let x = [3.0, 4.0];
        let h = Reflector::compute(&x);
        let mut y = x.to_vec();
        h.apply_vec(&mut y);
        assert!((y[0].abs() - 5.0).abs() < 1e-14);
        assert!(y[1].abs() < 1e-14);
        assert!((y[0] - h.beta).abs() < 1e-14);
    }

    #[test]
    fn negative_leading_entry() {
        let x = [-3.0, 4.0];
        let h = Reflector::compute(&x);
        let mut y = x.to_vec();
        h.apply_vec(&mut y);
        assert!((y[0] - 5.0).abs() < 1e-14, "beta should be +norm for negative alpha");
        assert!(y[1].abs() < 1e-14);
    }

    #[test]
    fn identity_when_tail_zero() {
        let h = Reflector::compute(&[2.0, 0.0, 0.0]);
        assert_eq!(h.tau, 0.0);
        assert_eq!(h.beta, 2.0);
        let mut y = vec![2.0, 0.0, 0.0];
        h.apply_vec(&mut y);
        assert_eq!(y, vec![2.0, 0.0, 0.0]);
    }

    #[test]
    fn involution_preserves_norm() {
        let x = [1.0, -2.0, 3.0, 0.5];
        let h = Reflector::compute(&x);
        let mut y = vec![0.3, 1.4, -2.0, 0.9];
        let before = vector::norm2(&y);
        h.apply_vec(&mut y);
        assert!((vector::norm2(&y) - before).abs() < 1e-13, "reflection is an isometry");
        // applying twice returns the original
        h.apply_vec(&mut y);
        assert!((y[0] - 0.3).abs() < 1e-13);
        assert!((y[3] - 0.9).abs() < 1e-13);
    }

    #[test]
    fn apply_left_transforms_trailing_columns() {
        let mut a = Matrix::from_rows(2, 2, &[3.0, 1.0, 4.0, 1.0]).unwrap();
        let h = Reflector::compute(&[3.0, 4.0]);
        h.apply_left(&mut a, 0, 0);
        assert!(a[(1, 0)].abs() < 1e-14);
        assert!((a[(0, 0)].abs() - 5.0).abs() < 1e-14);
    }

    #[test]
    fn singleton_vector() {
        let h = Reflector::compute(&[7.5]);
        assert_eq!(h.tau, 0.0);
        assert_eq!(h.beta, 7.5);
    }
}
