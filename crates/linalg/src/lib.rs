//! # catalyze-linalg
//!
//! From-scratch dense linear algebra for the CATalyze event-analysis
//! pipeline (a reproduction of *Automated Data Analysis for Defining
//! Performance Metrics from Raw Hardware Events*, IPDPSW 2024).
//!
//! The pipeline needs exactly the kernels implemented here:
//!
//! * [`matrix::Matrix`] — column-major dense matrices whose columns are
//!   event measurement vectors or expectation-basis representations;
//! * [`qr::Qr`] — Householder QR, used to solve the normalization systems
//!   `E·x_e = m_e` and the metric-definition systems `X̂·y = s`;
//! * [`mod@qrcp`] — classical max-norm column-pivoted QR (Algorithm 1), kept as
//!   the baseline the paper argues against;
//! * [`spqrcp`] — the paper's specialized pivoting scheme (Algorithm 2):
//!   α-quantization, expectation-affinity scoring, β norm floor;
//! * [`mod@lstsq`] — least squares plus the backward-error fitness measure
//!   (Eq. 5) that decides whether a metric is composable on an architecture;
//! * [`factored`] — the factor-once/solve-many workspace
//!   ([`FactoredLstsq`]) both pipeline hot stages use to amortize QR and
//!   spectral-norm work across a batch of right-hand sides;
//! * [`svd`] — one-sided Jacobi singular values (spectral norms, condition
//!   numbers, rank checks);
//! * [`stats`] — relaxed-atomic run counters and wall-time accumulators for
//!   the kernels above, snapshot/delta-read by the pipeline's observability
//!   layer.
//!
//! Everything is implemented directly on `f64` slices with no external
//! linear-algebra dependencies.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod factored;
pub(crate) mod householder;
pub mod lstsq;
pub mod matrix;
pub mod qr;
pub mod qrcp;
pub mod spqrcp;
pub mod stats;
pub mod svd;
// lint: allow(dead_api): triangular-solve surface; solve_lower has no in-crate caller
pub mod tri;
pub mod vector;

pub use error::{LinalgError, Result};
pub use factored::FactoredLstsq;
pub use lstsq::{backward_error, lstsq, LstsqSolution};
pub use matrix::Matrix;
pub use qr::Qr;
pub use qrcp::{qrcp, QrcpResult};
pub use spqrcp::{specialized_qrcp, SpQrcpParams, SpQrcpResult};
pub use stats::{snapshot as stats_snapshot, Snapshot as StatsSnapshot};
pub use svd::{singular_values, spectral_norm, Svd};
