//! Process-wide counters for the linear-algebra hot paths.
//!
//! Every QR factorization, column-pivoted QR run, and least-squares solve
//! increments a relaxed atomic counter and adds its wall time to a nanosecond
//! accumulator. The increments cost a few nanoseconds against kernels that
//! run for microseconds, so they stay on unconditionally; consumers that
//! want per-phase numbers take a [`snapshot`] before and after the phase and
//! difference them with [`Snapshot::delta_since`] (this is how the pipeline's
//! observability layer attributes solves to stages).
//!
//! Counters are global to the process. The analysis pipeline runs its solves
//! sequentially on the calling thread, so a delta taken around one analysis
//! is exact for it; concurrent analyses in the same process fold into each
//! other's deltas.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static QR_COUNT: AtomicU64 = AtomicU64::new(0);
static QR_NANOS: AtomicU64 = AtomicU64::new(0);
static QRCP_COUNT: AtomicU64 = AtomicU64::new(0);
static QRCP_NANOS: AtomicU64 = AtomicU64::new(0);
static SPQRCP_COUNT: AtomicU64 = AtomicU64::new(0);
static SPQRCP_NANOS: AtomicU64 = AtomicU64::new(0);
static LSTSQ_COUNT: AtomicU64 = AtomicU64::new(0);
static LSTSQ_NANOS: AtomicU64 = AtomicU64::new(0);
static SPECTRAL_COUNT: AtomicU64 = AtomicU64::new(0);
static SPECTRAL_NANOS: AtomicU64 = AtomicU64::new(0);
static QR_AVOIDED: AtomicU64 = AtomicU64::new(0);
static SPECTRAL_CACHED: AtomicU64 = AtomicU64::new(0);

/// The instrumented kernel families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Unpivoted Householder QR ([`crate::Qr::factor`]), including the
    /// factorizations performed inside least-squares solves.
    Qr,
    /// Classical max-norm column-pivoted QR ([`crate::qrcp`]).
    Qrcp,
    /// The paper's specialized column-pivoted QR ([`crate::specialized_qrcp`]).
    SpQrcp,
    /// Least-squares solve with diagnostics ([`crate::lstsq`]), whether
    /// one-shot or through a [`crate::FactoredLstsq`] workspace.
    Lstsq,
    /// Spectral-norm computation ([`crate::spectral_norm`]), the Jacobi-SVD
    /// part of the backward-error measure.
    SpectralNorm,
}

impl Kernel {
    fn cells(self) -> (&'static AtomicU64, &'static AtomicU64) {
        match self {
            Kernel::Qr => (&QR_COUNT, &QR_NANOS),
            Kernel::Qrcp => (&QRCP_COUNT, &QRCP_NANOS),
            Kernel::SpQrcp => (&SPQRCP_COUNT, &SPQRCP_NANOS),
            Kernel::Lstsq => (&LSTSQ_COUNT, &LSTSQ_NANOS),
            Kernel::SpectralNorm => (&SPECTRAL_COUNT, &SPECTRAL_NANOS),
        }
    }
}

/// Point-in-time reading of every kernel counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Householder QR factorizations (includes those inside `lstsq`).
    pub qr_factorizations: u64,
    /// Nanoseconds spent in Householder QR.
    pub qr_nanos: u64,
    /// Classical column-pivoted QR runs.
    pub qrcp_runs: u64,
    /// Nanoseconds spent in classical QRCP.
    pub qrcp_nanos: u64,
    /// Specialized column-pivoted QR runs.
    pub spqrcp_runs: u64,
    /// Nanoseconds spent in the specialized QRCP.
    pub spqrcp_nanos: u64,
    /// Least-squares solves.
    pub lstsq_solves: u64,
    /// Nanoseconds spent in least-squares solves. One-shot [`crate::lstsq`]
    /// factors inside [`crate::FactoredLstsq::factor`] before the solve
    /// timer starts, so QR time is accumulated in `qr_nanos` only.
    pub lstsq_nanos: u64,
    /// Spectral-norm computations (the Jacobi-SVD part of the
    /// backward-error measure).
    pub spectral_norms: u64,
    /// Nanoseconds spent computing spectral norms.
    pub spectral_nanos: u64,
    /// QR factorizations a [`crate::FactoredLstsq`] workspace *avoided* by
    /// reusing its factorization: one per solve beyond the first, compared
    /// against the naive one-factorization-per-solve baseline.
    pub qr_factorizations_avoided: u64,
    /// Spectral-norm computations answered from a [`crate::FactoredLstsq`]
    /// workspace's cache instead of re-running the Jacobi SVD.
    pub spectral_norms_cached: u64,
}

impl Snapshot {
    /// The counter movement since `earlier` (saturating, so a stale
    /// snapshot from another epoch yields zeros rather than wrapping).
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            qr_factorizations: self.qr_factorizations.saturating_sub(earlier.qr_factorizations),
            qr_nanos: self.qr_nanos.saturating_sub(earlier.qr_nanos),
            qrcp_runs: self.qrcp_runs.saturating_sub(earlier.qrcp_runs),
            qrcp_nanos: self.qrcp_nanos.saturating_sub(earlier.qrcp_nanos),
            spqrcp_runs: self.spqrcp_runs.saturating_sub(earlier.spqrcp_runs),
            spqrcp_nanos: self.spqrcp_nanos.saturating_sub(earlier.spqrcp_nanos),
            lstsq_solves: self.lstsq_solves.saturating_sub(earlier.lstsq_solves),
            lstsq_nanos: self.lstsq_nanos.saturating_sub(earlier.lstsq_nanos),
            spectral_norms: self.spectral_norms.saturating_sub(earlier.spectral_norms),
            spectral_nanos: self.spectral_nanos.saturating_sub(earlier.spectral_nanos),
            qr_factorizations_avoided: self
                .qr_factorizations_avoided
                .saturating_sub(earlier.qr_factorizations_avoided),
            spectral_norms_cached: self
                .spectral_norms_cached
                .saturating_sub(earlier.spectral_norms_cached),
        }
    }
}

/// Reads every counter at once.
pub fn snapshot() -> Snapshot {
    Snapshot {
        // lint: allow(relaxed_result): telemetry tallies for perf reporting, never part of certified analysis values
        qr_factorizations: QR_COUNT.load(Ordering::Relaxed),
        qr_nanos: QR_NANOS.load(Ordering::Relaxed),
        qrcp_runs: QRCP_COUNT.load(Ordering::Relaxed),
        qrcp_nanos: QRCP_NANOS.load(Ordering::Relaxed),
        spqrcp_runs: SPQRCP_COUNT.load(Ordering::Relaxed),
        spqrcp_nanos: SPQRCP_NANOS.load(Ordering::Relaxed),
        lstsq_solves: LSTSQ_COUNT.load(Ordering::Relaxed),
        lstsq_nanos: LSTSQ_NANOS.load(Ordering::Relaxed),
        spectral_norms: SPECTRAL_COUNT.load(Ordering::Relaxed),
        spectral_nanos: SPECTRAL_NANOS.load(Ordering::Relaxed),
        qr_factorizations_avoided: QR_AVOIDED.load(Ordering::Relaxed),
        spectral_norms_cached: SPECTRAL_CACHED.load(Ordering::Relaxed),
    }
}

/// Records `runs` kernel runs that together took `nanos` wall nanoseconds —
/// the batched analogue of [`time`], used by
/// [`crate::FactoredLstsq::solve_many`] where per-solve timers inside the
/// parallel region would double-count overlapping wall time.
pub(crate) fn record_batch(kernel: Kernel, runs: u64, nanos: u64) {
    let (count, total) = kernel.cells();
    count.fetch_add(runs, Ordering::Relaxed);
    total.fetch_add(nanos, Ordering::Relaxed);
}

/// Records `n` QR factorizations avoided through factorization reuse.
pub(crate) fn record_qr_factorizations_avoided(n: u64) {
    QR_AVOIDED.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` spectral norms served from a workspace cache.
pub(crate) fn record_spectral_norms_cached(n: u64) {
    SPECTRAL_CACHED.fetch_add(n, Ordering::Relaxed);
}

/// RAII timer: created at kernel entry, records one run and its wall time
/// when dropped (on success *and* on early error return).
pub(crate) struct KernelTimer {
    kernel: Kernel,
    start: Instant,
}

/// Starts timing one run of `kernel`.
pub(crate) fn time(kernel: Kernel) -> KernelTimer {
    // lint: allow(raw_timing, nondet_time): feeds the relaxed-atomic kernel counters behind stats::snapshot()
    KernelTimer { kernel, start: Instant::now() }
}

impl Drop for KernelTimer {
    fn drop(&mut self) {
        let elapsed = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let (count, nanos) = self.kernel.cells();
        count.fetch_add(1, Ordering::Relaxed);
        nanos.fetch_add(elapsed, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_count_and_time() {
        let before = snapshot();
        {
            let _t = time(Kernel::Qrcp);
        }
        let delta = snapshot().delta_since(&before);
        assert!(delta.qrcp_runs >= 1);
    }

    #[test]
    fn batch_recorder_adds_counts_and_reuse_counters() {
        let before = snapshot();
        record_batch(Kernel::Lstsq, 8, 1234);
        record_qr_factorizations_avoided(7);
        record_spectral_norms_cached(7);
        let delta = snapshot().delta_since(&before);
        assert!(delta.lstsq_solves >= 8);
        assert!(delta.lstsq_nanos >= 1234);
        assert!(delta.qr_factorizations_avoided >= 7);
        assert!(delta.spectral_norms_cached >= 7);
    }

    #[test]
    fn delta_saturates() {
        let big = Snapshot { lstsq_solves: 10, ..Snapshot::default() };
        let small = Snapshot::default();
        assert_eq!(small.delta_since(&big).lstsq_solves, 0);
        assert_eq!(big.delta_since(&small).lstsq_solves, 10);
    }
}
