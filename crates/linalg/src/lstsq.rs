//! Least-squares solves and the paper's backward-error fitness measure.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::svd;
use crate::vector;

/// Solution of `min_x ‖A x − b‖₂` together with its quality measures.
#[derive(Debug, Clone)]
pub struct LstsqSolution {
    /// The minimizer `x`.
    pub x: Vec<f64>,
    /// `‖A x − b‖₂`.
    pub residual_norm: f64,
    /// `‖A x − b‖₂ / ‖b‖₂` (for `b = 0`: 0.0 when the residual is also
    /// zero, 1.0 otherwise).
    pub relative_residual: f64,
    /// The paper's Eq. 5: `‖A x − b‖₂ / (‖A‖₂·‖x‖₂ + ‖b‖₂)`.
    pub backward_error: f64,
}

/// Solves the least-squares problem `min ‖A x − b‖` via Householder QR.
///
/// `A` must be square or tall with full column rank (the pipeline guarantees
/// this: `X̂` comes out of the specialized QRCP). Returns the solution with
/// residual and backward-error diagnostics.
///
/// This is the one-shot entry point: it factors `A` and computes `‖A‖₂`
/// fresh on every call. Callers that solve several right-hand sides against
/// the same matrix should build a [`crate::FactoredLstsq`] workspace
/// instead — this function is a thin shim over a single-use workspace, so
/// the solutions are bit-identical either way.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<LstsqSolution> {
    crate::factored::FactoredLstsq::factor(a)?.solve(b)
}

/// The paper's backward error (Eq. 5):
/// `‖A x − b‖₂ / (‖A‖₂·‖x‖₂ + ‖b‖₂)`.
///
/// Returns 0 when both numerator and denominator vanish (the trivial
/// `0·0=0` system).
pub fn backward_error(a: &Matrix, x: &[f64], b: &[f64]) -> Result<f64> {
    let ax = a.matvec(x)?;
    if ax.len() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            expected: (ax.len(), 1),
            got: (b.len(), 1),
            context: "backward_error",
        });
    }
    let residual: Vec<f64> = ax.iter().zip(b).map(|(&p, &q)| p - q).collect();
    let num = vector::norm2(&residual);
    let denom = svd::spectral_norm(a)? * vector::norm2(x) + vector::norm2(b);
    // lint: allow(float_cmp): exact-zero guard before forming the error ratio
    if denom == 0.0 {
        // lint: allow(float_cmp): 0/0 is defined as 0 here, x/0 as infinity
        return Ok(if num == 0.0 { 0.0 } else { f64::INFINITY });
    }
    Ok(num / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_system_zero_error() {
        let a = Matrix::from_rows(2, 2, &[1.0, 0.0, 0.0, 2.0]).unwrap();
        let sol = lstsq(&a, &[3.0, 4.0]).unwrap();
        assert!((sol.x[0] - 3.0).abs() < 1e-14);
        assert!((sol.x[1] - 2.0).abs() < 1e-14);
        assert!(sol.residual_norm < 1e-14);
        assert!(sol.backward_error < 1e-15);
        assert!(sol.relative_residual < 1e-14);
    }

    #[test]
    fn fma_instrs_analytic_case() {
        // The Table V structure: four orthogonal columns e_i + 2 f_i in a
        // 16-dim space, signature 2 on the f positions only. Least squares
        // must give 0.8 coefficients and backward error 2.36e-1.
        let mut cols = Vec::new();
        for i in 0..4 {
            let mut c = vec![0.0; 16];
            c[i] = 1.0; // plain-kernel expectation position
            c[8 + i] = 2.0; // FMA-kernel expectation position
            cols.push(c);
        }
        // Four more orthogonal DP columns that stay unused.
        for i in 4..8 {
            let mut c = vec![0.0; 16];
            c[i] = 1.0;
            c[8 + i] = 2.0;
            cols.push(c);
        }
        let a = Matrix::from_columns(&cols).unwrap();
        let mut s = vec![0.0; 16];
        for i in 0..4 {
            s[8 + i] = 2.0;
        }
        let sol = lstsq(&a, &s).unwrap();
        for i in 0..4 {
            assert!((sol.x[i] - 0.8).abs() < 1e-12, "coefficient {}: {}", i, sol.x[i]);
        }
        for i in 4..8 {
            assert!(sol.x[i].abs() < 1e-12);
        }
        assert!((sol.backward_error - 0.2361).abs() < 5e-4, "err {}", sol.backward_error);
    }

    #[test]
    fn gpu_add_analytic_case() {
        // Table VI structure: ADD_F16 column = e_AH + e_SH; signature e_AH.
        // Coefficient 0.5, backward error 4.14e-1.
        let mut cols = Vec::new();
        let mut add = vec![0.0; 15];
        add[0] = 1.0;
        add[3] = 1.0;
        cols.push(add);
        for i in [6usize, 9, 12] {
            let mut c = vec![0.0; 15];
            c[i] = 1.0;
            cols.push(c);
        }
        let a = Matrix::from_columns(&cols).unwrap();
        let mut s = vec![0.0; 15];
        s[0] = 1.0;
        let sol = lstsq(&a, &s).unwrap();
        assert!((sol.x[0] - 0.5).abs() < 1e-12);
        assert!((sol.backward_error - 0.4142).abs() < 5e-4, "err {}", sol.backward_error);
    }

    #[test]
    fn unreachable_signature_error_one() {
        // Table VII "Conditional Branches Executed": signature orthogonal to
        // every column -> x = 0, backward error = ‖s‖/‖s‖ = 1.
        let a = Matrix::from_columns(&[
            vec![0.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
            vec![0.0, 1.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        let s = [1.0, 0.0, 0.0, 0.0, 0.0];
        let sol = lstsq(&a, &s).unwrap();
        for c in &sol.x {
            assert!(c.abs() < 1e-12);
        }
        assert!((sol.backward_error - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rhs() {
        let a = Matrix::identity(2);
        let sol = lstsq(&a, &[0.0, 0.0]).unwrap();
        assert_eq!(sol.relative_residual, 0.0);
        assert!(sol.backward_error == 0.0);
    }

    #[test]
    fn shape_and_finiteness_errors() {
        let a = Matrix::identity(2);
        assert!(lstsq(&a, &[1.0]).is_err());
        assert!(lstsq(&a, &[f64::NAN, 0.0]).is_err());
        assert!(backward_error(&a, &[1.0], &[1.0, 0.0]).is_err());
    }

    #[test]
    fn backward_error_zero_over_zero() {
        let a = Matrix::zeros(2, 2);
        assert_eq!(backward_error(&a, &[0.0, 0.0], &[0.0, 0.0]).unwrap(), 0.0);
    }
}
