//! Unpivoted Householder QR factorization.

use crate::error::{LinalgError, Result};
use crate::householder::Reflector;
use crate::matrix::Matrix;
use crate::tri;

/// Compact Householder QR of an `m x n` matrix with `m >= n`:
/// `A = Q R` with orthonormal `Q` (`m x n`, thin) and upper-triangular `R`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// The transformed matrix: upper triangle holds `R`.
    factored: Matrix,
    /// One reflector per factorization step.
    reflectors: Vec<Reflector>,
}

impl Qr {
    /// Factors `a`. Requires `m >= n >= 1` and finite entries.
    pub fn factor(a: &Matrix) -> Result<Qr> {
        let _timer = crate::stats::time(crate::stats::Kernel::Qr);
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty { context: "Qr::factor" });
        }
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, n),
                got: (m, n),
                context: "Qr::factor (matrix must be square or tall)",
            });
        }
        if !a.all_finite() {
            return Err(LinalgError::NonFinite { context: "Qr::factor" });
        }
        let mut work = a.clone();
        let steps = n.min(m.saturating_sub(1)).max(if m == 1 { 0 } else { n });
        let mut reflectors = Vec::with_capacity(steps);
        for k in 0..n {
            if k >= m {
                break;
            }
            let h = Reflector::compute(&work.col(k)[k..]);
            // Column k becomes (r_0..r_{k-1}, beta, 0, ..., 0).
            work.col_mut(k)[k] = h.beta;
            for v in work.col_mut(k)[k + 1..].iter_mut() {
                *v = 0.0;
            }
            h.apply_left(&mut work, k, k + 1);
            reflectors.push(h);
        }
        Ok(Qr { factored: work, reflectors })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.factored.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.factored.cols()
    }

    /// The `n x n` upper-triangular factor `R`.
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        let mut r = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..=j.min(n - 1) {
                r[(i, j)] = self.factored[(i, j)];
            }
        }
        r
    }

    /// The thin orthonormal factor `Q` (`m x n`).
    pub fn q_thin(&self) -> Matrix {
        let (m, n) = self.factored.shape();
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            q[(j, j)] = 1.0;
        }
        // Q = H_0 H_1 ... H_{n-1} * [I; 0]; apply reflectors in reverse.
        for (k, h) in self.reflectors.iter().enumerate().rev() {
            h.apply_left(&mut q, k, 0);
        }
        q
    }

    /// Applies `Q^T` to a vector: returns `Q^T b` of length `m`.
    pub fn apply_qt(&self, b: &[f64]) -> Result<Vec<f64>> {
        let m = self.rows();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                expected: (m, 1),
                got: (b.len(), 1),
                context: "Qr::apply_qt",
            });
        }
        let mut y = b.to_vec();
        for (k, h) in self.reflectors.iter().enumerate() {
            h.apply_vec(&mut y[k..k + h.v.len()]);
        }
        Ok(y)
    }

    /// Applies `Q^T` to every column of an `m x k` right-hand-side panel in
    /// place.
    ///
    /// Each column goes through exactly the arithmetic of
    /// [`Qr::apply_qt`] (the same reflector sequence, the same dot/axpy
    /// order), so a panel column's result is bit-identical to a
    /// single-vector application. Panels above the `1 << 20` work threshold
    /// (`m · n · k`, mirroring [`Matrix::matmul`]'s cutoff) are transformed
    /// column-parallel across the rayon pool; smaller ones sweep the
    /// reflectors over the whole panel sequentially.
    pub fn apply_qt_panel(&self, panel: &mut Matrix) -> Result<()> {
        let m = self.rows();
        if panel.rows() != m {
            return Err(LinalgError::ShapeMismatch {
                expected: (m, panel.cols()),
                got: panel.shape(),
                context: "Qr::apply_qt_panel",
            });
        }
        let work = m as u64 * self.cols() as u64 * panel.cols() as u64;
        if work < 1 << 20 {
            // Blocked sweep: each reflector crosses the whole panel once.
            for (k, h) in self.reflectors.iter().enumerate() {
                h.apply_left(panel, k, 0);
            }
        } else {
            use rayon::prelude::*;
            let reflectors = &self.reflectors;
            panel.as_mut_slice().par_chunks_mut(m).for_each(|col| {
                for (k, h) in reflectors.iter().enumerate() {
                    h.apply_vec(&mut col[k..k + h.v.len()]);
                }
            });
        }
        Ok(())
    }

    /// Solves the least-squares problem `min ‖A x - b‖₂` for full-rank `A`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.apply_qt(b)?;
        tri::solve_upper(&self.r(), &y)
    }

    /// Absolute values of the diagonal of `R` (used for rank estimates).
    pub fn r_diag_abs(&self) -> Vec<f64> {
        (0..self.cols()).map(|i| self.factored[(i, i)].abs()).collect()
    }

    /// Numerical rank: number of `|R_ii|` above `tol * max |R_ii|`.
    pub fn rank(&self, rel_tol: f64) -> usize {
        let d = self.r_diag_abs();
        let dmax = d.iter().cloned().fold(0.0_f64, f64::max);
        // lint: allow(float_cmp): exact-zero pivot column means exact rank deficiency
        if dmax == 0.0 {
            return 0;
        }
        d.iter().filter(|&&v| v > rel_tol * dmax).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn reconstructs_a() {
        let a = Matrix::from_rows(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        let recon = qr.q_thin().matmul(&qr.r()).unwrap();
        assert!(recon.max_abs_diff(&a).unwrap() < 1e-13);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_rows(
            4,
            3,
            &[2.0, -1.0, 0.5, 1.0, 3.0, 1.0, 0.0, 1.0, -2.0, 4.0, 0.5, 1.5],
        )
        .unwrap();
        let q = Qr::factor(&a).unwrap().q_thin();
        let g = q.gram();
        assert!(g.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-13);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(3, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0]).unwrap();
        let r = Qr::factor(&a).unwrap().r();
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_square_system() {
        let a = Matrix::from_rows(2, 2, &[2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = Qr::factor(&a).unwrap().solve(&[5.0, 10.0]).unwrap();
        assert_close(x[0], 1.0, 1e-13);
        assert_close(x[1], 3.0, 1e-13);
    }

    #[test]
    fn solve_overdetermined_regression() {
        // Fit y = 2x + 1 exactly through three collinear points.
        let a = Matrix::from_rows(3, 2, &[1.0, 0.0, 1.0, 1.0, 1.0, 2.0]).unwrap();
        let x = Qr::factor(&a).unwrap().solve(&[1.0, 3.0, 5.0]).unwrap();
        assert_close(x[0], 1.0, 1e-13);
        assert_close(x[1], 2.0, 1e-13);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        let a = Matrix::from_rows(3, 1, &[1.0, 1.0, 1.0]).unwrap();
        let x = Qr::factor(&a).unwrap().solve(&[1.0, 2.0, 6.0]).unwrap();
        assert_close(x[0], 3.0, 1e-13); // mean minimizes SSE
    }

    #[test]
    fn rank_detects_deficiency() {
        // Third column = first + second.
        let a =
            Matrix::from_rows(4, 3, &[1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 1.0, 3.0])
                .unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert_eq!(qr.rank(1e-10), 2);
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(Qr::factor(&a).is_err());
    }

    #[test]
    fn empty_and_nonfinite_rejected() {
        assert!(Qr::factor(&Matrix::zeros(0, 0)).is_err());
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::INFINITY;
        assert!(Qr::factor(&a).is_err());
    }

    #[test]
    fn single_column() {
        let a = Matrix::from_rows(3, 1, &[3.0, 0.0, 4.0]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert_close(qr.r()[(0, 0)].abs(), 5.0, 1e-13);
        let q = qr.q_thin();
        assert_close(crate::vector::norm2(q.col(0)), 1.0, 1e-13);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(1, 1, &[4.0]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        let x = qr.solve(&[8.0]).unwrap();
        assert_close(x[0], 2.0, 1e-14);
    }
}
