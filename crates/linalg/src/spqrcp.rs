//! Specialized column-pivoted QR — Algorithm 2 of the paper.
//!
//! The pivot rule is inverted relative to classical QRCP: instead of the
//! largest-norm column, each step selects the column whose (noise-rounded)
//! entries are *closest to an expectation pattern* — few ones, many zeros.
//!
//! Per the paper:
//!
//! * every value `u` is quantized to the nearest multiple of the noise
//!   tolerance `α`: `R(u) = α · ⌊u/α + 0.5⌋`;
//! * each quantized magnitude `v` contributes to the column score
//!   `Sc(v) = v` if `v ≥ 1`, `1/v` if `0 < v < 1`, and `0` if `v = 0`;
//! * the pivot is the candidate with the **minimum** total score, ties
//!   broken by the smallest column norm;
//! * candidates with norm below `β = ‖(α, …, α)‖ = α·√m` are disregarded
//!   (they are noise around the zero vector); when every remaining candidate
//!   falls below `β` the factorization terminates.
//!
//! Scores are evaluated on the **original** (α-quantized) columns — "the
//! rounding and scoring formulas on the matrix X" — so an event's affinity
//! to the expectation patterns is judged by what it actually measures, not
//! by the shape of its projection after earlier eliminations (projections
//! of scaled aggregates can masquerade as clean unit patterns). Linear
//! independence is enforced separately: the `β` floor is applied to the
//! *residual* norm of each candidate (rows `i..m` of the Householder-
//! transformed matrix), so columns dependent on already-chosen ones are
//! screened out, and residual norms break score ties.
//!
//! The worked example in the paper's §V reads `(1.002, 0.001, 90.5, 1.5) →
//! 1 + 0 + 1/0.5 + 1.5 = 4.5`, which is only consistent when the third
//! element is `0.5`; we follow the formulas (and pin the corrected example
//! in a test).

use crate::error::{LinalgError, Result};
use crate::householder::Reflector;
use crate::matrix::Matrix;
use crate::vector;

/// Tuning parameters for the specialized factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpQrcpParams {
    /// Noise tolerance `α`; entries are quantized to multiples of `α`.
    /// The paper uses `5e-4` for FLOPs/branch events and `5e-2` for the
    /// noisier cache events.
    pub alpha: f64,
}

impl SpQrcpParams {
    /// Parameters with the given `α`.
    pub fn new(alpha: f64) -> Self {
        Self { alpha }
    }

    /// The norm floor `β = α·√m` for vectors of length `m`.
    pub fn beta(&self, m: usize) -> f64 {
        self.alpha * (m as f64).sqrt()
    }
}

impl Default for SpQrcpParams {
    /// The paper's default `α = 5e-4`.
    fn default() -> Self {
        Self { alpha: 5e-4 }
    }
}

/// Quantizes `u` to the nearest multiple of `alpha`: `R(u) = α·⌊u/α + 0.5⌋`.
///
/// With `alpha == 0` the value is returned unchanged (no noise tolerance).
#[inline]
pub fn round_to_tolerance(u: f64, alpha: f64) -> f64 {
    // lint: allow(float_cmp): alpha = 0 disables quantization exactly
    if alpha == 0.0 {
        return u;
    }
    alpha * (u / alpha + 0.5).floor()
}

/// Scores one quantized magnitude: `Sc(v)`.
#[inline]
pub fn score_value(v: f64) -> f64 {
    let v = v.abs();
    // lint: allow(float_cmp): exact-zero guard before the signum
    if v == 0.0 {
        0.0
    } else if v < 1.0 {
        1.0 / v
    } else {
        v
    }
}

/// Scores a column: sum of `Sc` over its `α`-quantized entries.
pub fn score_column(col: &[f64], alpha: f64) -> f64 {
    col.iter().map(|&u| score_value(round_to_tolerance(u, alpha))).sum()
}

/// One accepted pivot step, for diagnostics and reporting.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead_api): trace row in SpQrcpResult's public fields
pub struct PivotStep {
    /// Original column index chosen at this step.
    pub column: usize,
    /// Its score at selection time (on the quantized residual).
    pub score: f64,
    /// Its residual norm at selection time.
    pub residual_norm: f64,
}

/// Result of the specialized column-pivoted QR.
#[derive(Debug, Clone)]
// lint: allow(dead_api): re-exported result type of specialized_qrcp; fields are the caller's read surface
pub struct SpQrcpResult {
    /// Column permutation (`permutation[k]` = original index at position `k`).
    pub permutation: Vec<usize>,
    /// Number of accepted pivots (the numerical rank under the β floor).
    pub rank: usize,
    /// Per-step diagnostics for the accepted pivots.
    pub steps: Vec<PivotStep>,
    /// Upper-trapezoidal factor of the permuted matrix (`min(m,n) x n`).
    pub r: Matrix,
}

impl SpQrcpResult {
    /// Original indices of the selected columns, in pivot order.
    pub fn selected(&self) -> &[usize] {
        &self.permutation[..self.rank]
    }
}

/// Runs Algorithm 2 on `a` with noise tolerance `params.alpha`.
///
/// Wide matrices are accepted (the rank is bounded by `min(m, n)`); the
/// selected columns of the *original* matrix therefore always form a square
/// or overdetermined full-rank block, as §V requires.
///
/// ```
/// use catalyze_linalg::{specialized_qrcp, Matrix, SpQrcpParams};
///
/// // Column 0 is cycles-like (huge norm); column 1 is a clean 0/1
/// // expectation pattern; column 2 duplicates column 1 up to noise.
/// let x = Matrix::from_columns(&[
///     vec![950.0, 2100.0, 1400.0],
///     vec![1.0, 0.0, 1.0],
///     vec![0.99, 0.01, 1.01],
/// ]).unwrap();
/// let result = specialized_qrcp(&x, SpQrcpParams::new(5e-2)).unwrap();
/// // The clean pattern is ranked first and its noisy duplicate is
/// // rejected as dependent — the opposite of classical max-norm pivoting.
/// assert_eq!(result.selected()[0], 1);
/// assert!(!result.selected().contains(&2));
/// ```
pub fn specialized_qrcp(a: &Matrix, params: SpQrcpParams) -> Result<SpQrcpResult> {
    let _timer = crate::stats::time(crate::stats::Kernel::SpQrcp);
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty { context: "specialized_qrcp" });
    }
    if !a.all_finite() {
        return Err(LinalgError::NonFinite { context: "specialized_qrcp" });
    }
    if !(params.alpha.is_finite() && params.alpha >= 0.0) {
        return Err(LinalgError::NonFinite { context: "specialized_qrcp (alpha)" });
    }
    let beta = params.beta(m);
    let mut work = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut steps = Vec::new();

    for i in 0..m.min(n) {
        let Some((pivot, score, norm)) = get_pivot(a, &work, &perm, i, params.alpha, beta) else {
            break; // pivot == -1 in the paper: all candidates below β
        };
        work.swap_cols(i, pivot);
        perm.swap(i, pivot);
        steps.push(PivotStep { column: perm[i], score, residual_norm: norm });
        let h = Reflector::compute(&work.col(i)[i..]);
        work.col_mut(i)[i] = h.beta;
        for v in work.col_mut(i)[i + 1..].iter_mut() {
            *v = 0.0;
        }
        h.apply_left(&mut work, i, i + 1);
    }

    let rank = steps.len();
    let trap = work.submatrix(0, m.min(n), 0, n);
    Ok(SpQrcpResult { permutation: perm, rank, steps, r: trap })
}

/// The paper's `get_pivot`: minimum-score candidate (scored on its original
/// α-quantized column) among trailing columns whose residual norm clears
/// `beta`; ties broken by the smallest residual norm.
///
/// Scores and norms of distinct candidates can coincide exactly in theory
/// (e.g. two events measuring the same concept) while differing by rounding
/// error after the Householder updates, so both comparisons use a relative
/// tolerance; exact ties fall back to the smallest *original* column index,
/// which keeps the factorization deterministic and independent of swap
/// history.
fn get_pivot(
    original: &Matrix,
    work: &Matrix,
    perm: &[usize],
    i: usize,
    alpha: f64,
    beta: f64,
) -> Option<(usize, f64, f64)> {
    let n = work.cols();
    let mut best: Option<(usize, f64, f64)> = None;
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    for j in i..n {
        // lint: allow(reachable_panic): i < rows by the factorization loop bounds
        let residual = &work.col(j)[i..];
        let norm = vector::norm2(residual);
        if norm < beta {
            continue;
        }
        let score = score_column(original.col(perm[j]), alpha);
        let better = match best {
            None => true,
            Some((bj, bscore, bnorm)) => {
                if !close(score, bscore) {
                    score < bscore
                } else if !close(norm, bnorm) {
                    norm < bnorm
                } else {
                    perm[j] < perm[bj]
                }
            }
        };
        if better {
            best = Some((j, score, norm));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_matches_paper_examples() {
        let a = 0.01;
        assert_eq!(round_to_tolerance(1.002, a), 1.0);
        assert_eq!(round_to_tolerance(0.001, a), 0.0);
        assert_eq!(round_to_tolerance(0.5, a), 0.5);
        assert_eq!(round_to_tolerance(1.5, a), 1.5);
        assert_eq!(round_to_tolerance(90.5, a), 90.5);
    }

    #[test]
    fn rounding_with_zero_alpha_is_identity() {
        assert_eq!(round_to_tolerance(1.2345, 0.0), 1.2345);
    }

    #[test]
    fn score_value_branches() {
        assert_eq!(score_value(0.0), 0.0);
        assert_eq!(score_value(0.5), 2.0);
        assert_eq!(score_value(-0.5), 2.0);
        assert_eq!(score_value(1.0), 1.0);
        assert_eq!(score_value(90.5), 90.5);
        assert_eq!(score_value(-2.0), 2.0);
    }

    #[test]
    fn paper_worked_example_corrected() {
        // §V example with the third element read as 0.5 (see module docs):
        // score(1.002, 0.001, 0.5, 1.5) = 1 + 0 + 1/0.5 + 1.5 = 4.5 at α=0.01.
        let s = score_column(&[1.002, 0.001, 0.5, 1.5], 0.01);
        assert!((s - 4.5).abs() < 1e-12, "score was {s}");
    }

    #[test]
    fn prefers_expectation_like_columns_over_large_norm() {
        // Column 0: cycles-like, huge norm. Column 1: clean 0/1 pattern.
        // Classical QRCP would pick column 0 first; Algorithm 2 must pick 1.
        let a =
            Matrix::from_columns(&[vec![1000.0, 2000.0, 1500.0, 900.0], vec![1.0, 0.0, 1.0, 0.0]])
                .unwrap();
        let res = specialized_qrcp(&a, SpQrcpParams::new(1e-3)).unwrap();
        assert_eq!(res.permutation[0], 1);
        assert_eq!(res.steps[0].column, 1);
    }

    #[test]
    fn near_zero_columns_never_pivot() {
        let a = Matrix::from_columns(&[vec![1e-6, -1e-6, 1e-6], vec![1.0, 1.0, 0.0]]).unwrap();
        let res = specialized_qrcp(&a, SpQrcpParams::new(1e-3)).unwrap();
        assert_eq!(res.rank, 1);
        assert_eq!(res.selected(), &[1]);
    }

    #[test]
    fn all_below_beta_terminates_with_rank_zero() {
        let a = Matrix::filled(3, 2, 1e-9);
        let res = specialized_qrcp(&a, SpQrcpParams::new(1e-3)).unwrap();
        assert_eq!(res.rank, 0);
        assert!(res.steps.is_empty());
    }

    #[test]
    fn dependent_columns_screened_by_residual() {
        // col2 = col0 + col1: after two pivots its residual is ~0 < β.
        let a =
            Matrix::from_columns(&[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0], vec![1.0, 1.0, 0.0]])
                .unwrap();
        let res = specialized_qrcp(&a, SpQrcpParams::new(1e-3)).unwrap();
        assert_eq!(res.rank, 2);
        let mut sel = res.selected().to_vec();
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1]);
    }

    #[test]
    fn noisy_duplicate_is_deduplicated() {
        // (1,1) vs (0.99, 1.01): semantically the same vector under α=0.05.
        let a = Matrix::from_columns(&[vec![1.0, 1.0], vec![0.99, 1.01]]).unwrap();
        let res = specialized_qrcp(&a, SpQrcpParams::new(5e-2)).unwrap();
        assert_eq!(res.rank, 1, "noise-level difference must not create rank");
    }

    #[test]
    fn exact_duplicate_without_tolerance_still_rank_one() {
        let a = Matrix::from_columns(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let res = specialized_qrcp(&a, SpQrcpParams::new(1e-6)).unwrap();
        assert_eq!(res.rank, 1);
    }

    #[test]
    fn tie_broken_by_smallest_norm() {
        // Both columns are clean unit patterns with score 1; the smaller
        // norm (single 1) must win against (0,...,0,2) whose score is 2 --
        // so craft a true tie: two unit basis vectors, identical score 1 and
        // identical norm 1; first candidate wins. Then check a genuine
        // norm tie-break: score-1 column with norm 1 vs score-1 with norm 1.
        let a = Matrix::from_columns(&[vec![0.0, 1.0, 0.0], vec![1.0, 0.0, 0.0]]).unwrap();
        let res = specialized_qrcp(&a, SpQrcpParams::new(1e-3)).unwrap();
        assert_eq!(res.rank, 2);
        // Equal score and equal norm: first candidate (column 0) is kept.
        assert_eq!(res.permutation[0], 0);

        // Norm tie-break proper: score ties at 2.0 for both, norms differ.
        let b = Matrix::from_columns(&[
            vec![1.0, 1.0, 0.0], // score 2, norm sqrt(2)
            vec![2.0, 0.0, 0.0], // score 2, norm 2 > sqrt(2)
        ])
        .unwrap();
        let res = specialized_qrcp(&b, SpQrcpParams::new(1e-3)).unwrap();
        assert_eq!(res.permutation[0], 0, "smaller norm must break the score tie");
    }

    #[test]
    fn wide_matrix_selects_at_most_m_columns() {
        let a =
            Matrix::from_rows(2, 5, &[1.0, 0.0, 1.0, 2.0, 0.5, 0.0, 1.0, 1.0, 2.0, 0.5]).unwrap();
        let res = specialized_qrcp(&a, SpQrcpParams::new(1e-4)).unwrap();
        assert!(res.rank <= 2);
        assert_eq!(res.rank, 2);
    }

    #[test]
    fn selected_block_is_full_rank() {
        let a = Matrix::from_columns(&[
            vec![1.0, 0.0, 1.0, 0.0],
            vec![0.0, 1.0, 0.0, 1.0],
            vec![1.0, 1.0, 1.0, 1.0],
            vec![0.5, 0.5, 0.5, 0.5],
        ])
        .unwrap();
        let res = specialized_qrcp(&a, SpQrcpParams::new(1e-3)).unwrap();
        let sel = a.select_columns(res.selected()).unwrap();
        let qr = crate::qr::Qr::factor(&sel).unwrap();
        assert_eq!(qr.rank(1e-10), res.rank);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(specialized_qrcp(&Matrix::zeros(0, 1), SpQrcpParams::default()).is_err());
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(specialized_qrcp(&a, SpQrcpParams::default()).is_err());
        let a = Matrix::identity(2);
        assert!(specialized_qrcp(&a, SpQrcpParams::new(f64::NAN)).is_err());
        assert!(specialized_qrcp(&a, SpQrcpParams::new(-1.0)).is_err());
    }

    #[test]
    fn beta_definition() {
        let p = SpQrcpParams::new(0.5);
        assert!((p.beta(4) - 1.0).abs() < 1e-15);
    }
}
