//! Error type shared by all linear-algebra routines.

use std::fmt;

/// Result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors produced by the dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand dimensions are incompatible.
    ShapeMismatch {
        /// Shape the operation required.
        expected: (usize, usize),
        /// Shape it received.
        got: (usize, usize),
        /// Operation name, for diagnostics.
        context: &'static str,
    },
    /// An index exceeded the container length.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Container length.
        len: usize,
        /// Operation name.
        context: &'static str,
    },
    /// An operation received an empty operand it cannot handle.
    Empty {
        /// Operation name.
        context: &'static str,
    },
    /// The matrix is (numerically) singular where an invertible one was
    /// required, e.g. a zero pivot in a triangular solve.
    Singular {
        /// Index of the offending pivot/diagonal entry.
        pivot: usize,
        /// Operation name.
        context: &'static str,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Operation name.
        context: &'static str,
    },
    /// A non-finite value (NaN or infinity) was encountered in the input.
    NonFinite {
        /// Operation name.
        context: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, got, context } => write!(
                f,
                "{context}: shape mismatch (expected {}x{}, got {}x{})",
                expected.0, expected.1, got.0, got.1
            ),
            LinalgError::IndexOutOfBounds { index, len, context } => {
                write!(f, "{context}: index {index} out of bounds for length {len}")
            }
            LinalgError::Empty { context } => write!(f, "{context}: empty input"),
            LinalgError::Singular { pivot, context } => {
                write!(f, "{context}: singular matrix (zero pivot at {pivot})")
            }
            LinalgError::NoConvergence { iterations, context } => {
                write!(f, "{context}: no convergence after {iterations} iterations")
            }
            LinalgError::NonFinite { context } => {
                write!(f, "{context}: non-finite value in input")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::ShapeMismatch { expected: (2, 3), got: (3, 2), context: "op" };
        assert_eq!(e.to_string(), "op: shape mismatch (expected 2x3, got 3x2)");
        let e = LinalgError::Singular { pivot: 4, context: "solve" };
        assert!(e.to_string().contains("pivot at 4"));
        let e = LinalgError::NoConvergence { iterations: 30, context: "svd" };
        assert!(e.to_string().contains("30 iterations"));
        let e = LinalgError::NonFinite { context: "qr" };
        assert!(e.to_string().contains("non-finite"));
        let e = LinalgError::Empty { context: "x" };
        assert!(e.to_string().contains("empty"));
        let e = LinalgError::IndexOutOfBounds { index: 9, len: 3, context: "sel" };
        assert!(e.to_string().contains("9"));
    }
}
