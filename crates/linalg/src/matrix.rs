//! Dense, column-major matrix type.
//!
//! The analysis pipeline works with tall-skinny matrices whose columns are
//! event measurement vectors or expectation-basis representations, so the
//! storage layout is column-major: column operations (swaps, norms, pivots)
//! touch contiguous memory.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::error::{LinalgError, Result};
use crate::vector;

/// A dense `rows x cols` matrix of `f64`, stored column-major.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    /// Column-major storage: element `(i, j)` lives at `data[j * rows + i]`.
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from column-major storage.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (rows, cols),
                got: (data.len(), 1),
                context: "Matrix::from_col_major",
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from row-major storage (convenient for literals).
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (rows, cols),
                got: (data.len(), 1),
                context: "Matrix::from_rows",
            });
        }
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                // lint: allow(reachable_panic): data.len() == rows * cols is checked above
                m[(i, j)] = data[i * cols + j];
            }
        }
        Ok(m)
    }

    /// Builds a matrix whose columns are the given vectors.
    ///
    /// All columns must share the same length; an empty column set yields a
    /// `rows x 0` matrix only when a row count cannot be inferred, so it is
    /// rejected as ambiguous.
    pub fn from_columns(columns: &[Vec<f64>]) -> Result<Self> {
        let Some(first) = columns.first() else {
            return Err(LinalgError::Empty { context: "Matrix::from_columns" });
        };
        let rows = first.len();
        let mut m = Self::zeros(rows, columns.len());
        for (j, col) in columns.iter().enumerate() {
            if col.len() != rows {
                return Err(LinalgError::ShapeMismatch {
                    expected: (rows, 1),
                    got: (col.len(), 1),
                    context: "Matrix::from_columns",
                });
            }
            m.col_mut(j).copy_from_slice(col);
        }
        Ok(m)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when either dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Borrows column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        // lint: allow(reachable_panic): documented contract: j < cols, the slice op bounds-checks
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrows column `j` as a contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        // lint: allow(reachable_panic): documented contract: j < cols, the slice op bounds-checks
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copies row `i` into a new vector.
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.cols).map(|j| self[(i, j)]).collect()
    }

    /// Swaps columns `a` and `b`.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (left, right) = self.data.split_at_mut(hi * self.rows);
        left[lo * self.rows..(lo + 1) * self.rows].swap_with_slice(&mut right[..self.rows]);
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, 1),
                got: (x.len(), 1),
                context: "Matrix::matvec",
            });
        }
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            // lint: allow(float_cmp): skipping exactly-zero multipliers is an exact optimization
            if xj == 0.0 {
                continue;
            }
            for (yi, &aij) in y.iter_mut().zip(self.col(j)) {
                *yi += aij * xj;
            }
        }
        Ok(y)
    }

    /// Transposed matrix-vector product `self^T * x`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, 1),
                got: (x.len(), 1),
                context: "Matrix::matvec_t",
            });
        }
        Ok((0..self.cols).map(|j| vector::dot(self.col(j), x)).collect())
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// Column-parallel: output columns are independent, so large products
    /// are computed across the rayon pool; small ones stay sequential to
    /// avoid fork/join overhead.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, self.cols),
                got: (other.rows, other.cols),
                context: "Matrix::matmul",
            });
        }
        let mut c = Matrix::zeros(self.rows, other.cols);
        let work = self.rows as u64 * self.cols as u64 * other.cols as u64;
        // jik loop order: stream through contiguous columns of `self` and `c`.
        let column_product = |j: usize, ccol: &mut [f64]| {
            let bcol = other.col(j);
            for (k, &bkj) in bcol.iter().enumerate() {
                // lint: allow(float_cmp): skipping exactly-zero multipliers is an exact optimization
                if bkj == 0.0 {
                    continue;
                }
                let acol = self.col(k);
                for (ci, &aik) in ccol.iter_mut().zip(acol) {
                    *ci += aik * bkj;
                }
            }
        };
        if work < 1 << 20 {
            for j in 0..other.cols {
                column_product(j, c.col_mut(j));
            }
        } else {
            use rayon::prelude::*;
            c.data
                .par_chunks_mut(self.rows)
                .enumerate()
                .for_each(|(j, ccol)| column_product(j, ccol));
        }
        Ok(c)
    }

    /// Gram matrix `self^T * self` (symmetric `cols x cols`).
    ///
    /// Column-parallel above the same `1 << 20` work threshold
    /// (`rows · cols²`) as [`Matrix::matmul`]: the upper-triangle entries of
    /// output column `j` depend only on input columns `0..=j`, so columns
    /// fill independently; the lower triangle is mirrored afterwards. Both
    /// paths compute each dot product identically, so the result does not
    /// depend on which path ran.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        let work = self.rows as u64 * n as u64 * n as u64;
        if work < 1 << 20 {
            for j in 0..n {
                for i in 0..=j {
                    let v = vector::dot(self.col(i), self.col(j));
                    g[(i, j)] = v;
                    g[(j, i)] = v;
                }
            }
        } else {
            use rayon::prelude::*;
            g.data.par_chunks_mut(n).enumerate().for_each(|(j, gcol)| {
                let cj = self.col(j);
                for (i, slot) in gcol.iter_mut().take(j + 1).enumerate() {
                    *slot = vector::dot(self.col(i), cj);
                }
            });
            for j in 0..n {
                for i in 0..j {
                    g[(j, i)] = g[(i, j)];
                }
            }
        }
        g
    }

    /// Extracts the sub-matrix made of the listed columns, in order.
    pub fn select_columns(&self, indices: &[usize]) -> Result<Matrix> {
        let mut m = Matrix::zeros(self.rows, indices.len());
        for (dst, &src) in indices.iter().enumerate() {
            if src >= self.cols {
                return Err(LinalgError::IndexOutOfBounds {
                    index: src,
                    len: self.cols,
                    context: "Matrix::select_columns",
                });
            }
            m.col_mut(dst).copy_from_slice(self.col(src));
        }
        Ok(m)
    }

    /// Extracts rows `r0..r1` and columns `c0..c1` as a new matrix.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        let rr = r1.saturating_sub(r0);
        let cc = c1.saturating_sub(c0);
        let mut m = Matrix::zeros(rr, cc);
        for j in 0..cc {
            for i in 0..rr {
                // lint: allow(reachable_panic): submatrix asserts the window fits before copying
                m[(i, j)] = self[(r0 + i, c0 + j)];
            }
        }
        m
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vector::norm2(&self.data)
    }

    /// Largest absolute entry (max norm); zero for empty matrices.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Element-wise maximum absolute difference against `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                expected: self.shape(),
                got: other.shape(),
                context: "Matrix::max_abs_diff",
            });
        }
        Ok(self.data.iter().zip(&other.data).fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs())))
    }

    /// Scales every entry in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Applies a function to every entry in place.
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Raw column-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw column-major storage (crate-internal: column-parallel
    /// kernels split it into per-column chunks).
    pub(crate) fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// True when every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[j * self.rows + i]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[j * self.rows + i]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(12) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if self.cols > 12 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 12 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "Matrix add: shape mismatch");
        let mut out = self.clone();
        for (o, &r) in out.data.iter_mut().zip(&rhs.data) {
            *o += r;
        }
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "Matrix sub: shape mismatch");
        let mut out = self.clone();
        for (o, &r) in out.data.iter_mut().zip(&rhs.data) {
            *o -= r;
        }
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_in_place(s);
        out
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self * -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn from_rows_and_index() {
        let m = sample();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 1)], 5.0);
        assert_eq!(m.shape(), (2, 3));
    }

    #[test]
    fn from_rows_rejects_bad_length() {
        assert!(Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn col_is_contiguous() {
        let m = sample();
        assert_eq!(m.col(1), &[2.0, 5.0]);
    }

    #[test]
    fn row_copies() {
        let m = sample();
        assert_eq!(m.row(1), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_columns_roundtrip() {
        let m = Matrix::from_columns(&[vec![1.0, 4.0], vec![2.0, 5.0], vec![3.0, 6.0]]).unwrap();
        assert_eq!(m, sample());
    }

    #[test]
    fn from_columns_rejects_ragged() {
        assert!(Matrix::from_columns(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_columns(&[]).is_err());
    }

    #[test]
    fn swap_cols_both_orders() {
        let mut m = sample();
        m.swap_cols(0, 2);
        assert_eq!(m.col(0), &[3.0, 6.0]);
        assert_eq!(m.col(2), &[1.0, 4.0]);
        m.swap_cols(2, 0); // reverse order, back to original
        assert_eq!(m, sample());
        m.swap_cols(1, 1); // self-swap is a no-op
        assert_eq!(m, sample());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], m[(1, 2)]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = sample();
        let y = m.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![6.0, 15.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let m = sample();
        let a = m.matvec_t(&[1.0, 2.0]).unwrap();
        let b = m.transpose().matvec(&[1.0, 2.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3).unwrap(), m);
        let i2 = Matrix::identity(2);
        assert_eq!(i2.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_hand_example() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(2, 2, &[19.0, 22.0, 43.0, 50.0]).unwrap());
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn gram_is_symmetric_and_correct() {
        let m = sample();
        let g = m.gram();
        assert_eq!(g.shape(), (3, 3));
        assert_eq!(g[(0, 0)], 1.0 + 16.0);
        assert_eq!(g[(0, 1)], g[(1, 0)]);
        assert_eq!(g[(0, 1)], 1.0 * 2.0 + 4.0 * 5.0);
    }

    #[test]
    fn gram_parallel_path_matches_sequential() {
        // 64 rows x 128 cols puts rows·cols² exactly at the 1 << 20 work
        // threshold, so this gram runs column-parallel; check it against
        // the sequential arithmetic dot by dot.
        let rows = 64;
        let cols = 128;
        let mut m = Matrix::zeros(rows, cols);
        let mut seed = 0x9e3779b97f4a7c15_u64;
        for v in m.as_mut_slice().iter_mut() {
            // splitmix64, mapped into [-1, 1).
            seed = seed.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            *v = (z >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0;
        }
        let g = m.gram();
        for j in 0..cols {
            for i in 0..cols {
                let want = vector::dot(m.col(i), m.col(j));
                assert_eq!(g[(i, j)], want, "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn select_columns_picks_in_order() {
        let m = sample();
        let s = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(s.col(0), &[3.0, 6.0]);
        assert_eq!(s.col(1), &[1.0, 4.0]);
        assert!(m.select_columns(&[5]).is_err());
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = sample();
        let s = m.submatrix(0, 2, 1, 3);
        assert_eq!(s, Matrix::from_rows(2, 2, &[2.0, 3.0, 5.0, 6.0]).unwrap());
    }

    #[test]
    fn frobenius_norm_value() {
        let m = Matrix::from_rows(2, 1, &[3.0, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_ops() {
        let m = sample();
        let sum = &m + &m;
        assert_eq!(sum[(1, 2)], 12.0);
        let diff = &sum - &m;
        assert_eq!(diff, m);
        let scaled = &m * 2.0;
        assert_eq!(scaled, sum);
        let negated = -&m;
        assert_eq!(negated[(0, 0)], -1.0);
    }

    #[test]
    fn max_abs_and_diff() {
        let m = sample();
        assert_eq!(m.max_abs(), 6.0);
        let n = &m * 1.5;
        assert!((m.max_abs_diff(&n).unwrap() - 3.0).abs() < 1e-15);
        assert!(m.max_abs_diff(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = sample();
        assert!(m.all_finite());
        m[(0, 0)] = f64::NAN;
        assert!(!m.all_finite());
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parallel_and_sequential_paths_agree() {
        // 128x128x128 = 2^21 work units: takes the parallel path; compare
        // against per-element dot products.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 128;
        let a =
            Matrix::from_col_major(n, n, (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .unwrap();
        let b =
            Matrix::from_col_major(n, n, (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .unwrap();
        let c = a.matmul(&b).unwrap();
        for &(i, j) in &[(0usize, 0usize), (17, 93), (127, 127), (64, 1)] {
            let expect: f64 = (0..n).map(|k| a[(i, k)] * b[(k, j)]).sum();
            assert!((c[(i, j)] - expect).abs() < 1e-10, "({i},{j})");
        }
    }
}
