//! Property-based tests for the dense linear-algebra kernels.

use catalyze_linalg::spqrcp::{round_to_tolerance, score_column, score_value};
use catalyze_linalg::{
    lstsq, qrcp, singular_values, specialized_qrcp, FactoredLstsq, LinalgError, LstsqSolution,
    Matrix, Qr, SpQrcpParams,
};
use proptest::prelude::*;

/// Strategy: a well-scaled `rows x cols` matrix as row-major data.
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-100.0..100.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_rows(rows, cols, &data).unwrap())
}

/// Strategy: a tall matrix with shape chosen from small ranges.
fn tall_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..8, 1usize..5).prop_flat_map(|(m, extra)| {
        let n = (m - 1).min(extra); // ensure n < m, n >= 1
        let n = n.max(1);
        matrix_strategy(m, n)
    })
}

/// Strategy: a tall matrix together with one conforming right-hand side.
fn tall_system() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    tall_matrix().prop_flat_map(|a| {
        let m = a.rows();
        proptest::collection::vec(-50.0..50.0f64, m).prop_map(move |b| (a.clone(), b))
    })
}

/// Strategy: a tall matrix together with a small batch of right-hand sides.
fn tall_batch() -> impl Strategy<Value = (Matrix, Vec<Vec<f64>>)> {
    tall_matrix().prop_flat_map(|a| {
        let m = a.rows();
        proptest::collection::vec(proptest::collection::vec(-50.0..50.0f64, m), 1..6)
            .prop_map(move |bs| (a.clone(), bs))
    })
}

/// Both solutions must agree to the bit, diagnostics included.
fn assert_solutions_identical(
    got: &LstsqSolution,
    want: &LstsqSolution,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.x.len(), want.x.len());
    for (g, w) in got.x.iter().zip(&want.x) {
        prop_assert_eq!(g.to_bits(), w.to_bits(), "x: {} vs {}", g, w);
    }
    prop_assert_eq!(got.residual_norm.to_bits(), want.residual_norm.to_bits());
    prop_assert_eq!(got.relative_residual.to_bits(), want.relative_residual.to_bits());
    prop_assert_eq!(got.backward_error.to_bits(), want.backward_error.to_bits());
    Ok(())
}

proptest! {
    #[test]
    fn factored_solve_is_bit_identical_to_one_shot(sys in tall_system()) {
        let (a, b) = sys;
        let factored = FactoredLstsq::factor(&a).unwrap();
        // Solve twice: the second call answers from the cached spectral
        // norm and must not drift either.
        for _ in 0..2 {
            match (lstsq(&a, &b), factored.solve(&b)) {
                (Ok(want), Ok(got)) => assert_solutions_identical(&got, &want)?,
                (Err(want), Err(got)) => prop_assert_eq!(got, want),
                (want, got) => prop_assert!(false, "diverged: {:?} vs {:?}", want, got),
            }
        }
    }

    #[test]
    fn solve_many_is_bit_identical_to_repeated_one_shots(sys in tall_batch()) {
        let (a, bs) = sys;
        let factored = FactoredLstsq::factor(&a).unwrap();
        let rhs: Vec<&[f64]> = bs.iter().map(|b| b.as_slice()).collect();
        match factored.solve_many(&rhs) {
            Ok(batch) => {
                prop_assert_eq!(batch.len(), bs.len());
                for (got, b) in batch.iter().zip(&bs) {
                    assert_solutions_identical(got, &lstsq(&a, b).unwrap())?;
                }
            }
            Err(e) => {
                // The batch may only fail if some one-shot solve fails the
                // same way.
                let first =
                    bs.iter().find_map(|b| lstsq(&a, b).err()).expect("a failing one-shot");
                prop_assert_eq!(e, first);
            }
        }
    }
}

#[test]
fn factored_error_paths_match_one_shot_variants() {
    let a = Matrix::from_rows(3, 2, &[1.0, 0.0, 1.0, 1.0, 1.0, 2.0]).unwrap();
    let factored = FactoredLstsq::factor(&a).unwrap();

    // Shape mismatch: same variant and payload on both paths.
    let short = [1.0, 2.0];
    assert_eq!(factored.solve(&short).unwrap_err(), lstsq(&a, &short).unwrap_err());
    assert!(matches!(factored.solve(&short).unwrap_err(), LinalgError::ShapeMismatch { .. }));

    // Non-finite right-hand side.
    let nan = [1.0, f64::NAN, 0.0];
    assert_eq!(factored.solve(&nan).unwrap_err(), lstsq(&a, &nan).unwrap_err());
    assert!(matches!(factored.solve(&nan).unwrap_err(), LinalgError::NonFinite { .. }));
    let inf = [f64::INFINITY, 0.0, 0.0];
    let good = [1.0, 1.0, 1.0];
    assert_eq!(factored.solve_many(&[&good, &inf]).unwrap_err(), lstsq(&a, &inf).unwrap_err());

    // Rank deficiency: an exactly-zero column hits an exactly-zero pivot in
    // the triangular solve of both paths.
    let singular = Matrix::from_columns(&[vec![1.0, 2.0, 3.0], vec![0.0, 0.0, 0.0]]).unwrap();
    let f = FactoredLstsq::factor(&singular).unwrap();
    assert_eq!(f.solve(&good).unwrap_err(), lstsq(&singular, &good).unwrap_err());
    assert!(matches!(f.solve(&good).unwrap_err(), LinalgError::Singular { .. }));
}

proptest! {
    #[test]
    fn qr_reconstructs(a in tall_matrix()) {
        let qr = Qr::factor(&a).unwrap();
        let recon = qr.q_thin().matmul(&qr.r()).unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!(recon.max_abs_diff(&a).unwrap() <= 1e-10 * scale);
    }

    #[test]
    fn qr_q_orthonormal(a in tall_matrix()) {
        let qr = Qr::factor(&a).unwrap();
        let q = qr.q_thin();
        let g = q.gram();
        prop_assert!(g.max_abs_diff(&Matrix::identity(q.cols())).unwrap() < 1e-10);
    }

    #[test]
    fn qr_solve_minimizes_residual(
        a in matrix_strategy(6, 3),
        b in proptest::collection::vec(-50.0..50.0f64, 6),
        perturb in proptest::collection::vec(-1.0..1.0f64, 3),
    ) {
        // Skip numerically rank-deficient draws.
        let svd = singular_values(&a).unwrap();
        prop_assume!(svd.rank(1e-8) == 3);
        let sol = lstsq(&a, &b).unwrap();
        // Any perturbation of the minimizer must not reduce the residual.
        let mut xp = sol.x.clone();
        for (x, p) in xp.iter_mut().zip(&perturb) {
            *x += p;
        }
        let rp: Vec<f64> = a.matvec(&xp).unwrap().iter().zip(&b).map(|(p, q)| p - q).collect();
        let rp_norm = catalyze_linalg::vector::norm2(&rp);
        prop_assert!(rp_norm + 1e-9 >= sol.residual_norm);
    }

    #[test]
    fn qrcp_permutation_is_a_permutation(a in matrix_strategy(5, 5)) {
        let res = qrcp(&a, 1e-10).unwrap();
        let mut p = res.permutation.clone();
        p.sort_unstable();
        prop_assert_eq!(p, (0..5).collect::<Vec<_>>());
        prop_assert!(res.rank <= 5);
    }

    #[test]
    fn qrcp_selected_columns_full_rank(a in matrix_strategy(6, 4)) {
        let res = qrcp(&a, 1e-8).unwrap();
        prop_assume!(res.rank > 0);
        let sel = a.select_columns(res.selected()).unwrap();
        let svd = singular_values(&sel).unwrap();
        prop_assert_eq!(svd.rank(1e-10), res.rank);
    }

    #[test]
    fn spqrcp_selected_columns_independent(a in matrix_strategy(6, 5)) {
        let res = specialized_qrcp(&a, SpQrcpParams::new(1e-6)).unwrap();
        prop_assume!(res.rank > 0);
        let sel = a.select_columns(res.selected()).unwrap();
        let svd = singular_values(&sel).unwrap();
        prop_assert_eq!(svd.rank(1e-9), res.rank);
    }

    #[test]
    fn spqrcp_respects_beta_floor(a in matrix_strategy(5, 4), alpha in 1e-6..1e-1f64) {
        let params = SpQrcpParams::new(alpha);
        let res = specialized_qrcp(&a, params).unwrap();
        for step in &res.steps {
            prop_assert!(step.residual_norm >= params.beta(5));
        }
    }

    #[test]
    fn spqrcp_rank_never_exceeds_qr_rank(a in matrix_strategy(5, 5)) {
        let res = specialized_qrcp(&a, SpQrcpParams::new(1e-9)).unwrap();
        let svd = singular_values(&a).unwrap();
        // The β floor only *removes* candidates, so the specialized rank is
        // at most the numerical rank (with a loose tolerance relation).
        prop_assert!(res.rank <= svd.rank(1e-14).max(res.rank.min(5)));
        prop_assert!(res.rank <= 5);
    }

    #[test]
    fn rounding_is_idempotent(u in -1000.0..1000.0f64, alpha in 1e-6..1.0f64) {
        let once = round_to_tolerance(u, alpha);
        let twice = round_to_tolerance(once, alpha);
        prop_assert!((once - twice).abs() <= alpha * 0.5 + 1e-12 * u.abs().max(1.0));
    }

    #[test]
    fn rounding_error_bounded(u in -1000.0..1000.0f64, alpha in 1e-6..1.0f64) {
        let r = round_to_tolerance(u, alpha);
        prop_assert!((r - u).abs() <= alpha * 0.5 + 1e-9);
    }

    #[test]
    fn score_is_nonnegative(v in -100.0..100.0f64) {
        prop_assert!(score_value(v) >= 0.0);
    }

    #[test]
    fn score_column_monotone_in_support(
        col in proptest::collection::vec(0.5..10.0f64, 1..8),
    ) {
        // Zeroing an entry can only lower the score.
        let full = score_column(&col, 1e-6);
        let mut reduced = col.clone();
        reduced[0] = 0.0;
        let less = score_column(&reduced, 1e-6);
        prop_assert!(less <= full);
    }

    #[test]
    fn svd_invariant_under_transpose(a in matrix_strategy(4, 3)) {
        let s1 = singular_values(&a).unwrap().singular_values;
        let s2 = singular_values(&a.transpose()).unwrap().singular_values;
        for (x, y) in s1.iter().zip(&s2) {
            prop_assert!((x - y).abs() < 1e-8 * x.max(1.0));
        }
    }

    #[test]
    fn spectral_norm_bounds_matvec(a in matrix_strategy(4, 4), x in proptest::collection::vec(-10.0..10.0f64, 4)) {
        let s = catalyze_linalg::spectral_norm(&a).unwrap();
        let ax = a.matvec(&x).unwrap();
        let lhs = catalyze_linalg::vector::norm2(&ax);
        let rhs = s * catalyze_linalg::vector::norm2(&x);
        prop_assert!(lhs <= rhs + 1e-8 * rhs.max(1.0));
    }

    #[test]
    fn matmul_associates_with_vector(a in matrix_strategy(3, 3), b in matrix_strategy(3, 3), x in proptest::collection::vec(-10.0..10.0f64, 3)) {
        let ab = a.matmul(&b).unwrap();
        let y1 = ab.matvec(&x).unwrap();
        let y2 = a.matvec(&b.matvec(&x).unwrap()).unwrap();
        for (p, q) in y1.iter().zip(&y2) {
            prop_assert!((p - q).abs() < 1e-7 * p.abs().max(1.0));
        }
    }

    #[test]
    fn transpose_matvec_adjoint(a in matrix_strategy(4, 3), x in proptest::collection::vec(-10.0..10.0f64, 3), y in proptest::collection::vec(-10.0..10.0f64, 4)) {
        // <Ax, y> == <x, A^T y>
        let ax = a.matvec(&x).unwrap();
        let aty = a.matvec_t(&y).unwrap();
        let lhs = catalyze_linalg::vector::dot(&ax, &y);
        let rhs = catalyze_linalg::vector::dot(&x, &aty);
        prop_assert!((lhs - rhs).abs() < 1e-7 * lhs.abs().max(1.0));
    }
}
