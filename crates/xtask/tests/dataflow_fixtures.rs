//! Integration tests for the determinism dataflow rules (R012–R015): the
//! injected `fixtures/dataflow/` corpus with exact rule/line/column
//! assertions, witness-chain checks, contract hygiene findings, and the
//! SARIF `deprecatedIds` aliasing of the retired R006 onto R013.

use std::path::{Path, PathBuf};
use xtask::graph::WorkspaceFile;
use xtask::rules::layering::LayeringPolicy;
use xtask::FileRole;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf()
}

fn repo_policy() -> LayeringPolicy {
    let text = std::fs::read_to_string(repo_root().join("crates/xtask/layering.lint"))
        .expect("read crates/xtask/layering.lint");
    LayeringPolicy::parse(&text).expect("the shipped layering policy must parse")
}

/// Rehomes a `fixtures/dataflow/` file at a synthetic crate path so the
/// workspace engine sees a real layout.
fn injected(fixture_name: &str, rel_as: &str) -> WorkspaceFile {
    WorkspaceFile {
        rel: rel_as.into(),
        src: fixture(&format!("dataflow/{fixture_name}")),
        role: xtask::role_of(rel_as),
    }
}

fn corpus() -> Vec<WorkspaceFile> {
    vec![
        injected("par_float_sum.rs", "crates/core/src/par_float_sum.rs"),
        injected("hash_accumulator.rs", "crates/core/src/hash_accumulator.rs"),
        injected("relaxed_result.rs", "crates/core/src/relaxed_result.rs"),
        injected("rng_clock.rs", "crates/core/src/rng_clock.rs"),
    ]
}

#[test]
fn dataflow_corpus_fires_every_rule_with_exact_spans() {
    let report = xtask::lint_workspace(&corpus(), &[], &repo_policy());
    let got: Vec<(String, String, usize, usize)> = report
        .diagnostics
        .iter()
        .map(|d| {
            let span = d.span.expect("dataflow findings carry spans");
            (d.rule.clone(), d.location.clone(), span.line, span.column)
        })
        .collect();
    // One finding per seeded defect; the sorted/seeded/integer/acquire
    // controls contribute nothing. The report is sorted by (path, span).
    assert_eq!(
        got,
        vec![
            ("R013".into(), "crates/core/src/hash_accumulator.rs:10:20".into(), 10, 20),
            ("R013".into(), "crates/core/src/hash_accumulator.rs:18:14".into(), 18, 14),
            ("R012".into(), "crates/core/src/par_float_sum.rs:12:48".into(), 12, 48),
            ("R014".into(), "crates/core/src/relaxed_result.rs:17:21".into(), 17, 21),
            ("R015".into(), "crates/core/src/rng_clock.rs:6:25".into(), 6, 25),
            ("R015".into(), "crates/core/src/rng_clock.rs:12:26".into(), 12, 26),
        ],
        "full report:\n{}",
        report.render_human()
    );

    // Result-sink findings carry the witness chain from the contract
    // entry point down to the offending function; the rendering form of
    // R013 keeps the old R006 message verbatim.
    let r013_result = &report.diagnostics[0];
    assert!(
        r013_result.message.contains("within deterministic contract: core::summed"),
        "{}",
        r013_result.message
    );
    let r013_render = &report.diagnostics[1];
    assert!(r013_render.message.contains("feeds rendered output"), "{}", r013_render.message);
    assert!(
        !r013_render.message.contains("contract"),
        "the rendering form fires with or without a contract: {}",
        r013_render.message
    );
    let r012 = &report.diagnostics[2];
    assert!(
        r012.message.contains("core::certified_total -> core::helper"),
        "R012 must chain through the helper: {}",
        r012.message
    );
    let r014 = &report.diagnostics[3];
    assert!(
        r014.message.contains("Ordering::Relaxed atomic read reaches the returned value"),
        "{}",
        r014.message
    );
    let r015 = &report.diagnostics[4];
    assert!(
        r015.message.contains("within deterministic contract: core::jittered"),
        "{}",
        r015.message
    );
}

#[test]
fn dataflow_corpus_byte_spans_slice_the_offending_tokens() {
    let report = xtask::lint_workspace(&corpus(), &[], &repo_policy());
    let slice = |i: usize, name: &str| {
        let d = &report.diagnostics[i];
        let s = d.span.unwrap();
        let src = fixture(&format!("dataflow/{name}"));
        src[s.start..s.end].to_string()
    };
    // Each finding anchors on the token that introduced the taint: the
    // hash container at its iteration site, the reduction adapter, the
    // atomic read method, and the RNG/clock constructors.
    assert_eq!(slice(0, "hash_accumulator.rs"), "m");
    assert_eq!(slice(1, "hash_accumulator.rs"), "m");
    assert_eq!(slice(2, "par_float_sum.rs"), "sum");
    assert_eq!(slice(3, "relaxed_result.rs"), "load");
    assert_eq!(slice(4, "rng_clock.rs"), "thread_rng");
    assert_eq!(slice(5, "rng_clock.rs"), "SystemTime");
}

#[test]
fn suppression_annotations_silence_each_dataflow_rule() {
    // Re-inject the corpus with an `allow` on every seeded defect; the
    // report must come back empty (and with no stale-annotation noise).
    let allow = |src: &str, line: usize, kinds: &str| -> String {
        let mut lines: Vec<&str> = src.lines().collect();
        let annotated = format!("{} // lint: allow({kinds}): fixture", lines[line - 1]);
        lines[line - 1] = &annotated;
        lines.join("\n") + "\n"
    };
    let pf = allow(&fixture("dataflow/par_float_sum.rs"), 12, "nondet_reduce");
    let ha = allow(
        &allow(&fixture("dataflow/hash_accumulator.rs"), 10, "nondet_iter"),
        18,
        "nondet_iter",
    );
    let rr = allow(&fixture("dataflow/relaxed_result.rs"), 17, "relaxed_result");
    let rc = allow(&allow(&fixture("dataflow/rng_clock.rs"), 6, "nondet_time"), 12, "nondet_time");
    let files = vec![
        WorkspaceFile { rel: "crates/core/src/pf.rs".into(), src: pf, role: FileRole::Library },
        WorkspaceFile { rel: "crates/core/src/ha.rs".into(), src: ha, role: FileRole::Library },
        WorkspaceFile { rel: "crates/core/src/rr.rs".into(), src: rr, role: FileRole::Library },
        WorkspaceFile { rel: "crates/core/src/rc.rs".into(), src: rc, role: FileRole::Library },
    ];
    let report = xtask::lint_workspace(&files, &[], &repo_policy());
    assert!(
        report.diagnostics.is_empty(),
        "allow(<kind>) must silence every dataflow rule without going stale:\n{}",
        report.render_human()
    );
}

#[test]
fn contract_hygiene_reports_unknown_kinds_and_unattached_contracts() {
    let src = "//! Contract hygiene fixture.\n\n\
               // lint: contract(idempotent)\n\
               fn mislabeled() {}\n\n\
               // lint: contract(deterministic)\n\n\
               fn detached() {}\n";
    let files = vec![WorkspaceFile {
        rel: "crates/core/src/hygiene.rs".into(),
        src: src.into(),
        role: FileRole::Library,
    }];
    let report = xtask::lint_workspace(&files, &[], &repo_policy());
    let got: Vec<(String, usize)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule.clone(), d.span.expect("contract findings carry spans").line))
        .collect();
    assert_eq!(got, vec![("R004".into(), 3), ("R004".into(), 6)], "{}", report.render_human());
    assert!(report.diagnostics[0].message.contains("unknown contract kind `idempotent`"));
    assert!(report.diagnostics[1].message.contains("attaches to no function"));
}

#[test]
fn sarif_aliasing_marks_r013_as_subsuming_r006() {
    let report = xtask::lint_workspace(&corpus(), &[], &repo_policy());
    assert!(report.has_errors(), "the corpus findings must survive to SARIF");
    let sarif = report.render_sarif_aliased("xtask-lint", &[("R013", &["R006"])]);
    let v: serde_json::Value = serde_json::from_str(&sarif).expect("valid SARIF JSON");
    let rules = v["runs"][0]["tool"]["driver"]["rules"].as_array().unwrap();
    let r013 = rules
        .iter()
        .find(|r| r["id"].as_str() == Some("R013"))
        .expect("R013 is declared in the rules table");
    let deprecated: Vec<&str> =
        r013["deprecatedIds"].as_array().unwrap().iter().filter_map(|x| x.as_str()).collect();
    assert_eq!(deprecated, vec!["R006"], "R013 must advertise the retired R006 id");
    // Rules without aliases must not grow the field.
    let r012 = rules.iter().find(|r| r["id"].as_str() == Some("R012")).unwrap();
    assert!(r012.get("deprecatedIds").is_none());
}
