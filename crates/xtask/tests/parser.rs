//! Integration tests for the item parser over the adversarial fixture
//! corpus in `fixtures/parser/`: nested impls, macro-heavy files,
//! `#[cfg(test)]` modules, gnarly generic bounds, and deliberately
//! malformed input. Two properties are asserted throughout: the parser
//! never panics, and one broken item never hides the rest of the file.

use std::path::Path;
use xtask::graph::{FileAnalysis, WorkspaceFile, WorkspaceGraph};
use xtask::lexer::{tokenize, TokenKind};
use xtask::parser::{parse_items, Item, ItemKind, ItemTree};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/parser").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn parse(src: &str) -> ItemTree {
    let tokens = tokenize(src);
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .map(|(i, _)| i)
        .collect();
    parse_items(src, &tokens, &code)
}

/// All item names in the tree, at any depth.
fn all_names(tree: &ItemTree) -> Vec<String> {
    let mut names = Vec::new();
    tree.walk(|_, item| {
        if !item.name.is_empty() {
            names.push(item.name.clone());
        }
    });
    names
}

fn find<'t>(tree: &'t ItemTree, name: &str) -> &'t Item {
    let mut found: Option<&'t Item> = None;
    tree.walk(|_, item| {
        if item.name == name && found.is_none() {
            found = Some(item);
        }
    });
    found.unwrap_or_else(|| panic!("item `{name}` not found in {:?}", all_names(tree)))
}

#[test]
fn every_parser_fixture_lexes_losslessly_and_parses_without_panicking() {
    for name in [
        "nested_impls.rs",
        "macro_heavy.rs",
        "cfg_test_mods.rs",
        "generic_bounds.rs",
        "malformed.rs",
    ] {
        let src = fixture(name);
        let rebuilt: String = tokenize(&src).iter().map(|t| t.text(&src)).collect();
        assert_eq!(rebuilt, src, "{name}: tokens must reproduce the source");
        let _ = parse(&src); // must not panic
    }
}

#[test]
fn nested_impls_are_parsed_to_full_depth() {
    let tree = parse(&fixture("nested_impls.rs"));
    // Three module levels deep: outer > middle > inner.
    let outer = find(&tree, "outer");
    assert_eq!(outer.kind, ItemKind::Mod);
    let middle = &outer.children[0];
    assert_eq!(middle.name, "middle");
    assert!(middle.is_pub);

    // Methods inside the nested inherent impl.
    let id = find(&tree, "id");
    assert_eq!(id.kind, ItemKind::Fn);
    assert!(id.is_pub);
    let secret = find(&tree, "secret");
    assert!(!secret.is_pub);

    // The trait impl and the unsafe auto-trait impl inside `inner`.
    let mut impls: Vec<(String, Option<String>)> = Vec::new();
    tree.walk(|_, item| {
        if let ItemKind::Impl { self_ty, trait_ty } = &item.kind {
            impls.push((self_ty.clone(), trait_ty.clone()));
        }
    });
    assert!(impls.contains(&("Gadget".into(), None)), "{impls:?}");
    assert!(impls.contains(&("Widget".into(), Some("Frob".into()))), "{impls:?}");
    assert!(impls.contains(&("Widget".into(), Some("Send".into()))), "{impls:?}");
    assert!(impls.contains(&("Holder".into(), None)), "{impls:?}");
    assert!(impls.contains(&("Holder".into(), Some("Default".into()))), "{impls:?}");

    // Methods of generic impls are children like any others.
    assert_eq!(find(&tree, "first").kind, ItemKind::Fn);
    assert_eq!(find(&tree, "default").kind, ItemKind::Fn);
}

#[test]
fn macro_bodies_do_not_leak_fake_items() {
    let tree = parse(&fixture("macro_heavy.rs"));
    let names = all_names(&tree);
    for fake in ["not_a_real_item", "NotARealStruct", "also_fake"] {
        assert!(!names.contains(&fake.to_string()), "macro body leaked `{fake}`: {names:?}");
    }
    assert_eq!(find(&tree, "fake_items").kind, ItemKind::MacroDef);
    assert_eq!(find(&tree, "dispatch").kind, ItemKind::MacroDef);
    // Items around and after the macros still parse, including one whose
    // body is full of macro invocations.
    assert_eq!(find(&tree, "uses_macros").kind, ItemKind::Fn);
    assert_eq!(find(&tree, "after_macros").kind, ItemKind::Fn);
}

#[test]
fn cfg_test_modules_parse_and_their_functions_are_test_masked() {
    let src = fixture("cfg_test_mods.rs");
    let tree = parse(&src);
    assert_eq!(find(&tree, "production").kind, ItemKind::Fn);
    assert_eq!(find(&tree, "also_production").kind, ItemKind::Fn);
    assert_eq!(find(&tree, "production_is_eleven").kind, ItemKind::Fn);
    assert_eq!(find(&tree, "nested_case").kind, ItemKind::Fn);

    // The graph layer must see the same split: test functions carry
    // is_test, production functions do not.
    let file = WorkspaceFile {
        rel: "crates/core/src/cfg_test_mods.rs".into(),
        src,
        role: xtask::role_of("crates/core/src/cfg_test_mods.rs"),
    };
    let analyses = vec![FileAnalysis::new(&file)];
    let graph = WorkspaceGraph::build(&analyses);
    let is_test = |name: &str| {
        graph
            .fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn `{name}` not in graph"))
            .is_test
    };
    assert!(!is_test("production"));
    assert!(!is_test("also_production"));
    assert!(is_test("production_is_eleven"));
    assert!(is_test("nested_case"));
}

#[test]
fn generic_bounds_do_not_derail_names_params_or_bodies() {
    let tree = parse(&fixture("generic_bounds.rs"));
    let matrix = find(&tree, "Matrix");
    assert_eq!(matrix.kind, ItemKind::Struct);
    assert!(matrix.body.is_some(), "record struct body must be captured");

    let collect = find(&tree, "collect_sorted");
    assert_eq!(collect.params, vec!["input"]);
    assert!(collect.body.is_some(), "where clause must not eat the body");

    let pairs = find(&tree, "pairs");
    assert_eq!(pairs.params, vec!["xs"], "lifetimes and impl-Trait returns");

    let reducer = find(&tree, "Reducer");
    assert_eq!(reducer.kind, ItemKind::Trait);
    assert_eq!(find(&tree, "zero").kind, ItemKind::Fn);
}

#[test]
fn malformed_input_recovers_at_the_next_item_boundary() {
    let tree = parse(&fixture("malformed.rs"));

    // Items after the garbage are still fully parsed.
    let recovered = find(&tree, "recovered_fn");
    assert_eq!(recovered.kind, ItemKind::Fn);
    assert!(recovered.is_pub);
    assert!(recovered.body.is_some());
    let module = find(&tree, "recovered_mod");
    assert_eq!(module.kind, ItemKind::Mod);
    assert_eq!(module.children[0].name, "inside");

    // The leading garbage is consumed as recovery items, not silently
    // dropped mid-file: the stray-token run shows up as Unknown.
    assert!(
        tree.items.iter().any(|i| i.kind == ItemKind::Unknown),
        "recovery must leave an Unknown marker: {:?}",
        tree.items.iter().map(|i| (&i.kind, &i.name)).collect::<Vec<_>>()
    );

    // An unterminated body at end-of-file is swallowed without panicking,
    // and the item is still recorded.
    assert_eq!(find(&tree, "trailing_unterminated").kind, ItemKind::Fn);
}

#[test]
fn parser_never_panics_on_any_repo_source_file() {
    // The whole workspace is a free corpus of real-world input.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap();
    let mut stack = vec![root.join("crates")];
    let mut seen = 0usize;
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let src = std::fs::read_to_string(&path).unwrap();
                let _ = parse(&src); // must not panic
                seen += 1;
            }
        }
    }
    assert!(seen > 20, "expected to sweep the whole workspace, saw {seen} files");
}
