//! Integration tests for the token-level lint engine: the adversarial
//! fixture corpus under `fixtures/`, the self-check that the repository
//! lints clean, and the `cargo xtask lint` CLI contract (exit codes,
//! `--format` handling, JSON shape).

use catalyze_check::Diagnostic;
use std::path::{Path, PathBuf};
use std::process::Command;
use xtask::lexer::tokenize;
use xtask::{lint_source, FileRole};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf()
}

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    lint_source(&format!("fixtures/{name}"), &fixture(name), FileRole::Library)
}

#[test]
fn lexer_is_lossless_on_every_fixture() {
    for name in ["clean_tricky.rs", "test_exempt.rs", "findings.rs"] {
        let src = fixture(name);
        let rebuilt: String = tokenize(&src).iter().map(|t| t.text(&src)).collect();
        assert_eq!(rebuilt, src, "{name}: concatenated tokens must reproduce the source");
    }
}

#[test]
fn lexer_is_lossless_on_the_engine_itself() {
    // The engine's own sources are a convenient corpus of real-world Rust.
    for entry in std::fs::read_dir(Path::new(env!("CARGO_MANIFEST_DIR")).join("src")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path).unwrap();
            let rebuilt: String = tokenize(&src).iter().map(|t| t.text(&src)).collect();
            assert_eq!(rebuilt, src, "{}", path.display());
        }
    }
}

#[test]
fn tricky_clean_fixture_produces_zero_findings() {
    let diags = lint_fixture("clean_tricky.rs");
    assert!(
        diags.is_empty(),
        "raw strings / comments / suffixed ints must not trip any rule:\n{:#?}",
        diags.iter().map(|d| format!("{} {}", d.rule, d.location)).collect::<Vec<_>>()
    );
}

#[test]
fn test_items_are_exempt_anywhere_in_the_file() {
    let diags = lint_fixture("test_exempt.rs");
    assert!(
        diags.is_empty(),
        "findings inside #[test]/#[cfg(test)] items must be masked:\n{:#?}",
        diags.iter().map(|d| format!("{} {}", d.rule, d.location)).collect::<Vec<_>>()
    );
}

#[test]
fn findings_fixture_reports_every_rule_with_spans() {
    let diags = lint_fixture("findings.rs");
    let got: Vec<(String, usize)> = diags
        .iter()
        .map(|d| (d.rule.clone(), d.span.expect("engine findings carry spans").line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("R001".into(), 8),
            ("R002".into(), 12),
            ("R002".into(), 17),
            ("R005".into(), 21),
            ("R006".into(), 26),
            ("R004".into(), 33),
            ("R007".into(), 43),
        ],
        "full diagnostics: {:#?}",
        diags.iter().map(|d| format!("{} {}", d.rule, d.location)).collect::<Vec<_>>()
    );
    // Spot-check column accuracy: the R001 span must start exactly at
    // `unwrap`, and the byte range must slice that text out of the source.
    let src = fixture("findings.rs");
    let r001 = diags[0].span.unwrap();
    assert_eq!(r001.column, 16);
    assert_eq!(&src[r001.start..r001.end], "unwrap");
    let r002 = diags[1].span.unwrap();
    assert_eq!(&src[r002.start..r002.end], "==");
}

#[test]
fn float_variable_comparison_is_flagged_not_just_literals() {
    let diags = lint_fixture("findings.rs");
    let var_cmp = diags.iter().find(|d| d.rule == "R002" && d.span.unwrap().line == 17).unwrap();
    assert!(
        var_cmp.message.contains("between float-typed values"),
        "line 17 compares two float variables: {}",
        var_cmp.message
    );
}

#[test]
fn repository_lints_clean() {
    let report = xtask::lint_repo(&repo_root());
    assert!(
        !report.has_errors(),
        "the repository must self-lint clean:\n{}",
        report.render_human()
    );
}

#[test]
fn cli_rejects_unknown_arguments_with_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--bogus"])
        .output()
        .expect("spawn xtask");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument"), "stderr: {stderr}");

    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--format"])
        .output()
        .expect("spawn xtask");
    assert_eq!(out.status.code(), Some(2), "--format without a value is a usage error");

    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--format", "xml"])
        .output()
        .expect("spawn xtask");
    assert_eq!(out.status.code(), Some(2), "--format xml is a usage error");

    let out = Command::new(env!("CARGO_BIN_EXE_xtask")).output().expect("spawn xtask");
    assert_eq!(out.status.code(), Some(2), "missing subcommand is a usage error");
}

#[test]
fn cli_json_output_matches_the_diagnostic_schema() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--format", "json"])
        .output()
        .expect("spawn xtask");
    assert_eq!(out.status.code(), Some(0), "repo lints clean");
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("stdout is a single JSON document");
    assert!(v.get("diagnostics").is_some());
    assert_eq!(v["errors"].as_u64(), Some(0));
    assert_eq!(v["warnings"].as_u64(), Some(0));
}
