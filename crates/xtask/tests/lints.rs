//! Integration tests for the lint engine: the adversarial fixture corpus
//! under `fixtures/`, the workspace graph rules (R008–R011) over the
//! injected `fixtures/graph/` corpus, the `--fix` round trip, the
//! self-check that the repository lints clean, and the `cargo xtask lint`
//! CLI contract (exit codes, `--format` handling, JSON and SARIF shape).

use catalyze_check::Diagnostic;
use std::path::{Path, PathBuf};
use std::process::Command;
use xtask::graph::WorkspaceFile;
use xtask::lexer::tokenize;
use xtask::rules::layering::LayeringPolicy;
use xtask::{lint_source, FileRole};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf()
}

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    lint_source(&format!("fixtures/{name}"), &fixture(name), FileRole::Library)
}

#[test]
fn lexer_is_lossless_on_every_fixture() {
    for name in ["clean_tricky.rs", "test_exempt.rs", "findings.rs"] {
        let src = fixture(name);
        let rebuilt: String = tokenize(&src).iter().map(|t| t.text(&src)).collect();
        assert_eq!(rebuilt, src, "{name}: concatenated tokens must reproduce the source");
    }
}

#[test]
fn lexer_is_lossless_on_the_engine_itself() {
    // The engine's own sources are a convenient corpus of real-world Rust.
    for entry in std::fs::read_dir(Path::new(env!("CARGO_MANIFEST_DIR")).join("src")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path).unwrap();
            let rebuilt: String = tokenize(&src).iter().map(|t| t.text(&src)).collect();
            assert_eq!(rebuilt, src, "{}", path.display());
        }
    }
}

#[test]
fn tricky_clean_fixture_produces_zero_findings() {
    let diags = lint_fixture("clean_tricky.rs");
    assert!(
        diags.is_empty(),
        "raw strings / comments / suffixed ints must not trip any rule:\n{:#?}",
        diags.iter().map(|d| format!("{} {}", d.rule, d.location)).collect::<Vec<_>>()
    );
}

#[test]
fn test_items_are_exempt_anywhere_in_the_file() {
    let diags = lint_fixture("test_exempt.rs");
    assert!(
        diags.is_empty(),
        "findings inside #[test]/#[cfg(test)] items must be masked:\n{:#?}",
        diags.iter().map(|d| format!("{} {}", d.rule, d.location)).collect::<Vec<_>>()
    );
}

#[test]
fn findings_fixture_reports_every_rule_with_spans() {
    let diags = lint_fixture("findings.rs");
    let got: Vec<(String, usize)> = diags
        .iter()
        .map(|d| (d.rule.clone(), d.span.expect("engine findings carry spans").line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("R001".into(), 8),
            ("R002".into(), 12),
            ("R002".into(), 17),
            ("R005".into(), 21),
            ("R013".into(), 26),
            ("R004".into(), 33),
            ("R007".into(), 43),
        ],
        "full diagnostics: {:#?}",
        diags.iter().map(|d| format!("{} {}", d.rule, d.location)).collect::<Vec<_>>()
    );
    // Spot-check column accuracy: the R001 span must start exactly at
    // `unwrap`, and the byte range must slice that text out of the source.
    let src = fixture("findings.rs");
    let r001 = diags[0].span.unwrap();
    assert_eq!(r001.column, 16);
    assert_eq!(&src[r001.start..r001.end], "unwrap");
    let r002 = diags[1].span.unwrap();
    assert_eq!(&src[r002.start..r002.end], "==");
}

#[test]
fn float_variable_comparison_is_flagged_not_just_literals() {
    let diags = lint_fixture("findings.rs");
    let var_cmp = diags.iter().find(|d| d.rule == "R002" && d.span.unwrap().line == 17).unwrap();
    assert!(
        var_cmp.message.contains("between float-typed values"),
        "line 17 compares two float variables: {}",
        var_cmp.message
    );
}

/// Loads a `fixtures/graph/` file and rehomes it at a synthetic
/// repo-relative path so the workspace engine sees a real crate layout.
fn graph_fixture(fixture_name: &str, rel_as: &str) -> WorkspaceFile {
    WorkspaceFile { rel: rel_as.into(), src: fixture(fixture_name), role: xtask::role_of(rel_as) }
}

/// The repo's own layering policy, as the graph tests' DAG.
fn repo_policy() -> LayeringPolicy {
    let text = std::fs::read_to_string(repo_root().join("crates/xtask/layering.lint"))
        .expect("read crates/xtask/layering.lint");
    LayeringPolicy::parse(&text).expect("the shipped layering policy must parse")
}

#[test]
fn graph_rules_fire_on_the_injected_corpus_with_exact_spans() {
    let files = vec![
        graph_fixture("graph/bad_layer.rs", "crates/core/src/bad_layer.rs"),
        graph_fixture("graph/guard_across_par.rs", "crates/core/src/guard_across_par.rs"),
        graph_fixture("graph/fixture_runner.rs", "crates/cat/src/fixture_runner.rs"),
        graph_fixture("graph/fixture_dep.rs", "crates/linalg/src/fixture_dep.rs"),
        graph_fixture("graph/dead_surface.rs", "crates/events/src/dead_surface.rs"),
    ];
    let report = xtask::lint_workspace(&files, &[], &repo_policy());
    let got: Vec<(String, String, usize, usize)> = report
        .diagnostics
        .iter()
        .map(|d| {
            let span = d.span.expect("graph findings carry spans");
            (d.rule.clone(), d.location.clone(), span.line, span.column)
        })
        .collect();
    // The report is sorted by (path, span): events sorts before linalg.
    assert_eq!(
        got,
        vec![
            ("R009".into(), "crates/core/src/bad_layer.rs:3:5".into(), 3, 5),
            ("R008".into(), "crates/core/src/guard_across_par.rs:6:8".into(), 6, 8),
            ("R011".into(), "crates/events/src/dead_surface.rs:3:8".into(), 3, 8),
            ("R001".into(), "crates/linalg/src/fixture_dep.rs:4:11".into(), 4, 11),
            ("R010".into(), "crates/linalg/src/fixture_dep.rs:4:11".into(), 4, 11),
        ],
        "full report:\n{}",
        report.render_human()
    );

    // The injected layering violation names the offending crate pair, and
    // the R010 finding carries the full witness chain across the crates.
    let r009 = &report.diagnostics[0];
    assert!(r009.message.contains("cli"), "{}", r009.message);
    let r008 = &report.diagnostics[1];
    assert!(r008.message.contains("par_iter"), "{}", r008.message);
    assert!(r008.message.contains("shared"), "{}", r008.message);
    let r010 = &report.diagnostics[4];
    assert!(
        r010.message.contains("cat::run_fixture -> cat::helper -> linalg::deep_unwrap"),
        "{}",
        r010.message
    );
    let r011 = &report.diagnostics[2];
    assert!(r011.message.contains("`pub fn nobody_calls`"), "{}", r011.message);
}

#[test]
fn graph_corpus_byte_spans_slice_the_offending_tokens() {
    let files = vec![
        graph_fixture("graph/bad_layer.rs", "crates/core/src/bad_layer.rs"),
        graph_fixture("graph/guard_across_par.rs", "crates/core/src/guard_across_par.rs"),
    ];
    let report = xtask::lint_workspace(&files, &[], &repo_policy());
    let layer_src = fixture("graph/bad_layer.rs");
    let s = report.diagnostics[0].span.unwrap();
    assert_eq!(&layer_src[s.start..s.end], "catalyze_cli");
    let par_src = fixture("graph/guard_across_par.rs");
    let s = report.diagnostics[1].span.unwrap();
    assert_eq!(&par_src[s.start..s.end], "par_iter");
}

#[test]
fn fix_round_trip_on_the_fixture_reaches_a_fixed_point() {
    let first = WorkspaceFile {
        rel: "crates/core/src/fix_roundtrip.rs".into(),
        src: fixture("fix_roundtrip.rs"),
        role: FileRole::Library,
    };
    let lint = xtask::rules::lint_workspace_full(std::slice::from_ref(&first), &[], &repo_policy());
    let fixed = xtask::fix::fixed_source(&lint.analyses[0])
        .expect("the fixture has stale annotations to fix");

    // The stale standalone annotation line is gone entirely; the stale
    // trailing comment is trimmed but its code line survives; the mixed
    // annotation keeps only its live kind; the live annotation is intact.
    assert!(!fixed.contains("nothing panics here anymore"), "{fixed}");
    assert!(!fixed.contains("lossy_cast"), "{fixed}");
    assert!(fixed.contains("    9\n"), "{fixed}");
    assert!(fixed.contains("// lint: allow(panic): fixture exercises a kept annotation"));
    assert!(fixed.contains("// lint: allow(panic): only the panic is real"), "{fixed}");

    // Round trip: fixing the fixed source changes nothing.
    let second = WorkspaceFile { rel: first.rel.clone(), src: fixed, role: FileRole::Library };
    let relint =
        xtask::rules::lint_workspace_full(std::slice::from_ref(&second), &[], &repo_policy());
    assert!(
        xtask::fix::fixed_source(&relint.analyses[0]).is_none(),
        "a second --fix pass must be a no-op"
    );

    // And the fixed source has no stale annotations left to report.
    assert!(
        !relint.report.diagnostics.iter().any(|d| d.rule == "R004"),
        "{}",
        relint.report.render_human()
    );
}

#[test]
fn repository_lints_clean() {
    let report = xtask::lint_repo(&repo_root());
    assert!(
        !report.has_errors(),
        "the repository must self-lint clean:\n{}",
        report.render_human()
    );
}

#[test]
fn cli_rejects_unknown_arguments_with_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--bogus"])
        .output()
        .expect("spawn xtask");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument"), "stderr: {stderr}");

    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--format"])
        .output()
        .expect("spawn xtask");
    assert_eq!(out.status.code(), Some(2), "--format without a value is a usage error");

    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--format", "xml"])
        .output()
        .expect("spawn xtask");
    assert_eq!(out.status.code(), Some(2), "--format xml is a usage error");

    let out = Command::new(env!("CARGO_BIN_EXE_xtask")).output().expect("spawn xtask");
    assert_eq!(out.status.code(), Some(2), "missing subcommand is a usage error");
}

#[test]
fn cli_json_output_matches_the_diagnostic_schema() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--format", "json"])
        .output()
        .expect("spawn xtask");
    assert_eq!(out.status.code(), Some(0), "repo lints clean");
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("stdout is a single JSON document");
    assert!(v.get("diagnostics").is_some());
    assert_eq!(v["errors"].as_u64(), Some(0));
    assert_eq!(v["warnings"].as_u64(), Some(0));
}

#[test]
fn cli_sarif_output_has_the_standard_shape() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--format", "sarif"])
        .output()
        .expect("spawn xtask");
    assert_eq!(out.status.code(), Some(0), "repo lints clean");
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("stdout is a single SARIF document");
    assert_eq!(v["version"].as_str(), Some("2.1.0"));
    assert!(v["$schema"].as_str().unwrap_or("").contains("sarif-2.1.0"));
    let runs = v["runs"].as_array().expect("runs array");
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0]["tool"]["driver"]["name"].as_str(), Some("xtask-lint"));
    assert!(runs[0]["results"].as_array().is_some(), "results must be present even when empty");
}

#[test]
fn sarif_results_carry_physical_locations_with_regions() {
    // Render a report with a known finding and check the location block.
    let files = vec![graph_fixture("graph/bad_layer.rs", "crates/core/src/bad_layer.rs")];
    let report = xtask::lint_workspace(&files, &[], &repo_policy());
    assert!(report.has_errors(), "the injected violation must survive to SARIF");
    let v: serde_json::Value =
        serde_json::from_str(&report.render_sarif("xtask-lint")).expect("valid JSON");
    let results = v["runs"][0]["results"].as_array().unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0]["ruleId"].as_str(), Some("R009"));
    assert_eq!(results[0]["level"].as_str(), Some("error"));
    let loc = &results[0]["locations"][0]["physicalLocation"];
    assert_eq!(
        loc["artifactLocation"]["uri"].as_str(),
        Some("crates/core/src/bad_layer.rs"),
        "the uri must be the bare path, line/column live in the region"
    );
    assert_eq!(loc["region"]["startLine"].as_u64(), Some(3));
    assert_eq!(loc["region"]["startColumn"].as_u64(), Some(5));
    let rules = v["runs"][0]["tool"]["driver"]["rules"].as_array().unwrap();
    assert!(rules.iter().any(|r| r["id"].as_str() == Some("R009")), "rules are declared");
}
