//! Dataflow fixture: an `Ordering::Relaxed` atomic load flowing into a
//! stats struct returned from a deterministic contract, and an
//! acquire-ordered control that must stay clean.

use std::sync::atomic::{AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

struct Counts {
    hits: u64,
    misses: u64,
}

// lint: contract(deterministic)
fn current_counts() -> Counts {
    let hits = HITS.load(Ordering::Relaxed);
    Counts { hits, misses: 0 }
}

// lint: contract(deterministic)
fn acquired_counts() -> Counts {
    let misses = MISSES.load(Ordering::Acquire);
    Counts { hits: 0, misses }
}
