//! Dataflow fixture: HashMap iteration feeding an accumulator that a
//! certified entry point returns, the rendering form of the same defect,
//! and a sorted control that must stay clean.

use std::collections::HashMap;

// lint: contract(deterministic)
fn summed(m: &HashMap<String, f64>) -> f64 {
    let mut acc = 0.0;
    for (_k, v) in m.iter() {
        acc += v;
    }
    acc
}

fn rendered(m: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for k in m.keys() {
        out.push_str(k);
    }
    out
}

// lint: contract(deterministic)
fn sorted_total(m: &HashMap<String, u64>) -> u64 {
    let mut vals: Vec<u64> = m.values().copied().collect();
    vals.sort();
    vals.iter().sum()
}
