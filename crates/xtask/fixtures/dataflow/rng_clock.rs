//! Dataflow fixture: thread-local RNG and wall-clock reads inside
//! deterministic contracts, with a seeded control that must stay clean.

// lint: contract(deterministic)
fn jittered(base: f64) -> f64 {
    let mut rng = rand::thread_rng();
    base + rng.sample(&mut Standard)
}

// lint: contract(deterministic)
fn stamped() -> u64 {
    let now = std::time::SystemTime::now();
    now.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}

// lint: contract(deterministic)
fn seeded(seed: u64) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rng.sample(&mut Standard)
}
