//! Dataflow fixture: a rayon float reduction leaking into a certified
//! result through a helper, plus an integer control that must stay clean.

use rayon::prelude::*;

// lint: contract(deterministic)
fn certified_total(xs: &[f64]) -> f64 {
    helper(xs)
}

fn helper(xs: &[f64]) -> f64 {
    let total = xs.par_iter().map(|x| x * 1.5).sum::<f64>();
    total
}

// lint: contract(deterministic)
fn exact_count(xs: &[u64]) -> u64 {
    xs.iter().map(|x| x + 1).sum()
}
