//! Fixture for the `--fix` round trip: one live annotation (kept), one
//! stale standalone annotation (line deleted), one stale trailing
//! annotation (comment deleted, code kept), and one mixed-kind annotation
//! (stale kind dropped, live kind kept).

fn live(input: Option<u8>) -> u8 {
    input.unwrap() // lint: allow(panic): fixture exercises a kept annotation
}

fn stale_standalone() -> u8 {
    // lint: allow(panic): nothing panics here anymore
    7
}

fn stale_trailing() -> u8 {
    9 // lint: allow(lossy_cast): the cast was removed long ago
}

fn mixed(input: Option<u8>) -> u8 {
    input.unwrap() // lint: allow(panic, float_cmp): only the panic is real
}
