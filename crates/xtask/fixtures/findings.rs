//! Fixture: one representative finding per rule, each at a known line, so
//! the integration tests can assert rule ids AND exact spans. Keep the
//! line numbers in sync with `tests/lints.rs` when editing.

use std::collections::HashMap;

pub fn r001_panic(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn r002_literal(x: f64) -> bool {
    x == 1.0
}

pub fn r002_variables(a: f64) -> bool {
    let b = 2.5;
    a != b
}

pub fn r005_cast(ratio: f64) -> u64 {
    ratio as u64
}

pub fn r006_render(m: &HashMap<String, u32>) -> String {
    let mut out = String::new();
    for k in m.keys() {
        out.push_str(k);
    }
    out
}

pub fn r004_stale(x: u32) -> u32 {
    // lint: allow(panic): nothing panics on the next line anymore
    x + 1
}

pub fn suppressed_is_silent(v: &[u32]) -> u32 {
    // lint: allow(panic): fixture exercises a used annotation
    *v.first().expect("non-empty by contract")
}

pub fn r007_raw_timing() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos()
}
