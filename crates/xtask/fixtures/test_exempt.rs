//! Fixture: test items are exempt wherever they appear in the file — a
//! `#[cfg(test)]` module in the middle, a bare `#[test]` function at the
//! top, and non-test code continuing afterwards. The engine must report
//! nothing here: every would-be finding sits inside a test item.

#[test]
fn leading_test_function() {
    let v: Vec<u32> = vec![1];
    assert_eq!(*v.first().unwrap(), 1);
    assert!(1.0 == 1.0);
}

pub fn clean_library_code(x: u32) -> u32 {
    x + 1
}

#[cfg(test)]
mod mid_file_tests {
    use super::*;

    #[test]
    fn panics_are_fine_here() {
        let m: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
        let mut out = String::new();
        for k in m.keys() {
            out.push_str(k);
        }
        let big = 3.5_f64;
        let truncated = big as i64;
        assert!(clean_library_code(0) == 1 || truncated == 3);
        panic!("tests may panic");
    }
}

pub fn more_clean_code_after_the_test_module(y: u64) -> u64 {
    y.saturating_add(1)
}

#[cfg(test)]
mod trailing_tests {
    #[test]
    fn unwrap_in_tail_module() {
        let v: Vec<u32> = vec![2];
        assert_eq!(*v.first().unwrap(), 2);
    }
}
