//! Adversarial fixture: everything here LOOKS like a finding to a
//! line-based scanner but is clean at the token level. The lint engine
//! must report nothing for this file.
//!
//! Doc-comment mention of `.unwrap()` and `panic!("boom")` — not code.
//! A doc-comment annotation example is not an annotation either:
//! `// lint: allow(panic): doc comments never count`.

/// Returns vendor prose that merely talks about panicking.
pub fn strings_and_comments() -> String {
    // A comment saying x.unwrap() or 1.0 == y is not code.
    /* Block comment: total == 2.5 as i64, m.keys().join(",")
       /* nested: still inside the comment: todo!() */
       and still closed correctly. */
    let s = "call .unwrap() then panic!(\"no\")";
    let raw = r#"raw: x.expect("msg") // lint: allow(panic): inside a string"#;
    let raw2 = r##"deeper r#"nesting"# with 1.0 == 2.0"##;
    let byte = b"bytes with todo!() inside";
    format!("{s}{raw}{raw2}{}", byte.len())
}

/// Integer suffixes contain the letter `e`; they are not exponents.
pub fn integer_suffixes(n: usize) -> usize {
    let mut depth = 0usize;
    let mut angle = 0isize;
    for _ in 0..n {
        if depth == 0 {
            depth += 1;
        }
        if angle == 0isize {
            angle += 1;
        }
    }
    depth + angle as usize
}

/// Chars and lifetimes must not confuse the string lexer.
pub fn chars_and_lifetimes<'a>(x: &'a str) -> (&'a str, char, char) {
    let quote = '"';
    let escaped = '\'';
    (x, quote, escaped)
}

/// Hash membership (no iteration into output) is fine, as is sorted
/// rendering through a Vec.
pub fn membership(keys: &[String]) -> String {
    let mut set = std::collections::HashSet::new();
    for k in keys {
        set.insert(k.clone());
    }
    let mut sorted: Vec<String> = keys.to_vec();
    sorted.sort();
    sorted.join(",")
}

/// Float arithmetic without exact comparison is fine; so are widening or
/// value-preserving casts.
pub fn arithmetic(a: f64, b: f64, n: u32) -> f64 {
    let widened = n as u64;
    let back = widened as f64;
    (a - b).abs() + back
}
