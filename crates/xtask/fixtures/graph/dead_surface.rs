//! Synthetic dead public API for the graph corpus.

pub fn nobody_calls() {}
