//! Injected lock-hygiene hazard: a Mutex guard held live across a
//! rayon parallel call.

fn broadcast(shared: &std::sync::Mutex<Vec<f64>>, xs: &[f64]) -> f64 {
    let guard = shared.lock().unwrap_or_else(|e| e.into_inner());
    xs.par_iter().map(|x| x * guard[0]).sum()
}
