//! Synthetic reachable panic site for the graph corpus.

fn deep_unwrap(input: Option<f64>) -> f64 {
    input.unwrap()
}
