//! Synthetic CAT runner entry for the graph corpus: `run_fixture` is an
//! R010 entry point (a `cat` crate function named `run_*`), and the call
//! chain crosses into the `linalg` fixture file.

fn run_fixture() {
    helper();
}

fn helper() {
    deep_unwrap(Some(1.0));
}
