//! Injected layering violation: `core` must never import `cli`.

use catalyze_cli::Args;

fn touch(_args: Args) {}
