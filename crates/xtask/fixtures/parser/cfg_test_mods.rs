//! Adversarial parser fixture: `#[cfg(test)]` modules and `#[test]`
//! functions interleaved with production items.

pub fn production() -> u32 {
    11
}

#[cfg(test)]
mod tests {
    use super::production;

    #[test]
    fn production_is_eleven() {
        assert_eq!(production(), 11);
    }

    mod nested {
        #[test]
        fn nested_case() {
            assert!(true);
        }
    }
}

pub fn also_production() -> u32 {
    13
}
