//! Adversarial parser fixture: deeply nested modules, inherent and trait
//! impls, unsafe impls, and an impl for a generic type.

mod outer {
    pub mod middle {
        pub struct Gadget {
            pub id: u32,
        }

        impl Gadget {
            pub fn id(&self) -> u32 {
                self.id
            }

            fn secret(&self) -> u32 {
                self.id ^ 0xdead_beef
            }
        }

        pub mod inner {
            pub trait Frob {
                fn frob(&self) -> u8;
            }

            pub struct Widget;

            impl Frob for Widget {
                fn frob(&self) -> u8 {
                    42
                }
            }

            unsafe impl Send for Widget {}
        }
    }
}

pub struct Holder<T>(pub Vec<T>);

impl<T: Clone> Holder<T> {
    pub fn first(&self) -> Option<T> {
        self.0.first().cloned()
    }
}

impl<T> Default for Holder<T> {
    fn default() -> Self {
        Holder(Vec::new())
    }
}
