//! Adversarial parser fixture: generic bounds with nested angle brackets,
//! where clauses, const generics, lifetimes, and impl-Trait returns.

use std::fmt::Debug;

pub struct Matrix<const R: usize, const C: usize> {
    pub cells: [[f64; C]; R],
}

impl<const R: usize, const C: usize> Matrix<R, C> {
    pub fn zero() -> Self {
        Matrix { cells: [[0.0; C]; R] }
    }
}

pub fn collect_sorted<I, T>(input: I) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    T: Ord + Debug,
{
    let mut out: Vec<T> = input.into_iter().collect();
    out.sort();
    out
}

pub fn pairs<'a, T: Clone + 'a>(xs: &'a [T]) -> impl Iterator<Item = (T, T)> + 'a {
    xs.windows(2).map(|w| (w[0].clone(), w[1].clone()))
}

pub trait Reducer<A, B = A>
where
    B: From<A>,
{
    fn reduce(&self, items: Vec<A>) -> B;
}
