//! Adversarial parser fixture: macro definitions whose bodies contain
//! item-like keywords (`fn`, `impl`, `struct`) that must NOT be parsed
//! as items, plus brace-, bracket- and paren-style invocations.

macro_rules! fake_items {
    () => {
        fn not_a_real_item() {}
        struct NotARealStruct;
        impl NotARealStruct {
            fn also_fake(&self) {}
        }
    };
}

macro_rules! dispatch {
    ($name:ident => $body:block) => {
        pub fn $name() $body
    };
}

fn uses_macros() -> Vec<u8> {
    let xs = vec![1u8, 2, 3];
    let flag = matches!(xs.len(), 3);
    assert!(flag, "fixture invariant");
    println!("len = {}", xs.len());
    xs
}

fn after_macros() -> u8 {
    7
}
