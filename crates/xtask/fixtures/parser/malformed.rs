//! Adversarial parser fixture: deliberately broken code. The parser must
//! never panic here and must recover well enough to see `recovered_fn`
//! and `recovered_mod` after the garbage. This file is NOT valid Rust.

??? !! garbage ;

pub struct ;

impl {
    fn orphan(&self);
}

enum 42 { }

pub fn recovered_fn() -> u8 {
    1
}

mod recovered_mod {
    pub fn inside() -> u8 {
        2
    }
}

fn trailing_unterminated() { if true { let x = (1 +
