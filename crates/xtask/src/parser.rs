//! A lightweight recursive-descent *item* parser over the lossless token
//! stream from [`crate::lexer`].
//!
//! The parser recognizes the subset of Rust's item grammar the graph rules
//! need — `mod`, `fn`, `struct`, `enum`, `union`, `trait`, `type`, `const`,
//! `static`, `impl`, `use`, `extern crate`, `macro_rules!` — and records,
//! for each item, its name, visibility, the span of its name token, its
//! body as a range of *code-token* indices, and (for functions) the list
//! of parameter binding names. `mod … { … }` and `impl … { … }` bodies are
//! parsed recursively into child items; function bodies are left as opaque
//! token ranges for the call scanner.
//!
//! Two properties are load-bearing and tested:
//!
//! * **Total.** The parser never panics and never loops: every token is
//!   read through bounds-checked accessors, and every parse step makes
//!   progress. Unmatched delimiters run to end-of-file.
//! * **Recovering.** An item head the grammar does not cover (or malformed
//!   input mid-item) is skipped to the next plausible item boundary — the
//!   next `;` or the close of the next balanced `{…}` block — and parsing
//!   resumes. One broken item never hides the rest of the file.
//!
//! The parser deliberately does **not** expand macros, resolve names, or
//! look inside function bodies for nested items; those are documented
//! false-negative classes of the graph layer (DESIGN.md §7).

use crate::lexer::{Token, TokenKind};
use catalyze_check::Span;

/// What kind of item a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name;` or `mod name { … }` (children populated for the latter).
    Mod,
    /// `fn name(…) { … }` (including `unsafe`/`async`/`const`/`extern` fns).
    Fn,
    /// `struct Name …`
    Struct,
    /// `enum Name { … }`
    Enum,
    /// `union Name { … }`
    Union,
    /// `trait Name { … }`
    Trait,
    /// `type Name = …;`
    TypeAlias,
    /// `const NAME: … = …;`
    Const,
    /// `static NAME: … = …;`
    Static,
    /// `impl Type { … }` or `impl Trait for Type { … }`; methods are
    /// children.
    Impl {
        /// Head identifier of the implemented-on type (`Matrix` for
        /// `impl<'a> ops::Index<usize> for Matrix`).
        self_ty: String,
        /// Head identifier of the trait, for trait impls.
        trait_ty: Option<String>,
    },
    /// `use path::to::thing;` — `path` holds the use tree's code tokens
    /// joined by single spaces (`catalyze_linalg :: Matrix`).
    Use {
        /// Space-joined text of the use tree.
        path: String,
    },
    /// `extern crate name;`
    ExternCrate,
    /// `macro_rules! name { … }` or a `macro` 2.0 definition.
    MacroDef,
    /// `extern "C" { … }` foreign block (children not parsed).
    ForeignMod,
    /// An item head the grammar does not cover; skipped by recovery.
    Unknown,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// The item's kind (and kind-specific payload).
    pub kind: ItemKind,
    /// The item's name (`""` for `impl`, `use`, and foreign blocks).
    pub name: String,
    /// True when the item carries any `pub` visibility (including
    /// restricted forms like `pub(crate)`).
    pub is_pub: bool,
    /// Span of the name token (or of the introducing keyword for unnamed
    /// items) — what diagnostics anchor to.
    pub span: Span,
    /// Code-token index of the name (or introducing keyword). Rules use
    /// this to consult per-token context such as the test mask.
    pub name_code: usize,
    /// For brace-bodied items: the code-token indices of the opening and
    /// closing brace, inclusive.
    pub body: Option<(usize, usize)>,
    /// Child items, populated for inline `mod` and `impl` bodies.
    pub children: Vec<Item>,
    /// For `Fn` items: parameter binding names in order (`self` excluded).
    pub params: Vec<String>,
}

/// A parsed file: the top-level items in source order.
#[derive(Debug, Clone, Default)]
pub struct ItemTree {
    /// Top-level items.
    pub items: Vec<Item>,
}

impl ItemTree {
    /// Depth-first walk over all items (pre-order), with the chain of
    /// enclosing items passed as `path`.
    pub fn walk<'t>(&'t self, mut visit: impl FnMut(&[&'t Item], &'t Item)) {
        fn go<'t>(
            items: &'t [Item],
            path: &mut Vec<&'t Item>,
            visit: &mut impl FnMut(&[&'t Item], &'t Item),
        ) {
            for item in items {
                visit(path, item);
                path.push(item);
                go(&item.children, path, visit);
                path.pop();
            }
        }
        go(&self.items, &mut Vec::new(), &mut visit);
    }
}

/// Parses the top-level items of one file. `tokens` is the lossless stream
/// from [`crate::lexer::tokenize`]; `code` the indices of its code tokens
/// (no whitespace, no comments) as computed by the rule engine.
pub fn parse_items(src: &str, tokens: &[Token], code: &[usize]) -> ItemTree {
    let p = Parser { src, tokens, code };
    ItemTree { items: p.items_in(0, code.len()) }
}

struct Parser<'s> {
    src: &'s str,
    tokens: &'s [Token],
    code: &'s [usize],
}

/// Keywords that can prefix `fn` (and other items) as modifiers.
const FN_MODIFIERS: [&str; 4] = ["default", "unsafe", "async", "const"];

impl Parser<'_> {
    fn txt(&self, c: usize) -> &str {
        match self.code.get(c) {
            Some(&i) => self.tokens[i].text(self.src),
            None => "",
        }
    }

    fn kind(&self, c: usize) -> Option<TokenKind> {
        self.code.get(c).map(|&i| self.tokens[i].kind)
    }

    fn span(&self, c: usize) -> Span {
        match self.code.get(c) {
            Some(&i) => self.tokens[i].span,
            None => Span { start: 0, end: 0, line: 1, column: 1 },
        }
    }

    /// Code index of the delimiter matching `open` at `at` (which must
    /// hold `open`), bounded by `end`. `None` when unbalanced.
    fn matching(&self, at: usize, end: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0usize;
        let mut c = at;
        while c < end {
            let t = self.txt(c);
            if t == open {
                depth += 1;
            } else if t == close {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(c);
                }
            }
            c += 1;
        }
        None
    }

    /// Skips a generics list starting at `c` (which holds `<`), handling
    /// `<<`/`>>` shift tokens as double brackets. Returns the index one
    /// past the closing `>`.
    fn skip_angles(&self, mut c: usize, end: usize) -> usize {
        let mut depth = 0isize;
        while c < end {
            match self.txt(c) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            c += 1;
            if depth <= 0 {
                break;
            }
        }
        c
    }

    /// Parses items in the code-index range `[from, end)`.
    fn items_in(&self, from: usize, end: usize) -> Vec<Item> {
        let mut out = Vec::new();
        let mut c = from;
        while c < end {
            let before = c;
            if let Some(item) = self.parse_item(&mut c, end) {
                out.push(item);
            }
            if c <= before {
                c = before + 1; // guarantee progress on any parser bug
            }
        }
        out
    }

    /// Parses one item starting at `*c`, advancing `*c` past it. Returns
    /// `None` for attribute-only tails and stray tokens consumed by
    /// recovery.
    fn parse_item(&self, c: &mut usize, end: usize) -> Option<Item> {
        // Attributes (inner and outer) before the item.
        while *c < end && self.txt(*c) == "#" {
            let open = if self.txt(*c + 1) == "!" { *c + 2 } else { *c + 1 };
            if self.txt(open) == "[" {
                match self.matching(open, end, "[", "]") {
                    Some(close) => *c = close + 1,
                    None => {
                        *c = end;
                        return None;
                    }
                }
            } else {
                *c += 1; // stray `#`: recovery
                return None;
            }
        }
        if *c >= end {
            return None;
        }

        let head = *c;
        let mut is_pub = false;
        if self.txt(*c) == "pub" {
            is_pub = true;
            *c += 1;
            if self.txt(*c) == "(" {
                match self.matching(*c, end, "(", ")") {
                    Some(close) => *c = close + 1,
                    None => {
                        *c = end;
                        return None;
                    }
                }
            }
        }

        // Modifier run before `fn` (`const` doubles as an item keyword:
        // it is a modifier only when more modifiers or `fn` follow).
        let mut m = *c;
        while FN_MODIFIERS.contains(&self.txt(m))
            || (self.txt(m) == "extern" && self.kind(m + 1) == Some(TokenKind::Literal))
        {
            if self.txt(m) == "const" && self.txt(m + 1) != "fn" && !self.is_modifier_run(m + 1) {
                break; // a `const NAME: …` item, not a `const fn`
            }
            m += if self.txt(m) == "extern" { 2 } else { 1 };
        }
        if self.txt(m) == "fn" {
            *c = m + 1;
            return Some(self.parse_fn(c, end, head, is_pub));
        }
        // `unsafe impl`, `unsafe trait`, `unsafe mod`, … — modifiers that
        // prefix a non-fn item keyword.
        if m > *c && matches!(self.txt(m), "impl" | "trait" | "mod" | "extern") {
            *c = m;
        }

        match self.txt(*c) {
            "mod" => {
                *c += 1;
                let (name, name_code) = self.expect_name(c);
                if self.txt(*c) == "{" {
                    let (body, children) = self.brace_body(c, end, true);
                    Some(self.item(ItemKind::Mod, name, is_pub, name_code, body, children))
                } else {
                    self.skip_past_semi(c, end);
                    Some(self.item(ItemKind::Mod, name, is_pub, name_code, None, Vec::new()))
                }
            }
            "struct" => {
                *c += 1;
                let (name, name_code) = self.expect_name(c);
                if self.txt(*c) == "<" {
                    *c = self.skip_angles(*c, end);
                }
                // Unit `;`, tuple `(…);`, or record `{…}` — `where` clauses
                // may precede the terminator in all three forms.
                let body = loop {
                    match self.txt(*c) {
                        "{" => break self.brace_body(c, end, false).0,
                        ";" => {
                            *c += 1;
                            break None;
                        }
                        "(" => match self.matching(*c, end, "(", ")") {
                            Some(close) => *c = close + 1,
                            None => {
                                *c = end;
                                break None;
                            }
                        },
                        "" => break None,
                        _ => *c += 1,
                    }
                };
                Some(self.item(ItemKind::Struct, name, is_pub, name_code, body, Vec::new()))
            }
            kw @ ("enum" | "union" | "trait") => {
                let kind = match kw {
                    "enum" => ItemKind::Enum,
                    "union" => ItemKind::Union,
                    _ => ItemKind::Trait,
                };
                *c += 1;
                if kw == "trait" && self.txt(*c) == "auto" {
                    *c += 1;
                }
                let (name, name_code) = self.expect_name(c);
                let body = self.seek_brace_or_semi(c, end);
                Some(self.item(kind, name, is_pub, name_code, body, Vec::new()))
            }
            "type" => {
                *c += 1;
                let (name, name_code) = self.expect_name(c);
                self.skip_past_semi(c, end);
                Some(self.item(ItemKind::TypeAlias, name, is_pub, name_code, None, Vec::new()))
            }
            kw @ ("const" | "static") => {
                let kind = if kw == "const" { ItemKind::Const } else { ItemKind::Static };
                *c += 1;
                if self.txt(*c) == "mut" {
                    *c += 1;
                }
                let (name, name_code) = self.expect_name(c);
                self.skip_past_semi(c, end);
                Some(self.item(kind, name, is_pub, name_code, None, Vec::new()))
            }
            "use" => {
                *c += 1;
                let name_code = *c;
                let mut path = String::new();
                while *c < end && self.txt(*c) != ";" {
                    if !path.is_empty() {
                        path.push(' ');
                    }
                    path.push_str(self.txt(*c));
                    *c += 1;
                }
                *c += 1; // past `;`
                Some(self.item(
                    ItemKind::Use { path },
                    String::new(),
                    is_pub,
                    name_code,
                    None,
                    Vec::new(),
                ))
            }
            "impl" => {
                *c += 1;
                Some(self.parse_impl(c, end, head, is_pub))
            }
            "extern" => {
                if self.txt(*c + 1) == "crate" {
                    *c += 2;
                    let (name, name_code) = self.expect_name(c);
                    self.skip_past_semi(c, end);
                    Some(self.item(
                        ItemKind::ExternCrate,
                        name,
                        is_pub,
                        name_code,
                        None,
                        Vec::new(),
                    ))
                } else {
                    // `extern "C" { … }` foreign block.
                    let name_code = *c;
                    *c += 1;
                    let body = self.seek_brace_or_semi(c, end);
                    Some(self.item(
                        ItemKind::ForeignMod,
                        String::new(),
                        is_pub,
                        name_code,
                        body,
                        Vec::new(),
                    ))
                }
            }
            "macro_rules" => {
                *c += 1;
                if self.txt(*c) == "!" {
                    *c += 1;
                }
                let (name, name_code) = self.expect_name(c);
                self.skip_macro_body(c, end);
                Some(self.item(ItemKind::MacroDef, name, is_pub, name_code, None, Vec::new()))
            }
            "macro" => {
                *c += 1;
                let (name, name_code) = self.expect_name(c);
                self.skip_macro_body(c, end);
                Some(self.item(ItemKind::MacroDef, name, is_pub, name_code, None, Vec::new()))
            }
            ";" => {
                *c += 1; // stray empty item
                None
            }
            _ => {
                // Recovery: a macro invocation at item position
                // (`lazy_static! { … }`) or anything else the grammar does
                // not cover. Skip to the next `;` or past the next balanced
                // `{…}`, whichever comes first.
                let name_code = *c;
                let mut d = *c;
                while d < end {
                    match self.txt(d) {
                        ";" => {
                            *c = d + 1;
                            return Some(self.item(
                                ItemKind::Unknown,
                                String::new(),
                                is_pub,
                                name_code,
                                None,
                                Vec::new(),
                            ));
                        }
                        "{" => {
                            let close =
                                self.matching(d, end, "{", "}").unwrap_or(end.saturating_sub(1));
                            *c = close + 1;
                            return Some(self.item(
                                ItemKind::Unknown,
                                String::new(),
                                is_pub,
                                name_code,
                                Some((d, close)),
                                Vec::new(),
                            ));
                        }
                        _ => d += 1,
                    }
                }
                *c = end;
                Some(self.item(
                    ItemKind::Unknown,
                    String::new(),
                    is_pub,
                    name_code,
                    None,
                    Vec::new(),
                ))
            }
        }
    }

    /// True when the tokens at `c` continue a modifier run ending in `fn`.
    fn is_modifier_run(&self, mut c: usize) -> bool {
        loop {
            let t = self.txt(c);
            if t == "fn" {
                return true;
            }
            if FN_MODIFIERS.contains(&t) {
                c += 1;
            } else if t == "extern" && self.kind(c + 1) == Some(TokenKind::Literal) {
                c += 2;
            } else {
                return false;
            }
        }
    }

    /// Reads the item name at `*c` when present, advancing past it.
    fn expect_name(&self, c: &mut usize) -> (String, usize) {
        let name_code = *c;
        if self.kind(*c) == Some(TokenKind::Ident) || self.txt(*c) == "_" {
            let name = self.txt(*c).to_string();
            *c += 1;
            (name, name_code)
        } else {
            (String::new(), name_code)
        }
    }

    /// Skips to just past the next `;`, stepping over balanced `{…}`,
    /// `(…)`, and `[…]` groups (initializer expressions may contain
    /// blocks, e.g. `const A: i32 = { 1 };`).
    fn skip_past_semi(&self, c: &mut usize, end: usize) {
        while *c < end {
            match self.txt(*c) {
                ";" => {
                    *c += 1;
                    return;
                }
                "{" | "(" | "[" => {
                    let (open, close) = match self.txt(*c) {
                        "{" => ("{", "}"),
                        "(" => ("(", ")"),
                        _ => ("[", "]"),
                    };
                    match self.matching(*c, end, open, close) {
                        Some(m) => *c = m + 1,
                        None => {
                            *c = end;
                            return;
                        }
                    }
                }
                _ => *c += 1,
            }
        }
    }

    /// Advances to the item's `{…}` body (skipping generics, bounds, and
    /// `where` clauses) or its terminating `;`, and returns the body range.
    fn seek_brace_or_semi(&self, c: &mut usize, end: usize) -> Option<(usize, usize)> {
        while *c < end {
            match self.txt(*c) {
                "{" => return self.brace_body(c, end, false).0,
                ";" => {
                    *c += 1;
                    return None;
                }
                "<" => *c = self.skip_angles(*c, end),
                "(" => match self.matching(*c, end, "(", ")") {
                    Some(close) => *c = close + 1,
                    None => {
                        *c = end;
                        return None;
                    }
                },
                _ => *c += 1,
            }
        }
        None
    }

    /// Consumes the `{…}` at `*c`; returns its range and (optionally) the
    /// items parsed from its interior.
    fn brace_body(
        &self,
        c: &mut usize,
        end: usize,
        parse_children: bool,
    ) -> (Option<(usize, usize)>, Vec<Item>) {
        let open = *c;
        let close = self.matching(open, end, "{", "}").unwrap_or_else(|| end.saturating_sub(1));
        *c = close + 1;
        let children = if parse_children && close > open {
            self.items_in(open + 1, close)
        } else {
            Vec::new()
        };
        (Some((open, close)), children)
    }

    /// Skips a macro definition body: `{…}` (no trailing `;`) or `(…);` /
    /// `[…];`.
    fn skip_macro_body(&self, c: &mut usize, end: usize) {
        match self.txt(*c) {
            "{" => {
                let close = self.matching(*c, end, "{", "}").unwrap_or(end.saturating_sub(1));
                *c = close + 1;
            }
            "(" | "[" => {
                let (open, closer) = if self.txt(*c) == "(" { ("(", ")") } else { ("[", "]") };
                match self.matching(*c, end, open, closer) {
                    Some(close) => {
                        *c = close + 1;
                        if self.txt(*c) == ";" {
                            *c += 1;
                        }
                    }
                    None => *c = end,
                }
            }
            _ => self.skip_past_semi(c, end),
        }
    }

    /// Parses a function item with `*c` positioned just past `fn`.
    fn parse_fn(&self, c: &mut usize, end: usize, _head: usize, is_pub: bool) -> Item {
        let (name, name_code) = self.expect_name(c);
        if self.txt(*c) == "<" {
            *c = self.skip_angles(*c, end);
        }
        let mut params = Vec::new();
        if self.txt(*c) == "(" {
            let close = self.matching(*c, end, "(", ")").unwrap_or(end.saturating_sub(1));
            params = self.param_names(*c + 1, close);
            *c = close + 1;
        }
        // Return type and where clause, up to the body or `;` (trait
        // method declarations and extern fns have no body).
        let mut body = None;
        while *c < end {
            match self.txt(*c) {
                "{" => {
                    body = self.brace_body(c, end, false).0;
                    break;
                }
                ";" => {
                    *c += 1;
                    break;
                }
                "<" => *c = self.skip_angles(*c, end),
                "(" => match self.matching(*c, end, "(", ")") {
                    Some(close) => *c = close + 1,
                    None => {
                        *c = end;
                        break;
                    }
                },
                _ => *c += 1,
            }
        }
        let mut item = self.item(ItemKind::Fn, name, is_pub, name_code, body, Vec::new());
        item.params = params;
        item
    }

    /// Collects parameter binding names in the paren group `(from…close)`:
    /// the `name` of every top-level `name: Type` pair (`mut` stripped,
    /// `self` receivers excluded, destructuring patterns contribute
    /// nothing).
    fn param_names(&self, from: usize, close: usize) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0usize; // nesting of (), [], {} inside the params
        let mut angle = 0isize;
        let mut param_start = true;
        let mut c = from;
        while c < close {
            let t = self.txt(c);
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "," if depth == 0 && angle <= 0 => {
                    param_start = true;
                    angle = 0;
                    c += 1;
                    continue;
                }
                _ => {}
            }
            if param_start && depth == 0 {
                if t == "mut" {
                    c += 1;
                    continue;
                }
                if self.kind(c) == Some(TokenKind::Ident) && self.txt(c + 1) == ":" && t != "self" {
                    names.push(t.to_string());
                }
                param_start = false;
            }
            c += 1;
        }
        names
    }

    /// Parses an impl item with `*c` positioned just past `impl`.
    fn parse_impl(&self, c: &mut usize, end: usize, head: usize, is_pub: bool) -> Item {
        if self.txt(*c) == "<" {
            *c = self.skip_angles(*c, end);
        }
        if self.txt(*c) == "!" {
            *c += 1; // negative impl
        }
        let first = self.type_head(c, end);
        let (self_ty, trait_ty) = if self.txt(*c) == "for" {
            *c += 1;
            if self.txt(*c) == "!" {
                *c += 1;
            }
            (self.type_head(c, end), Some(first))
        } else {
            (first, None)
        };
        // Skip any `where` clause to the body.
        let (body, children) = loop {
            match self.txt(*c) {
                "{" => break self.brace_body(c, end, true),
                ";" | "" => {
                    if self.txt(*c) == ";" {
                        *c += 1;
                    }
                    break (None, Vec::new());
                }
                "<" => *c = self.skip_angles(*c, end),
                _ => *c += 1,
            }
        };
        self.item(ItemKind::Impl { self_ty, trait_ty }, String::new(), is_pub, head, body, children)
    }

    /// Reads a type path at `*c` and returns its head identifier: the last
    /// path-segment identifier at angle-depth 0 before `for`, `where`,
    /// `{`, or `;`. Handles references, slices, and generic arguments by
    /// skipping them.
    fn type_head(&self, c: &mut usize, end: usize) -> String {
        let mut head = String::new();
        while *c < end {
            match self.txt(*c) {
                "for" | "where" | "{" | ";" => break,
                "<" => *c = self.skip_angles(*c, end),
                "(" => match self.matching(*c, end, "(", ")") {
                    Some(close) => *c = close + 1,
                    None => {
                        *c = end;
                        break;
                    }
                },
                "[" => match self.matching(*c, end, "[", "]") {
                    Some(close) => *c = close + 1,
                    None => {
                        *c = end;
                        break;
                    }
                },
                _ => {
                    if self.kind(*c) == Some(TokenKind::Ident) {
                        head = self.txt(*c).to_string();
                    }
                    *c += 1;
                }
            }
        }
        head
    }

    fn item(
        &self,
        kind: ItemKind,
        name: String,
        is_pub: bool,
        name_code: usize,
        body: Option<(usize, usize)>,
        children: Vec<Item>,
    ) -> Item {
        Item {
            kind,
            name,
            is_pub,
            span: self.span(name_code),
            name_code,
            body,
            children,
            params: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(src: &str) -> ItemTree {
        let tokens = tokenize(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        parse_items(src, &tokens, &code)
    }

    fn names(tree: &ItemTree) -> Vec<String> {
        tree.items.iter().map(|i| i.name.clone()).collect()
    }

    #[test]
    fn parses_basic_items() {
        let tree = parse(
            "pub mod m { pub fn f(x: u64) -> u64 { x } }\n\
             struct S { a: u8 }\n\
             pub enum E { A, B }\n\
             pub use std::collections::HashMap;\n\
             const N: usize = 3;\n\
             pub fn top(a: f64, mut b: f64) -> f64 { a + b }",
        );
        assert_eq!(names(&tree), vec!["m", "S", "E", "", "N", "top"]);
        assert_eq!(tree.items[0].children.len(), 1);
        assert_eq!(tree.items[0].children[0].name, "f");
        assert_eq!(tree.items[0].children[0].params, vec!["x"]);
        let top = &tree.items[5];
        assert_eq!(top.kind, ItemKind::Fn);
        assert!(top.is_pub);
        assert_eq!(top.params, vec!["a", "b"]);
        assert!(top.body.is_some());
    }

    #[test]
    fn impl_blocks_expose_self_and_trait_types() {
        let tree = parse(
            "impl Matrix { pub fn get(&self, i: usize) -> f64 { self.data[i] } }\n\
             impl fmt::Display for Span { fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) } }",
        );
        match &tree.items[0].kind {
            ItemKind::Impl { self_ty, trait_ty } => {
                assert_eq!(self_ty, "Matrix");
                assert!(trait_ty.is_none());
            }
            other => panic!("expected impl, got {other:?}"),
        }
        assert_eq!(tree.items[0].children[0].name, "get");
        assert_eq!(tree.items[0].children[0].params, vec!["i"]);
        match &tree.items[1].kind {
            ItemKind::Impl { self_ty, trait_ty } => {
                assert_eq!(self_ty, "Span");
                assert_eq!(trait_ty.as_deref(), Some("Display"));
            }
            other => panic!("expected trait impl, got {other:?}"),
        }
    }

    #[test]
    fn generic_bounds_and_where_clauses_do_not_derail() {
        let tree = parse(
            "pub fn g<T: Iterator<Item = Vec<u8>>, const N: usize>(xs: T, seed: [u8; N]) -> usize\n\
             where T: Clone { xs.count() }\n\
             pub struct Wrap<T>(pub Vec<Vec<T>>) where T: Default;",
        );
        assert_eq!(names(&tree), vec!["g", "Wrap"]);
        assert_eq!(tree.items[0].params, vec!["xs", "seed"]);
    }

    #[test]
    fn recovery_resumes_at_the_next_item() {
        // `???` is not an item head; the parser must skip it and still see
        // the following function.
        let tree =
            parse("??? !! garbage ;\npub fn alive() {}\nmacro_rules! m { () => {} }\nfn tail() {}");
        let kinds: Vec<&ItemKind> = tree.items.iter().map(|i| &i.kind).collect();
        assert!(matches!(kinds[0], ItemKind::Unknown));
        assert_eq!(tree.items[1].name, "alive");
        assert_eq!(tree.items[2].name, "m");
        assert_eq!(tree.items[3].name, "tail");
    }

    #[test]
    fn unterminated_input_never_panics() {
        for src in [
            "fn f(",
            "impl Foo {",
            "mod m { fn g(",
            "pub struct S<",
            "use a::{b, c",
            "fn f() { let x = [1,2",
            "#[derive(Debug",
            "const X: usize = {",
        ] {
            let _ = parse(src); // must not panic
        }
    }

    #[test]
    fn const_fn_vs_const_item() {
        let tree = parse(
            "const fn f() -> u8 { 1 }\nconst X: u8 = 2;\npub const unsafe extern \"C\" fn g() {}",
        );
        assert_eq!(tree.items[0].kind, ItemKind::Fn);
        assert_eq!(tree.items[0].name, "f");
        assert_eq!(tree.items[1].kind, ItemKind::Const);
        assert_eq!(tree.items[2].kind, ItemKind::Fn);
        assert_eq!(tree.items[2].name, "g");
    }

    #[test]
    fn use_items_capture_their_path() {
        let tree = parse("use catalyze_linalg::{Matrix, lstsq};");
        match &tree.items[0].kind {
            ItemKind::Use { path } => assert!(path.starts_with("catalyze_linalg ::")),
            other => panic!("expected use, got {other:?}"),
        }
    }

    #[test]
    fn spans_point_at_names() {
        let src = "mod outer {\n    pub fn inner() {}\n}";
        let tree = parse(src);
        let inner = &tree.items[0].children[0];
        assert_eq!(inner.span.line, 2);
        assert_eq!(&src[inner.span.start..inner.span.end], "inner");
    }
}
