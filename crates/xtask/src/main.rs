//! `cargo xtask` — repository maintenance tasks.
//!
//! ```text
//! cargo xtask lint [--format <human|json|sarif>] [--fix] [--timings <file>]
//! ```
//!
//! `lint` runs the workspace rule engine (see the `xtask` library crate
//! docs for the R001–R015 rule table) over every workspace crate — the
//! per-file token rules, the module/call-graph rules, and the determinism
//! dataflow rules — and reports findings as the same structured
//! `Diagnostic`s `catalyze check` emits. The per-file scan runs in
//! parallel; diagnostics are sorted by (path, span) so the output is
//! byte-identical regardless of thread schedule.
//! `--fix` rewrites stale `// lint: allow(…)` annotations (R004) in place
//! before reporting: comments whose kinds all suppress nothing are
//! deleted, mixed comments keep their live kinds; the pass is idempotent.
//! `--timings <file>` writes per-rule/per-file wall-clock accounting
//! (`lint-timings.v1` JSON) — the source of `results/BENCH_lint.json` and
//! its CI regression gate.
//! Exit codes: `0` clean, `1` any error-severity finding, `2` usage
//! error. Unknown arguments are rejected — `--format` must be followed by
//! `human`, `json`, or `sarif`.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// SARIF rule-id aliases: R013 subsumes the retired R006 heuristic.
const SARIF_ALIASES: [(&str, &[&str]); 1] = [("R013", &["R006"])];

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint [--format <human|json|sarif>] [--fix] [--timings <file>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("lint") {
        return usage();
    }

    let mut format = Format::Human;
    let mut fix = false;
    let mut timings: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => match args.get(i + 1).map(String::as_str) {
                Some("human") => {
                    format = Format::Human;
                    i += 2;
                }
                Some("json") => {
                    format = Format::Json;
                    i += 2;
                }
                Some("sarif") => {
                    format = Format::Sarif;
                    i += 2;
                }
                Some(other) => {
                    eprintln!("unknown --format `{other}` (expected human, json, or sarif)");
                    return usage();
                }
                None => {
                    eprintln!("--format requires a value (human, json, or sarif)");
                    return usage();
                }
            },
            "--fix" => {
                fix = true;
                i += 1;
            }
            "--timings" => match args.get(i + 1) {
                Some(path) => {
                    timings = Some(PathBuf::from(path));
                    i += 2;
                }
                None => {
                    eprintln!("--timings requires an output file path");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    let root = repo_root();
    if fix {
        match apply_fixes(&root) {
            Ok(fixed) => {
                for rel in &fixed {
                    eprintln!("fixed: {rel}");
                }
                eprintln!("{} file(s) rewritten", fixed.len());
            }
            Err(code) => return code,
        }
    }

    let report = match xtask::rules::load_repo_inputs(&root) {
        Ok((files, references, policy)) => {
            let lint = xtask::rules::lint_workspace_full(&files, &references, &policy);
            if let Some(path) = &timings {
                if let Err(e) = std::fs::write(path, lint.timings.render_json()) {
                    eprintln!("cannot write timings to {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            lint.report
        }
        Err(report) => report,
    };
    match format {
        Format::Json => println!("{}", report.render_json()),
        Format::Sarif => println!("{}", report.render_sarif_aliased("xtask-lint", &SARIF_ALIASES)),
        Format::Human => print!("{}", report.render_human()),
    }
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs the full workspace lint once, rewrites every file with stale
/// annotations, and returns the repo-relative paths it changed.
fn apply_fixes(root: &Path) -> Result<Vec<String>, ExitCode> {
    let (files, references, policy) = match xtask::rules::load_repo_inputs(root) {
        Ok(inputs) => inputs,
        Err(report) => {
            print!("{}", report.render_human());
            return Err(ExitCode::FAILURE);
        }
    };
    let lint = xtask::rules::lint_workspace_full(&files, &references, &policy);
    let mut fixed = Vec::new();
    for fa in &lint.analyses {
        let Some(new_src) = xtask::fix::fixed_source(fa) else { continue };
        if let Err(e) = std::fs::write(root.join(&fa.file.rel), new_src) {
            eprintln!("cannot rewrite {}: {e}", fa.file.rel);
            return Err(ExitCode::FAILURE);
        }
        fixed.push(fa.file.rel.clone());
    }
    Ok(fixed)
}

fn repo_root() -> PathBuf {
    // xtask lives at <repo>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels under the repo root")
        .to_path_buf()
}
