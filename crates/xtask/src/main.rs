//! `cargo xtask` — repository maintenance tasks.
//!
//! ```text
//! cargo xtask lint [--format json]
//! ```
//!
//! `lint` enforces source policies that `clippy` cannot express, reporting
//! violations as the same structured [`Diagnostic`]s `catalyze check`
//! emits (`R…` rule namespace):
//!
//! | Rule | Severity | Finding |
//! |------|----------|---------|
//! | R001 | Error    | panic-family call (`unwrap`, `expect`, `panic!`, …) in library non-test code without a `// lint: allow(panic): <reason>` annotation |
//! | R002 | Error    | float `==`/`!=` against a float literal in non-test code without a `// lint: allow(float_cmp): <reason>` annotation |
//! | R003 | Error    | crate root missing the agreed lint header (`#![warn(missing_docs)]` + `#![forbid(unsafe_code)]` for libraries, `#![forbid(unsafe_code)]` for binaries) |
//!
//! The scanner is line-based, not a full parser. Test code is recognized
//! by the repository convention that `#[cfg(test)]` modules sit at the end
//! of a file: everything after the first `#[cfg(test)]` is exempt, as is
//! everything under `tests/`, `benches/`, and `src/bin/` (binaries may
//! panic at top level). Doc comments and line comments are stripped before
//! token matching. R002 looks for a decimal float literal on either side
//! of `==`/`!=`; comparisons between two float *variables* are out of its
//! reach — `clippy::float_cmp` (kept at `warn`) still surfaces those in
//! editors.

#![forbid(unsafe_code)]

use catalyze_check::{Diagnostic, Report, Severity};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Panic-family tokens R001 looks for.
const PANIC_TOKENS: [&str; 6] =
    [".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let repo = repo_root();
            let report = lint_repo(&repo);
            if args.iter().any(|a| a == "--format") && args.iter().any(|a| a == "json") {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.has_errors() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--format json]");
            ExitCode::from(2)
        }
    }
}

fn repo_root() -> PathBuf {
    // xtask lives at <repo>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels under the repo root")
        .to_path_buf()
}

/// Lints every workspace crate under `crates/`.
fn lint_repo(repo: &Path) -> Report {
    let mut report = Report::new();
    let crates_dir = repo.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).filter(|p| p.is_dir()).collect(),
        Err(e) => {
            report.push(Diagnostic::new(
                "R000",
                Severity::Error,
                crates_dir.display().to_string(),
                format!("cannot enumerate crates: {e}"),
            ));
            return report;
        }
    };
    crate_dirs.sort();

    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        report.extend(check_crate_root(repo, &src));
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files);
        files.sort();
        for file in files {
            report.extend(lint_file(repo, &file));
        }
    }
    report
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else { return };
    for entry in rd.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// R003: crate roots must opt into the agreed header.
fn check_crate_root(repo: &Path, src: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut require = |root: PathBuf, attrs: &[&str]| {
        let Ok(text) = std::fs::read_to_string(&root) else { return };
        let rel = relative(repo, &root);
        for attr in attrs {
            if !text.lines().any(|l| l.trim().starts_with(attr)) {
                out.push(
                    Diagnostic::new(
                        "R003",
                        Severity::Error,
                        rel.clone(),
                        format!("crate root is missing `{attr}`"),
                    )
                    .with_suggestion("add the attribute to the crate-root lint header"),
                );
            }
        }
    };
    let lib = src.join("lib.rs");
    if lib.is_file() {
        require(lib, &["#![warn(missing_docs)]", "#![forbid(unsafe_code)]"]);
    }
    let main = src.join("main.rs");
    if main.is_file() {
        require(main, &["#![forbid(unsafe_code)]"]);
    }
    out
}

fn relative(repo: &Path, path: &Path) -> String {
    path.strip_prefix(repo).unwrap_or(path).display().to_string()
}

/// Whether R001 applies to this file: library code only — binary entry
/// points (`src/main.rs`, `src/bin/`) may panic at top level.
fn panic_rule_applies(file: &Path) -> bool {
    let s = file.to_string_lossy();
    !s.ends_with("src/main.rs") && !s.contains("/src/bin/")
}

fn lint_file(repo: &Path, file: &Path) -> Vec<Diagnostic> {
    let Ok(text) = std::fs::read_to_string(file) else { return Vec::new() };
    let rel = relative(repo, file);
    let check_panics = panic_rule_applies(file);
    let mut out = Vec::new();
    let mut prev_line = "";
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with("#[cfg(test)]") {
            break; // repository convention: test module is the file's tail
        }
        let code = strip_comments(line);
        let lineno = idx + 1;
        let loc = format!("{rel}:{lineno}");

        if check_panics {
            let annotated = has_annotation(line, prev_line, "allow(panic)");
            for token in PANIC_TOKENS {
                if code.contains(token) && !annotated {
                    out.push(
                        Diagnostic::new(
                            "R001",
                            Severity::Error,
                            loc.clone(),
                            format!("`{token}` in library code"),
                        )
                        .with_suggestion(
                            "return a Result, or annotate the line with \
                             `// lint: allow(panic): <reason>`",
                        ),
                    );
                }
            }
        }

        if compares_float_literal(&code) && !has_annotation(line, prev_line, "allow(float_cmp)") {
            out.push(
                Diagnostic::new(
                    "R002",
                    Severity::Error,
                    loc,
                    "exact float comparison against a literal",
                )
                .with_suggestion(
                    "compare with a tolerance, or annotate the line with \
                     `// lint: allow(float_cmp): <reason>`",
                ),
            );
        }
        prev_line = line;
    }
    out
}

/// An annotation counts when it sits on the flagged line or the one above:
/// `// lint: allow(<what>): <reason>` — the reason is mandatory.
fn has_annotation(line: &str, prev_line: &str, what: &str) -> bool {
    let marker = format!("// lint: {what}:");
    for l in [line, prev_line] {
        if let Some(pos) = l.find(&marker) {
            if !l[pos + marker.len()..].trim().is_empty() {
                return true;
            }
        }
    }
    false
}

/// Strips `//` line comments (doc comments included), respecting string
/// literals so a `//` inside a string does not truncate the code.
fn strip_comments(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_string => i += 1, // skip the escaped character
            b'"' => in_string = !in_string,
            b'/' if !in_string && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return line[..i].to_string();
            }
            _ => {}
        }
        i += 1;
    }
    line.to_string()
}

/// True when the line compares something against a decimal float literal
/// with `==` or `!=`.
fn compares_float_literal(code: &str) -> bool {
    let bytes = code.as_bytes();
    for i in 0..bytes.len().saturating_sub(1) {
        // Byte-level match keeps the later slicing on char boundaries even
        // when the line contains multi-byte characters (τ, X̂, …).
        if !matches!(bytes[i], b'=' | b'!') || bytes[i + 1] != b'=' {
            continue;
        }
        // Exclude <=, >=, and the == tail of a previous == (===- is not Rust,
        // but `<=`/`>=`/`!=` share the '=' byte).
        if i > 0 && matches!(bytes[i - 1], b'<' | b'>' | b'=' | b'!') {
            continue;
        }
        if i + 2 < bytes.len() && bytes[i + 2] == b'=' {
            continue;
        }
        let lhs = code[..i].trim_end();
        let rhs = code[i + 2..].trim_start();
        if ends_with_float_literal(lhs) || starts_with_float_literal(rhs) {
            return true;
        }
    }
    false
}

fn starts_with_float_literal(s: &str) -> bool {
    let token: String =
        s.chars().take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | '-')).collect();
    token.contains('.') && token.chars().any(|c| c.is_ascii_digit())
}

fn ends_with_float_literal(s: &str) -> bool {
    let token: String =
        s.chars().rev().take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '_')).collect();
    token.contains('.') && token.chars().any(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_literal_comparisons_are_detected() {
        assert!(compares_float_literal("if x == 0.0 {"));
        assert!(compares_float_literal("if 1.5 != y {"));
        assert!(compares_float_literal("a[i] == 0.25"));
        assert!(!compares_float_literal("if x == 0 {"));
        assert!(!compares_float_literal("if x <= 0.5 {"));
        assert!(!compares_float_literal("if x >= 0.5 {"));
        assert!(!compares_float_literal("let y = x != n;"));
    }

    #[test]
    fn comments_are_stripped_with_string_awareness() {
        assert_eq!(strip_comments("let x = 1; // x == 0.0"), "let x = 1; ");
        assert_eq!(strip_comments(r#"let s = "a//b"; // tail"#), r#"let s = "a//b"; "#);
        assert_eq!(strip_comments("/// doc == 0.0"), "");
    }

    #[test]
    fn annotations_need_a_reason() {
        assert!(has_annotation(
            "x == 0.0 // lint: allow(float_cmp): exact sentinel",
            "",
            "allow(float_cmp)"
        ));
        assert!(has_annotation(
            "x == 0.0",
            "// lint: allow(float_cmp): exact sentinel",
            "allow(float_cmp)"
        ));
        assert!(!has_annotation("x == 0.0 // lint: allow(float_cmp):", "", "allow(float_cmp)"));
        assert!(!has_annotation("x == 0.0", "", "allow(float_cmp)"));
    }

    #[test]
    fn repo_passes_its_own_lint() {
        let report = lint_repo(&repo_root());
        assert!(!report.has_errors(), "repository lint must be clean:\n{}", report.render_human());
    }
}
