//! `cargo xtask` — repository maintenance tasks.
//!
//! ```text
//! cargo xtask lint [--format <human|json>]
//! ```
//!
//! `lint` runs the token-level rule engine (see the `xtask` library crate
//! docs for the R001–R007 rule table) over every workspace crate and
//! reports findings as the same structured `Diagnostic`s `catalyze check`
//! emits. Exit codes: `0` clean, `1` any error-severity finding, `2`
//! usage error. Unknown arguments are rejected — `--format` must be
//! followed by `human` or `json`.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint [--format <human|json>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("lint") {
        return usage();
    }

    let mut format = Format::Human;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => match args.get(i + 1).map(String::as_str) {
                Some("human") => {
                    format = Format::Human;
                    i += 2;
                }
                Some("json") => {
                    format = Format::Json;
                    i += 2;
                }
                Some(other) => {
                    eprintln!("unknown --format `{other}` (expected human or json)");
                    return usage();
                }
                None => {
                    eprintln!("--format requires a value (human or json)");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    let report = xtask::lint_repo(&repo_root());
    match format {
        Format::Json => println!("{}", report.render_json()),
        Format::Human => print!("{}", report.render_human()),
    }
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn repo_root() -> PathBuf {
    // xtask lives at <repo>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels under the repo root")
        .to_path_buf()
}
