//! `cargo xtask lint --fix` — mechanical repair of R004 stale
//! annotations.
//!
//! The fixer runs the full workspace lint (per-file rules *and* graph
//! rules, so `reachable_panic`/`lock_hygiene` annotations resolve
//! correctly), then rewrites every annotation comment that suppressed
//! nothing:
//!
//! * a comment whose kinds are **all** stale is deleted — the whole line
//!   when the comment stands alone, just the trailing comment (plus the
//!   whitespace before it) when it follows code;
//! * a multi-kind comment with a **mix** of live and stale kinds keeps its
//!   live kinds (`allow(panic, reachable_panic)` → `allow(panic)`).
//!
//! The rewrite is a pure function of the lint result, so it is idempotent
//! by construction: after one pass every surviving annotation suppresses
//! something, R004 has nothing left to report, and a second pass edits
//! nothing. The fixture round-trip test in `tests/lints.rs` pins that.

use crate::graph::FileAnalysis;
use crate::rules::Annotation;

/// One planned byte edit (replace `range` with `text`).
struct Edit {
    start: usize,
    end: usize,
    text: String,
}

/// Computes the fixed source for one analyzed file, or `None` when there
/// is nothing to fix.
pub fn fixed_source(fa: &FileAnalysis<'_>) -> Option<String> {
    let src = fa.ctx.src;
    let mut edits: Vec<Edit> = Vec::new();

    // Annotations sharing one comment share a span; group them.
    let mut groups: Vec<(usize, usize, Vec<&Annotation>)> = Vec::new();
    for a in &fa.ctx.annotations {
        match groups.last_mut() {
            Some((start, _, group)) if *start == a.span.start => group.push(a),
            _ => groups.push((a.span.start, a.span.end, vec![a])),
        }
    }

    for (start, end, group) in groups {
        let live: Vec<&str> = group.iter().filter(|a| a.used).map(|a| a.kind.as_str()).collect();
        if live.len() == group.len() {
            continue; // fully earning its keep
        }
        if live.is_empty() {
            edits.push(delete_comment(src, start, end));
        } else {
            // Rewrite the kind list in place, keeping the reason.
            let comment = &src[start..end];
            let (Some(open), Some(close)) = (comment.find('('), comment.find(')')) else {
                continue;
            };
            edits.push(Edit { start: start + open + 1, end: start + close, text: live.join(", ") });
        }
    }

    if edits.is_empty() {
        return None;
    }
    edits.sort_by_key(|e| e.start);
    let mut out = String::with_capacity(src.len());
    let mut cursor = 0;
    for e in edits {
        out.push_str(&src[cursor..e.start]);
        out.push_str(&e.text);
        cursor = e.end;
    }
    out.push_str(&src[cursor..]);
    Some(out)
}

/// Plans the deletion of a whole comment: the full line (including its
/// newline) when the comment stands alone on it, otherwise the comment
/// plus the padding that separated it from the code before it.
fn delete_comment(src: &str, start: usize, end: usize) -> Edit {
    let line_start = src[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let standalone = src[line_start..start].chars().all(char::is_whitespace);
    if standalone {
        let line_end = src[end..].find('\n').map(|i| end + i + 1).unwrap_or(src.len());
        Edit { start: line_start, end: line_end, text: String::new() }
    } else {
        let code_end = src[line_start..start].trim_end().len() + line_start;
        Edit { start: code_end, end, text: String::new() }
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::WorkspaceFile;
    use crate::rules::layering::LayeringPolicy;
    use crate::rules::{lint_workspace_full, role_of};

    fn fix_one(src: &str) -> Option<String> {
        let files = vec![WorkspaceFile {
            rel: "crates/x/src/a.rs".to_string(),
            src: src.to_string(),
            role: role_of("crates/x/src/a.rs"),
        }];
        let policy = LayeringPolicy::parse("x ix ->\n").unwrap();
        let lint = lint_workspace_full(&files, &[], &policy);
        let fixed = super::fixed_source(&lint.analyses[0]);
        drop(lint);
        fixed
    }

    #[test]
    fn standalone_stale_annotation_line_is_deleted() {
        let src = "fn f() -> u8 {\n    // lint: allow(panic): long gone\n    0\n}\n";
        assert_eq!(fix_one(src).as_deref(), Some("fn f() -> u8 {\n    0\n}\n"));
    }

    #[test]
    fn trailing_stale_annotation_keeps_the_code() {
        let src = "fn f() -> u8 {\n    0 // lint: allow(panic): long gone\n}\n";
        assert_eq!(fix_one(src).as_deref(), Some("fn f() -> u8 {\n    0\n}\n"));
    }

    #[test]
    fn mixed_kinds_keep_the_live_one() {
        let src = "fn f() { x.unwrap(); // lint: allow(panic, float_cmp): partly wrong\n}\n";
        assert_eq!(
            fix_one(src).as_deref(),
            Some("fn f() { x.unwrap(); // lint: allow(panic): partly wrong\n}\n")
        );
    }

    #[test]
    fn live_annotations_are_untouched_and_fix_is_idempotent() {
        let src = "fn f() { x.unwrap(); // lint: allow(panic): infallible here\n}\n";
        assert_eq!(fix_one(src), None);
        let stale = "fn f() -> u8 {\n    // lint: allow(panic): long gone\n    0\n}\n";
        let once = fix_one(stale).unwrap();
        assert_eq!(fix_one(&once), None, "second pass must be a no-op");
    }
}
