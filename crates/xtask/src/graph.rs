//! The workspace model: per-file item trees linked into a cross-crate
//! module inventory and an approximate call graph.
//!
//! [`FileAnalysis`] pairs the per-file rule context with the parsed
//! [`ItemTree`]; [`WorkspaceGraph`] flattens every function item in every
//! analyzed file into a [`FnNode`] table and connects them with
//! name-resolved call edges. Resolution is deliberately *approximate and
//! over-inclusive* — exactly what a reachability rule wants:
//!
//! * `recv.name(…)` method calls link to **every** known method named
//!   `name` (no receiver types);
//! * `Owner::name(…)` links to methods of `Owner` named `name`, falling
//!   back to any function named `name` when `Owner` is unknown (it may be
//!   a module path segment);
//! * `name(…)` links to free functions named `name`, falling back to any
//!   function of that name.
//!
//! Known false-negative classes (documented in DESIGN.md §7): calls made
//! through function pointers or closures passed as values, calls generated
//! by macro expansion, and items nested inside function bodies.

use crate::parser::{Item, ItemKind, ItemTree};
use crate::rules::{FileContext, FileRole};
use catalyze_check::Span;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One source file handed to the workspace engine.
#[derive(Debug, Clone)]
pub struct WorkspaceFile {
    /// Repo-relative path (`crates/core/src/pipeline.rs`).
    pub rel: String,
    /// Full source text.
    pub src: String,
    /// Lint role (derived from the path for on-disk trees).
    pub role: FileRole,
}

/// A lint file analyzed once: rule context plus parsed item tree.
pub struct FileAnalysis<'s> {
    /// The underlying file.
    pub file: &'s WorkspaceFile,
    /// Shared per-file rule context (tokens, test mask, annotations).
    pub ctx: FileContext<'s>,
    /// The parsed top-level item tree.
    pub tree: ItemTree,
}

impl<'s> FileAnalysis<'s> {
    /// Lexes, contextualizes, and parses one file.
    pub fn new(file: &'s WorkspaceFile) -> Self {
        let ctx = FileContext::new(file.rel.clone(), &file.src, file.role);
        let tree = crate::parser::parse_items(&file.src, &ctx.tokens, &ctx.code);
        FileAnalysis { file, ctx, tree }
    }

    /// The crate directory name under `crates/` (`core`, `cat`, …), or
    /// `""` for paths outside `crates/` (tests, examples).
    pub fn crate_name(&self) -> &str {
        crate_of(&self.file.rel)
    }
}

/// Crate directory of a repo-relative path (`crates/core/src/x.rs` →
/// `core`); empty for anything outside `crates/`.
pub(crate) fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/").and_then(|r| r.split('/').next()).unwrap_or("")
}

/// One function item, flattened out of its file's item tree.
#[derive(Debug, Clone)]
// lint: allow(dead_api): node type in WorkspaceGraph's public fields, which the parser tests walk
pub struct FnNode {
    /// Index of the defining file in the analysis slice.
    pub file: usize,
    /// Crate directory name (`core`, `cat`, `""` for non-crate files).
    pub crate_name: String,
    /// Enclosing `impl` head type, for methods.
    pub owner: Option<String>,
    /// The function's bare name.
    pub name: String,
    /// Display name: `crate::Owner::name` / `crate::name`.
    pub qual: String,
    /// Span of the name token.
    pub span: Span,
    /// Body as an inclusive code-token index range (`{` … `}`), when the
    /// function has one.
    pub body: Option<(usize, usize)>,
    /// Parameter binding names.
    pub params: Vec<String>,
    /// True when the function (or an enclosing item) is test-only.
    pub is_test: bool,
    /// True when the function carries a `// lint: contract(deterministic)`
    /// annotation (on its `fn` line or the line above) — a dataflow-rule
    /// entry point (R012–R015).
    pub is_contract: bool,
}

/// The linked workspace: all functions plus approximate call edges.
pub struct WorkspaceGraph {
    /// Every function in every analyzed file.
    pub fns: Vec<FnNode>,
    /// Adjacency: `calls[i]` are indices of functions `fns[i]` may call.
    pub calls: Vec<Vec<usize>>,
}

/// Keywords that look like calls when followed by `(`.
const NOT_CALLS: [&str; 12] =
    ["if", "while", "for", "match", "return", "loop", "fn", "move", "in", "let", "else", "break"];

impl WorkspaceGraph {
    /// Builds the graph over the analyzed files with no cross-crate
    /// dependency filter (tests, ad-hoc callers).
    pub fn build(files: &[FileAnalysis<'_>]) -> Self {
        Self::build_filtered(files, &BTreeMap::new())
    }

    /// Builds the graph, keeping a cross-crate call edge only when the
    /// caller's crate is allowed to depend on the callee's crate (or the
    /// caller is absent from `allowed` — permissive for unknown crates).
    /// Name-based resolution otherwise invents edges between crates that
    /// cannot even import each other (`.push()` in `cat` linking to a
    /// `push` method in `xtask`), and every such edge is a false witness
    /// chain for R010.
    pub fn build_filtered(
        files: &[FileAnalysis<'_>],
        allowed: &BTreeMap<String, BTreeSet<String>>,
    ) -> Self {
        let mut fns = Vec::new();
        for (fi, fa) in files.iter().enumerate() {
            collect_fns(fa, fi, &mut fns);
        }

        // Name indexes for approximate resolution.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_owner_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
            match &f.owner {
                Some(o) => {
                    methods_by_name.entry(&f.name).or_default().push(i);
                    by_owner_name.entry((o, &f.name)).or_default().push(i);
                }
                None => {
                    free_by_name.entry(&f.name).or_default().push(i);
                }
            }
        }

        let mut calls: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (i, f) in fns.iter().enumerate() {
            let Some((open, close)) = f.body else { continue };
            let fa = &files[f.file];
            let mut targets: BTreeSet<usize> = BTreeSet::new();
            let mut c = open + 1;
            while c < close {
                if fa.ctx.code_token(c).map(|t| t.kind) == Some(crate::lexer::TokenKind::Ident)
                    && fa.ctx.code_text(c + 1) == "("
                {
                    let name = fa.ctx.code_text(c);
                    let prev = if c == 0 { "" } else { fa.ctx.code_text(c - 1) };
                    if !NOT_CALLS.contains(&name) && prev != "fn" {
                        let resolved: &[usize] = if prev == "." {
                            methods_by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
                        } else if prev == "::" {
                            let owner = if c >= 2 { fa.ctx.code_text(c - 2) } else { "" };
                            let owner = if owner == "Self" {
                                f.owner.as_deref().unwrap_or(owner)
                            } else {
                                owner
                            };
                            match by_owner_name.get(&(owner, name)) {
                                Some(v) => v.as_slice(),
                                None => by_name.get(name).map(Vec::as_slice).unwrap_or(&[]),
                            }
                        } else {
                            match free_by_name.get(name) {
                                Some(v) => v.as_slice(),
                                None => by_name.get(name).map(Vec::as_slice).unwrap_or(&[]),
                            }
                        };
                        targets.extend(resolved.iter().copied().filter(|&t| {
                            let callee = &fns[t].crate_name;
                            f.crate_name.is_empty()
                                || *callee == f.crate_name
                                || allowed
                                    .get(&f.crate_name)
                                    .map_or(true, |deps| deps.contains(callee))
                        }));
                    }
                }
                c += 1;
            }
            targets.remove(&i);
            calls[i] = targets.into_iter().collect();
        }
        WorkspaceGraph { fns, calls }
    }

    /// Breadth-first reachability from the given entry functions. Returns
    /// per-function predecessor indices (`parent[i]` is the function
    /// through which `i` was first reached; entries are their own
    /// parents), or `None` for unreachable functions.
    pub fn reachable_from(&self, entries: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &e in entries {
            if e < self.fns.len() && parent[e].is_none() {
                parent[e] = Some(e);
                queue.push_back(e);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &j in &self.calls[i] {
                if parent[j].is_none() && !self.fns[j].is_test {
                    parent[j] = Some(i);
                    queue.push_back(j);
                }
            }
        }
        parent
    }

    /// Renders the call chain from an entry to `i` (inclusive), using the
    /// predecessor table from [`Self::reachable_from`]. Truncates long
    /// chains in the middle.
    pub fn chain_to(&self, parent: &[Option<usize>], i: usize) -> String {
        let mut hops = vec![i];
        let mut cur = i;
        while let Some(p) = parent.get(cur).copied().flatten() {
            if p == cur {
                break;
            }
            hops.push(p);
            cur = p;
            if hops.len() > 32 {
                break; // cycle guard; parents always terminate in practice
            }
        }
        hops.reverse();
        let names: Vec<&str> = hops.iter().map(|&h| self.fns[h].qual.as_str()).collect();
        if names.len() <= 5 {
            names.join(" -> ")
        } else {
            format!("{} -> {} -> … -> {}", names[0], names[1], names[names.len() - 1])
        }
    }
}

/// Flattens every `fn` item of one file into [`FnNode`]s, tracking the
/// enclosing impl owner and module path.
fn collect_fns(fa: &FileAnalysis<'_>, file_idx: usize, out: &mut Vec<FnNode>) {
    let crate_name = fa.crate_name().to_string();
    fa.tree.walk(|path, item| {
        if item.kind != ItemKind::Fn {
            return;
        }
        let owner = path.iter().rev().find_map(|p| match &p.kind {
            ItemKind::Impl { self_ty, .. } => Some(self_ty.clone()),
            _ => None,
        });
        let mods: Vec<&str> =
            path.iter().filter(|p| p.kind == ItemKind::Mod).map(|p| p.name.as_str()).collect();
        let mut qual = if crate_name.is_empty() { fa.file.rel.clone() } else { crate_name.clone() };
        for m in &mods {
            qual.push_str("::");
            qual.push_str(m);
        }
        if let Some(o) = &owner {
            qual.push_str("::");
            qual.push_str(o);
        }
        qual.push_str("::");
        qual.push_str(&item.name);
        let is_test = item_is_test(fa, item) || path.iter().any(|p| item_is_test(fa, p));
        let is_contract = fa.ctx.contracts.iter().any(|a| {
            a.kind == "deterministic" && (a.line == item.span.line || a.line + 1 == item.span.line)
        });
        out.push(FnNode {
            file: file_idx,
            crate_name: crate_name.clone(),
            owner,
            name: item.name.clone(),
            qual,
            span: item.span,
            body: item.body,
            params: item.params.clone(),
            is_test,
            is_contract,
        });
    });
}

/// Whether an item's name token sits inside the file's test mask.
fn item_is_test(fa: &FileAnalysis<'_>, item: &Item) -> bool {
    fa.ctx.code.get(item.name_code).is_some_and(|&ti| fa.ctx.in_test[ti])
}

/// The identifier sets rule R011 resolves usage against.
pub struct UsageSets {
    /// Per-crate: every identifier appearing in the crate's non-test
    /// source code.
    pub non_test_by_crate: BTreeMap<String, BTreeSet<String>>,
    /// Identifiers appearing in any test-masked code across the workspace.
    pub test_idents: BTreeSet<String>,
    /// Identifiers appearing in reference files (top-level `tests/`,
    /// `examples/`, and crate `benches/`/`examples/` trees).
    pub reference_idents: BTreeSet<String>,
}

impl UsageSets {
    /// Collects identifier sets from the analyzed lint files plus the raw
    /// reference files.
    pub fn collect(files: &[FileAnalysis<'_>], references: &[WorkspaceFile]) -> Self {
        let mut non_test_by_crate: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut test_idents = BTreeSet::new();
        let mut reference_idents = BTreeSet::new();
        for fa in files {
            // Binary targets (`src/main.rs`, `src/bin/`) are separate
            // compilation units that import their sibling library by
            // package name — their usage justifies `pub` exactly like an
            // external crate's, so they count as references.
            let is_binary = matches!(fa.file.role, FileRole::Binary | FileRole::BinaryRoot);
            let per_crate = non_test_by_crate.entry(fa.crate_name().to_string()).or_default();
            for &ti in &fa.ctx.code {
                let tok = &fa.ctx.tokens[ti];
                if tok.kind != crate::lexer::TokenKind::Ident {
                    continue;
                }
                let text = tok.text(fa.ctx.src);
                if fa.ctx.in_test[ti] {
                    test_idents.insert(text.to_string());
                } else if is_binary {
                    reference_idents.insert(text.to_string());
                } else {
                    per_crate.insert(text.to_string());
                }
            }
        }
        for file in references {
            for tok in crate::lexer::tokenize(&file.src) {
                if tok.kind == crate::lexer::TokenKind::Ident {
                    reference_idents.insert(tok.text(&file.src).to_string());
                }
            }
        }
        UsageSets { non_test_by_crate, test_idents, reference_idents }
    }

    /// Whether `name`, defined in `def_crate`, is referenced anywhere that
    /// justifies `pub`: another crate's sources, any test code, or a
    /// reference file.
    pub fn justifies_pub(&self, def_crate: &str, name: &str) -> bool {
        if self.test_idents.contains(name) || self.reference_idents.contains(name) {
            return true;
        }
        self.non_test_by_crate
            .iter()
            .any(|(krate, idents)| krate != def_crate && idents.contains(name))
    }
}

/// Loads the lintable workspace sources (`crates/*/src/**/*.rs`) and the
/// reference-only sources (top-level `tests/` and `examples/`, plus each
/// crate's `benches/` and `examples/` trees) from disk.
pub(crate) fn load_workspace(
    repo: &Path,
) -> std::io::Result<(Vec<WorkspaceFile>, Vec<WorkspaceFile>)> {
    let mut lint = Vec::new();
    let mut reference = Vec::new();
    let crates_dir = repo.join("crates");
    let mut crate_dirs: Vec<std::path::PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        push_tree(repo, &crate_dir.join("src"), &mut lint);
        push_tree(repo, &crate_dir.join("tests"), &mut reference);
        push_tree(repo, &crate_dir.join("benches"), &mut reference);
        push_tree(repo, &crate_dir.join("examples"), &mut reference);
    }
    push_tree(repo, &repo.join("tests"), &mut reference);
    push_tree(repo, &repo.join("examples"), &mut reference);
    Ok((lint, reference))
}

fn push_tree(repo: &Path, dir: &Path, out: &mut Vec<WorkspaceFile>) {
    let mut files = Vec::new();
    collect_rs(dir, &mut files);
    files.sort();
    for path in files {
        let Ok(src) = std::fs::read_to_string(&path) else { continue };
        let rel = path.strip_prefix(repo).unwrap_or(&path).display().to_string();
        let role = crate::rules::role_of(&rel);
        out.push(WorkspaceFile { rel, src, role });
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else { return };
    for entry in rd.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Vec<WorkspaceFile> {
        files
            .iter()
            .map(|(rel, src)| WorkspaceFile {
                rel: rel.to_string(),
                src: src.to_string(),
                role: crate::rules::role_of(rel),
            })
            .collect()
    }

    #[test]
    fn builds_cross_crate_call_edges() {
        let files = ws(&[
            (
                "crates/cat/src/runner.rs",
                "pub fn run_x() { helper(); }\nfn helper() { catalyze::analyze_all(); }",
            ),
            ("crates/core/src/lib.rs", "pub fn analyze_all() { deep(); }\nfn deep() {}"),
        ]);
        let analyses: Vec<FileAnalysis<'_>> = files.iter().map(FileAnalysis::new).collect();
        let graph = WorkspaceGraph::build(&analyses);
        let idx =
            |q: &str| graph.fns.iter().position(|f| f.qual == q).unwrap_or_else(|| panic!("{q}"));
        let run_x = idx("cat::run_x");
        let parent = graph.reachable_from(&[run_x]);
        assert!(parent[idx("core::deep")].is_some(), "deep is reachable through two crates");
        let chain = graph.chain_to(&parent, idx("core::deep"));
        assert_eq!(chain, "cat::run_x -> cat::helper -> core::analyze_all -> core::deep");
    }

    #[test]
    fn method_calls_resolve_to_methods_only() {
        let files = ws(&[(
            "crates/a/src/lib.rs",
            "pub struct S;\nimpl S { pub fn go(&self) {} }\npub fn go() { free(); }\nfn free() {}\npub fn caller(s: &S) { s.go(); }",
        )]);
        let analyses: Vec<FileAnalysis<'_>> = files.iter().map(FileAnalysis::new).collect();
        let graph = WorkspaceGraph::build(&analyses);
        let caller = graph.fns.iter().position(|f| f.qual == "a::caller").unwrap();
        let method = graph.fns.iter().position(|f| f.qual == "a::S::go").unwrap();
        let free_go = graph.fns.iter().position(|f| f.owner.is_none() && f.name == "go").unwrap();
        assert!(graph.calls[caller].contains(&method));
        assert!(!graph.calls[caller].contains(&free_go), "`.go()` cannot be the free fn");
    }

    #[test]
    fn test_functions_are_flagged_and_not_traversed() {
        let files = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn entry() { used(); }\nfn used() {}\n#[cfg(test)]\nmod t {\n  fn helper() { super::entry(); }\n}",
        )]);
        let analyses: Vec<FileAnalysis<'_>> = files.iter().map(FileAnalysis::new).collect();
        let graph = WorkspaceGraph::build(&analyses);
        let helper = graph.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.is_test);
    }

    #[test]
    fn usage_sets_distinguish_crates_and_tests() {
        let files = ws(&[
            ("crates/a/src/lib.rs", "pub fn only_here() {}\npub fn used_by_b() {}"),
            ("crates/b/src/lib.rs", "pub fn f() { catalyze_a::used_by_b(); }"),
        ]);
        let analyses: Vec<FileAnalysis<'_>> = files.iter().map(FileAnalysis::new).collect();
        let refs = ws(&[("tests/x.rs", "fn t() { from_test(); }")]);
        let sets = UsageSets::collect(&analyses, &refs);
        assert!(sets.justifies_pub("a", "used_by_b"));
        assert!(!sets.justifies_pub("a", "only_here"));
        assert!(sets.justifies_pub("a", "from_test"), "reference files count");
    }
}
