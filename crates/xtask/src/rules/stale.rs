//! R004 — stale `// lint: allow(…)` annotations.
//!
//! An annotation earns its keep by suppressing a finding on its own line
//! or the line below. After every other rule has run, any annotation that
//! suppressed nothing is dead weight: the code it excused was fixed or
//! moved, the rule no longer fires there, or the kind is misspelled. Dead
//! annotations rot into misinformation, so they are errors — the mirror
//! of clippy's `unfulfilled_lint_expectations` for `#[expect]`.

use super::FileContext;
use catalyze_check::{Diagnostic, Severity};

/// Reports every unused annotation in the file. Runs after suppression
/// resolution; R004 itself cannot be annotated away.
pub fn check(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    ctx.annotations
        .iter()
        .filter(|a| !a.used)
        .map(|a| {
            Diagnostic::new(
                "R004",
                Severity::Error,
                format!("{}:{}:{}", ctx.rel, a.span.line, a.span.column),
                format!(
                    "stale `// lint: allow({})` annotation: nothing on this or the next \
                     line for it to suppress",
                    a.kind
                ),
            )
            .with_suggestion("delete the annotation, or fix its kind if a finding was intended")
            .with_span(a.span)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_source, FileRole};

    fn rules(src: &str) -> Vec<String> {
        lint_source("crates/x/src/a.rs", src, FileRole::Library)
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn unused_annotation_is_stale() {
        let src = "fn f() -> u8 {\n  // lint: allow(panic): nothing panics here anymore\n  0\n}";
        assert_eq!(rules(src), vec!["R004"]);
    }

    #[test]
    fn wrong_kind_is_stale_and_the_finding_still_fires() {
        let src = "fn f() { x.unwrap(); // lint: allow(float_cmp): wrong kind\n}";
        let got = rules(src);
        assert!(got.contains(&"R001".to_string()));
        assert!(got.contains(&"R004".to_string()));
    }

    #[test]
    fn used_annotation_is_not_stale() {
        let src = "fn f() { x.unwrap(); // lint: allow(panic): infallible by construction\n}";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn annotation_inside_test_code_is_stale() {
        // Rules skip test items, so an annotation there suppresses nothing.
        let src = "#[cfg(test)]\nmod t {\n  fn f() { x.unwrap(); // lint: allow(panic): in a test\n  }\n}\nfn g() {}";
        assert_eq!(rules(src), vec!["R004"]);
    }

    #[test]
    fn doc_comment_mentions_are_not_annotations() {
        let src = "/// Use `// lint: allow(panic): reason` to excuse a panic.\nfn f() {}";
        assert!(rules(src).is_empty());
    }
}
