//! R003 — crate-root lint headers.
//!
//! Library roots (`lib.rs`) must carry `#![warn(missing_docs)]` and
//! `#![forbid(unsafe_code)]`; binary roots (`main.rs`) must carry
//! `#![forbid(unsafe_code)]`. The check reads the file's leading inner
//! attributes from the token stream, so a commented-out attribute or one
//! quoted in a doc comment never satisfies it (both defeated the
//! line-based scanner's `starts_with` test).

use super::{FileContext, FileRole, Finding};
use catalyze_check::{Diagnostic, Severity};

/// Scans a crate root. Suppression kind: `crate_header` (in practice the
/// header is added, not annotated away).
pub fn check(ctx: &FileContext<'_>) -> Vec<Finding> {
    let required: &[&str] = match ctx.role {
        FileRole::LibraryRoot => &["warn(missing_docs)", "forbid(unsafe_code)"],
        FileRole::BinaryRoot => &["forbid(unsafe_code)"],
        _ => return Vec::new(),
    };
    let present = leading_inner_attributes(ctx);
    let mut out = Vec::new();
    for attr in required {
        if !present.iter().any(|p| p == attr) {
            out.push(Finding {
                kind: "crate_header",
                diag: Diagnostic::new(
                    "R003",
                    Severity::Error,
                    format!("{}:1:1", ctx.rel),
                    format!("crate root is missing `#![{attr}]`"),
                )
                .with_suggestion("add the attribute to the crate-root lint header"),
            });
        }
    }
    out
}

/// The file's leading `#![…]` attributes, whitespace-normalized (code
/// token texts concatenated).
fn leading_inner_attributes(ctx: &FileContext<'_>) -> Vec<String> {
    let mut out = Vec::new();
    let mut c = 0;
    while ctx.code_text(c) == "#" && ctx.code_text(c + 1) == "!" && ctx.code_text(c + 2) == "[" {
        let Some(end) = super::matching(ctx.src, &ctx.tokens, &ctx.code, c + 2, "[", "]") else {
            break;
        };
        let body: String = (c + 3..end).map(|b| ctx.code_text(b)).collect();
        out.push(body);
        c = end + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_source, FileRole};

    fn r003_count(src: &str, role: FileRole) -> usize {
        lint_source("crates/x/src/lib.rs", src, role).iter().filter(|d| d.rule == "R003").count()
    }

    #[test]
    fn complete_library_header_passes() {
        let src = "//! Docs.\n#![warn(missing_docs)]\n#![forbid(unsafe_code)]\npub fn f() {}";
        assert_eq!(r003_count(src, FileRole::LibraryRoot), 0);
    }

    #[test]
    fn missing_attributes_are_counted() {
        assert_eq!(r003_count("pub fn f() {}", FileRole::LibraryRoot), 2);
        assert_eq!(r003_count("#![forbid(unsafe_code)]\npub fn f() {}", FileRole::LibraryRoot), 1);
        assert_eq!(r003_count("fn main() {}", FileRole::BinaryRoot), 1);
    }

    #[test]
    fn commented_out_attribute_does_not_satisfy() {
        let src = "// #![forbid(unsafe_code)]\n//! #![warn(missing_docs)]\nfn main() {}";
        assert_eq!(r003_count(src, FileRole::BinaryRoot), 1);
    }

    #[test]
    fn non_roots_are_not_checked() {
        assert_eq!(r003_count("pub fn f() {}", FileRole::Library), 0);
    }
}
