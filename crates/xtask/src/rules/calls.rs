//! R001 — panic-family calls in library non-test code.
//!
//! Flags `.unwrap()` / `.expect(…)` method calls and `panic!` /
//! `unreachable!` / `todo!` / `unimplemented!` macro invocations. Because
//! the scan runs on the token stream, a `panic!` inside a string literal,
//! raw string, or comment is never a finding — the lexer already
//! classified it as non-code.

use super::{FileContext, Finding};

const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Scans one file. Suppression kind: `panic`.
pub fn check(ctx: &FileContext<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for c in 0..ctx.code.len() {
        if ctx.code_in_test(c) {
            continue;
        }
        let name = ctx.code_text(c);
        let prev = if c == 0 { "" } else { ctx.code_text(c - 1) };
        if PANIC_METHODS.contains(&name) && prev == "." && ctx.code_text(c + 1) == "(" {
            out.push(Finding {
                kind: "panic",
                diag: ctx
                    .diagnostic_at(c, "R001", format!("`.{name}()` in library code"))
                    .with_suggestion(
                        "return a Result, or annotate the line with \
                         `// lint: allow(panic): <reason>`",
                    ),
            });
        }
        if PANIC_MACROS.contains(&name) && ctx.code_text(c + 1) == "!" && prev != "." {
            out.push(Finding {
                kind: "panic",
                diag: ctx
                    .diagnostic_at(c, "R001", format!("`{name}!` in library code"))
                    .with_suggestion(
                        "return a Result, or annotate the line with \
                         `// lint: allow(panic): <reason>`",
                    ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_source, FileRole};

    fn rules(src: &str) -> Vec<String> {
        lint_source("crates/x/src/a.rs", src, FileRole::Library)
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn unwrap_and_macros_are_flagged() {
        assert_eq!(rules("fn f() { x.unwrap(); }"), vec!["R001"]);
        assert_eq!(rules("fn f() { panic!(\"boom\"); }"), vec!["R001"]);
        assert_eq!(rules("fn f() { core::unreachable!(); }"), vec!["R001"]);
    }

    #[test]
    fn strings_and_comments_do_not_count() {
        assert!(rules("fn f() -> &'static str { \"panic!(.unwrap())\" }").is_empty());
        assert!(rules("// panic! in a comment\nfn f() {}").is_empty());
        assert!(rules("fn f() -> String { format!(\"x{}\", r#\"panic!\"#) }").is_empty());
    }

    #[test]
    fn related_names_do_not_count() {
        assert!(rules("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }").is_empty());
        assert!(rules("#[should_panic]\nfn f() {}").is_empty());
    }

    #[test]
    fn annotation_with_reason_suppresses() {
        let src = "fn f() { x.unwrap(); // lint: allow(panic): cannot fail\n}";
        assert!(rules(src).is_empty());
        let above = "fn f() {\n  // lint: allow(panic): cannot fail\n  x.unwrap();\n}";
        assert!(rules(above).is_empty());
        let bare = "fn f() { x.unwrap(); // lint: allow(panic):\n}";
        assert_eq!(rules(bare), vec!["R001"]);
    }
}
