//! R010 — call-graph-aware panic escalation.
//!
//! R001 asks "is this panic site annotated"; R010 asks the sharper
//! question "can a long-running service request actually hit it". The
//! entry set is declared here, not inferred:
//!
//! * `AnalysisRequest::run` — the library analysis pipeline;
//! * the CAT runners (`cat` crate functions named `run_*`);
//! * the CLI entry point (`cli` crate free `main`).
//!
//! Every non-test library function transitively reachable from an entry
//! (per the approximate call graph in [`crate::graph`]) is scanned for:
//!
//! * **panic sites** — `.unwrap()` / `.expect()` calls and `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` macros (same detection as
//!   R001);
//! * **caller-controlled indexing** — a bracket-index expression whose
//!   index mentions a *parameter of the enclosing function*. Plain
//!   internal indexing (`m.data[k]` over a locally computed `k`) is
//!   deliberately out of scope: the 200+ such sites in the numeric kernels
//!   are bounds-established loops, and flagging them would bury the
//!   signal. A parameter flowing through a local before indexing is a
//!   known false negative (documented in DESIGN.md §7).
//!
//! Each finding carries the witness call chain from the entry point.
//! Suppression kind: `reachable_panic` — sites that are both annotated for
//! R001 and reachable need the multi-kind form
//! `// lint: allow(panic, reachable_panic): <reason>`.

use super::Finding;
use crate::graph::{FileAnalysis, WorkspaceGraph};
use crate::lexer::TokenKind;

const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
/// Keyword idents that can precede `[` without it being an index
/// expression (`return [a, b]` is an array literal).
const NOT_INDEX_PREV: [&str; 10] =
    ["return", "in", "else", "match", "if", "while", "break", "move", "mut", "ref"];

/// The declared service entry points, as indices into `graph.fns`.
pub fn entries(graph: &WorkspaceGraph) -> Vec<usize> {
    graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            (f.owner.as_deref() == Some("AnalysisRequest") && f.name == "run")
                || (f.crate_name == "cat" && f.owner.is_none() && f.name.starts_with("run_"))
                || (f.crate_name == "cli" && f.owner.is_none() && f.name == "main")
        })
        .map(|(i, _)| i)
        .collect()
}

/// Runs R010 over every function reachable from the entry set.
pub fn check(analyses: &[FileAnalysis<'_>], graph: &WorkspaceGraph) -> Vec<(usize, Finding)> {
    let parent = graph.reachable_from(&entries(graph));
    let mut out = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if parent[i].is_none() || f.is_test {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        let fa = &analyses[f.file];
        if !fa.file.role.panic_and_cast_rules_apply() {
            continue; // binaries may panic at the edge of the process
        }
        let chain = graph.chain_to(&parent, i);
        for c in open + 1..close {
            if fa.ctx.code_in_test(c) {
                continue;
            }
            let t = fa.ctx.code_text(c);
            let prev = if c == 0 { "" } else { fa.ctx.code_text(c - 1) };
            if PANIC_METHODS.contains(&t) && prev == "." && fa.ctx.code_text(c + 1) == "(" {
                out.push((f.file, finding(fa, c, format!("`.{t}()` may panic"), &chain)));
            } else if PANIC_MACROS.contains(&t) && fa.ctx.code_text(c + 1) == "!" && prev != "." {
                out.push((f.file, finding(fa, c, format!("`{t}!` panics"), &chain)));
            } else if t == "[" {
                if let Some(p) = caller_controlled_index(fa, c, prev, &f.params) {
                    out.push((
                        f.file,
                        finding(
                            fa,
                            p,
                            format!(
                                "index expression uses caller-controlled parameter `{}` \
                                 and may panic out of bounds",
                                fa.ctx.code_text(p)
                            ),
                            &chain,
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// When the `[` at `c` opens an index expression whose index mentions a
/// parameter of the enclosing function, returns the code index of the
/// first such parameter mention.
fn caller_controlled_index(
    fa: &FileAnalysis<'_>,
    c: usize,
    prev: &str,
    params: &[String],
) -> Option<usize> {
    if params.is_empty() {
        return None;
    }
    // Expression position: the bracket follows a value (identifier, `)`,
    // or `]`), not a type/pattern/attribute context.
    let prev_is_value = prev == ")"
        || prev == "]"
        || (fa.ctx.code_token(c - 1).map(|t| t.kind) == Some(TokenKind::Ident)
            && !NOT_INDEX_PREV.contains(&prev));
    if c == 0 || !prev_is_value {
        return None;
    }
    // Find the matching `]` and scan the index expression for parameters.
    let mut depth = 0usize;
    let mut d = c;
    while d < fa.ctx.code.len() {
        match fa.ctx.code_text(d) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            t => {
                if fa.ctx.code_token(d).map(|t| t.kind) == Some(TokenKind::Ident)
                    && params.iter().any(|p| p == t)
                    && fa.ctx.code_text(d.wrapping_sub(1)) != "."
                    && fa.ctx.code_text(d.wrapping_sub(1)) != "::"
                {
                    return Some(d);
                }
            }
        }
        d += 1;
    }
    None
}

fn finding(fa: &FileAnalysis<'_>, c: usize, what: String, chain: &str) -> Finding {
    Finding {
        kind: "reachable_panic",
        diag: fa
            .ctx
            .diagnostic_at(c, "R010", format!("{what}; reachable from service entry: {chain}"))
            .with_suggestion(
                "return a typed error along this path, or annotate with \
                 `// lint: allow(reachable_panic): <reason>`",
            ),
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::{FileAnalysis, WorkspaceFile, WorkspaceGraph};
    use crate::rules::role_of;

    fn run(files: &[(&str, &str)]) -> Vec<(usize, String)> {
        let files: Vec<WorkspaceFile> = files
            .iter()
            .map(|(rel, src)| WorkspaceFile {
                rel: rel.to_string(),
                src: src.to_string(),
                role: role_of(rel),
            })
            .collect();
        let analyses: Vec<FileAnalysis<'_>> = files.iter().map(FileAnalysis::new).collect();
        let graph = WorkspaceGraph::build(&analyses);
        super::check(&analyses, &graph)
            .into_iter()
            .map(|(_, f)| (f.diag.span.map(|s| s.line).unwrap_or(0), f.diag.message))
            .collect()
    }

    #[test]
    fn unwrap_reachable_from_runner_is_flagged_with_chain() {
        let got = run(&[
            ("crates/cat/src/runner.rs", "pub fn run_x() { catalyze::step(); }"),
            (
                "crates/core/src/lib.rs",
                "pub fn step() { inner(); }\nfn inner() { maybe().unwrap(); }",
            ),
        ]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, 2);
        assert!(got[0].1.contains("`.unwrap()`"), "{}", got[0].1);
        assert!(got[0].1.contains("cat::run_x -> core::step -> core::inner"), "{}", got[0].1);
    }

    #[test]
    fn unreachable_code_is_not_flagged() {
        let got = run(&[
            ("crates/cat/src/runner.rs", "pub fn run_x() {}"),
            ("crates/core/src/lib.rs", "pub fn orphan() { maybe().unwrap(); }"),
        ]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn caller_controlled_index_is_flagged_internal_index_is_not() {
        let got = run(&[
            ("crates/cat/src/runner.rs", "pub fn run_x() { catalyze::pick(xs, 0); }"),
            (
                "crates/core/src/lib.rs",
                "pub fn pick(xs: &[f64], i: usize) -> f64 {\n\
                 let k = 0;\n\
                 let _internal = xs[k];\n\
                 xs[i]\n}",
            ),
        ]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, 4);
        assert!(got[0].1.contains("caller-controlled parameter `i`"), "{}", got[0].1);
    }

    #[test]
    fn panic_macro_behind_entry_main_is_flagged() {
        let got = run(&[
            ("crates/cli/src/main.rs", "fn main() { catalyze::go(); }"),
            ("crates/core/src/lib.rs", "pub fn go() { panic!(\"boom\"); }"),
        ]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].1.contains("`panic!`"), "{}", got[0].1);
        assert!(got[0].1.contains("cli::main -> core::go"), "{}", got[0].1);
    }

    #[test]
    fn binary_and_test_code_stay_exempt() {
        let got = run(&[
            // main.rs is BinaryRoot: its own unwraps are edge-of-process.
            ("crates/cli/src/main.rs", "fn main() { opt().unwrap(); }"),
            (
                "crates/core/src/lib.rs",
                "pub fn go() {}\n#[cfg(test)]\nmod t { fn f() { maybe().unwrap(); } }",
            ),
        ]);
        assert!(got.is_empty(), "{got:?}");
    }
}
