//! R007 — raw `Instant::now()` outside the observability crate.
//!
//! Wall-clock reads scattered through library code bypass the repository's
//! instrumentation layer: they cannot be aggregated by the metrics
//! registry, they make functions untestable against the manual clock, and
//! they tempt ad-hoc `println!` timing that drifts out of the artifacts CI
//! gates on. Timing belongs in `catalyze-obs` (spans, `TraceCollector`) or
//! behind one of the few audited counters.
//!
//! The rule fires on the token sequence `Instant :: now (` anywhere
//! outside `crates/obs/` (which *is* the clock abstraction) and outside
//! test code. Justified sites — the relaxed-atomic kernel timers feeding
//! `stats::snapshot()`, the benchmark harness's best-of loop — carry a
//! `// lint: allow(raw_timing): <reason>` annotation.

use super::{FileContext, Finding};

/// Scans one file. Suppression kind: `raw_timing`.
pub fn check(ctx: &FileContext<'_>) -> Vec<Finding> {
    if ctx.rel.starts_with("crates/obs/") {
        return Vec::new(); // the clock abstraction itself
    }
    let mut out = Vec::new();
    for c in 0..ctx.code.len() {
        if ctx.code_in_test(c) {
            continue;
        }
        if ctx.code_text(c) == "Instant"
            && ctx.code_text(c + 1) == "::"
            && ctx.code_text(c + 2) == "now"
            && ctx.code_text(c + 3) == "("
        {
            out.push(Finding {
                kind: "raw_timing",
                diag: ctx
                    .diagnostic_at(
                        c,
                        "R007",
                        "raw Instant::now() outside crates/obs bypasses the \
                         observability layer",
                    )
                    .with_suggestion(
                        "time the section with a catalyze-obs span (or counter) so it \
                         aggregates and diffs, or annotate with \
                         `// lint: allow(raw_timing): <reason>`",
                    ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_source, FileRole};

    fn rules(rel: &str, src: &str) -> Vec<String> {
        lint_source(rel, src, FileRole::Library).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn raw_now_is_flagged_in_library_and_binary_code() {
        let src = "use std::time::Instant;\n\
                   fn f() -> u128 {\n\
                   let start = Instant::now();\n\
                   start.elapsed().as_nanos()\n}";
        assert_eq!(rules("crates/x/src/a.rs", src), vec!["R007"]);
        // Binaries are not exempt: ad-hoc timing in `repro` would still
        // drift from the gated artifacts.
        let bin: Vec<String> = lint_source("crates/x/src/bin/tool.rs", src, FileRole::Binary)
            .into_iter()
            .map(|d| d.rule)
            .collect();
        assert_eq!(bin, vec!["R007"]);
        // Fully qualified paths still end in the same token sequence.
        let qualified = "fn f() -> std::time::Instant {\n\
                         std::time::Instant::now()\n}";
        assert_eq!(rules("crates/x/src/a.rs", qualified), vec!["R007"]);
    }

    #[test]
    fn obs_crate_and_tests_are_exempt() {
        let src = "use std::time::Instant;\n\
                   fn f() -> Instant {\n\
                   Instant::now()\n}";
        assert!(rules("crates/obs/src/collector.rs", src).is_empty());
        let test_code = "#[cfg(test)]\nmod tests {\n\
                         #[test]\nfn t() {\n\
                         let _ = std::time::Instant::now();\n}\n}";
        assert!(rules("crates/x/src/a.rs", test_code).is_empty());
    }

    #[test]
    fn other_instant_uses_pass() {
        // Mentioning the type, storing one, or calling elapsed is fine —
        // only the raw clock read fires.
        let src = "use std::time::Instant;\n\
                   pub fn since(epoch: Instant) -> u128 {\n\
                   epoch.elapsed().as_nanos()\n}";
        assert!(rules("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn annotation_suppresses() {
        let src = "use std::time::Instant;\n\
                   fn f() -> u128 {\n\
                   // lint: allow(raw_timing): feeds the relaxed-atomic kernel counters\n\
                   let start = Instant::now();\n\
                   start.elapsed().as_nanos()\n}";
        assert!(rules("crates/x/src/a.rs", src).is_empty());
    }
}
