//! R011 — dead public API.
//!
//! A `pub` item widens the crate's contract; if nothing outside the crate
//! exercises it, the visibility is a lie the compiler can never call out.
//! This rule flags top-level `pub` items (functions, types, traits,
//! consts, statics, modules, macros) in library code whose *name* is
//! referenced by no other workspace crate, no test code, and no reference
//! file (top-level `tests/`/`examples/`, crate `benches/`/`examples/`).
//!
//! Resolution is name-based on purpose — over-inclusive on the usage side
//! (any mention of the identifier anywhere justifies the `pub`), which
//! keeps false positives near zero at the cost of missing dead items that
//! share a name with a live one. Items are exempt when:
//!
//! * they carry restricted visibility (`pub(crate)`, `pub(super)`) —
//!   already narrowed;
//! * they sit inside an `impl` or `trait` block (method visibility is
//!   part of the type's contract, and trait items are required by the
//!   trait);
//! * they are test-masked.
//!
//! Suppression kind: `dead_api` — for items that are deliberate public
//! surface ahead of planned callers.

use super::Finding;
use crate::graph::{FileAnalysis, UsageSets};
use crate::parser::{Item, ItemKind};

/// Runs R011 over the analyzed files against the collected usage sets.
pub fn check(analyses: &[FileAnalysis<'_>], usage: &UsageSets) -> Vec<(usize, Finding)> {
    let mut out = Vec::new();
    for (fi, fa) in analyses.iter().enumerate() {
        let krate = fa.crate_name();
        if krate.is_empty() || !fa.file.role.panic_and_cast_rules_apply() {
            continue;
        }
        fa.tree.walk(|path, item| {
            if !item.is_pub || item.name.is_empty() {
                return;
            }
            if path
                .iter()
                .any(|p| matches!(p.kind, ItemKind::Impl { .. }) || p.kind == ItemKind::Trait)
            {
                return;
            }
            let Some(kind_word) = kind_word(&item.kind) else { return };
            if is_test_item(fa, item) || has_restricted_visibility(fa, item) {
                return;
            }
            if usage.justifies_pub(krate, &item.name) {
                return;
            }
            out.push((
                fi,
                Finding {
                    kind: "dead_api",
                    diag: fa
                        .ctx
                        .diagnostic_at(
                            item.name_code,
                            "R011",
                            format!(
                                "`pub {kind_word} {}` is referenced by no other workspace \
                                 crate, test, example, or bench",
                                item.name
                            ),
                        )
                        .with_suggestion(
                            "narrow it to pub(crate), remove it, or annotate with \
                             `// lint: allow(dead_api): <reason>` if it is deliberate \
                             public surface",
                        ),
                },
            ));
        });
    }
    out
}

/// The keyword to print for a flaggable item kind; `None` for kinds R011
/// does not police (`use`, `impl`, foreign blocks, recovery items).
fn kind_word(kind: &ItemKind) -> Option<&'static str> {
    Some(match kind {
        ItemKind::Fn => "fn",
        ItemKind::Struct => "struct",
        ItemKind::Enum => "enum",
        ItemKind::Union => "union",
        ItemKind::Trait => "trait",
        ItemKind::TypeAlias => "type",
        ItemKind::Const => "const",
        ItemKind::Static => "static",
        ItemKind::Mod => "mod",
        ItemKind::MacroDef => "macro",
        _ => return None,
    })
}

/// Whether the item's name token sits inside the file's test mask.
fn is_test_item(fa: &FileAnalysis<'_>, item: &Item) -> bool {
    fa.ctx.code.get(item.name_code).is_some_and(|&ti| fa.ctx.in_test[ti])
}

/// Whether the item's visibility is a restricted `pub(…)` form. The
/// parser records only "has pub"; the restriction is read back from the
/// tokens preceding the name.
fn has_restricted_visibility(fa: &FileAnalysis<'_>, item: &Item) -> bool {
    let start = item.name_code.saturating_sub(12);
    for c in start..item.name_code {
        if fa.ctx.code_text(c) == "pub" && fa.ctx.code_text(c + 1) == "(" {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::graph::{FileAnalysis, UsageSets, WorkspaceFile};
    use crate::rules::role_of;

    fn run(files: &[(&str, &str)], references: &[(&str, &str)]) -> Vec<(usize, String)> {
        let files: Vec<WorkspaceFile> = files
            .iter()
            .map(|(rel, src)| WorkspaceFile {
                rel: rel.to_string(),
                src: src.to_string(),
                role: role_of(rel),
            })
            .collect();
        let refs: Vec<WorkspaceFile> = references
            .iter()
            .map(|(rel, src)| WorkspaceFile {
                rel: rel.to_string(),
                src: src.to_string(),
                role: role_of(rel),
            })
            .collect();
        let analyses: Vec<FileAnalysis<'_>> = files.iter().map(FileAnalysis::new).collect();
        let usage = UsageSets::collect(&analyses, &refs);
        super::check(&analyses, &usage)
            .into_iter()
            .map(|(_, f)| (f.diag.span.map(|s| s.line).unwrap_or(0), f.diag.message))
            .collect()
    }

    #[test]
    fn unreferenced_pub_fn_is_flagged_referenced_one_is_not() {
        let got = run(
            &[
                ("crates/a/src/lib.rs", "pub fn used_elsewhere() {}\npub fn orphan() {}"),
                ("crates/b/src/lib.rs", "pub fn f() { catalyze_a::used_elsewhere(); }"),
            ],
            &[],
        );
        let orphans: Vec<&(usize, String)> =
            got.iter().filter(|f| f.1.contains("orphan")).collect();
        assert_eq!(orphans.len(), 1, "{got:?}");
        assert_eq!(orphans[0].0, 2);
        assert!(!got.iter().any(|f| f.1.contains("used_elsewhere")), "{got:?}");
    }

    #[test]
    fn tests_benches_and_examples_justify_pub() {
        let got = run(
            &[(
                "crates/a/src/lib.rs",
                "pub fn from_bench() {}\npub fn from_test() {}\n\
                 #[cfg(test)]\nmod t { fn f() { super::from_test(); } }",
            )],
            &[("crates/a/benches/b.rs", "fn main() { catalyze_a::from_bench(); }")],
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn restricted_visibility_and_impl_methods_are_exempt() {
        let got = run(
            &[(
                "crates/a/src/lib.rs",
                "pub(crate) fn narrow() {}\n\
                 pub struct S;\nimpl S { pub fn method_only_here(&self) {} }\n\
                 pub trait T { fn item(&self); }",
            )],
            &[("tests/t.rs", "fn f() { use catalyze_a::{S, T}; }")],
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn binary_files_are_exempt() {
        let got = run(&[("crates/a/src/main.rs", "pub fn helper() {}\nfn main() {}")], &[]);
        assert!(got.is_empty(), "{got:?}");
    }
}
