//! R009 — crate-layering enforcement from a declarative dependency DAG.
//!
//! The policy file (`crates/xtask/layering.lint`) declares, for every
//! workspace crate, the crate directories it is allowed to depend on:
//!
//! ```text
//! # <dir> <import-ident> -> <allowed dep dirs…>
//! events catalyze_events ->
//! core   catalyze        -> linalg events obs
//! ```
//!
//! The format is deliberately plain text parsed by hand — no config-file
//! dependency. [`LayeringPolicy::parse`] validates the declaration itself
//! (duplicate rows, unknown dependency directories, self-dependencies,
//! cycles — the allowed-dependency relation must stay a DAG), and
//! [`check`] then flags every non-test reference to another workspace
//! crate's import identifier (`use catalyze_cli…`, `catalyze_cli::…`) that
//! the declaration does not allow. Crates present in the workspace but
//! absent from the policy are themselves findings: the DAG must stay
//! total.

use super::Finding;
use crate::graph::FileAnalysis;
use crate::lexer::TokenKind;
use std::collections::{BTreeMap, BTreeSet};

/// One crate row of the layering declaration.
#[derive(Debug, Clone)]
// lint: allow(dead_api): entry type in LayeringPolicy's public accessors, which the lint tests use
pub struct LayerEntry {
    /// Crate directory under `crates/` (`core`, `cli`, …).
    pub dir: String,
    /// The identifier other crates import it by (`catalyze`,
    /// `catalyze_cli`, …).
    pub import: String,
    /// Crate directories this crate may depend on (direct deps only).
    pub allowed: BTreeSet<String>,
}

/// The parsed allowed-dependency DAG.
#[derive(Debug, Clone, Default)]
pub struct LayeringPolicy {
    entries: Vec<LayerEntry>,
}

impl LayeringPolicy {
    /// Parses and validates the declaration text. On failure, returns
    /// human-readable problems (one per line-level or graph-level error).
    pub fn parse(text: &str) -> Result<LayeringPolicy, Vec<String>> {
        let mut entries: Vec<LayerEntry> = Vec::new();
        let mut problems = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((head, deps)) = line.split_once("->") else {
                problems.push(format!("line {}: expected `<dir> <import> -> <deps…>`", ln + 1));
                continue;
            };
            let head: Vec<&str> = head.split_whitespace().collect();
            let [dir, import] = head[..] else {
                problems.push(format!(
                    "line {}: expected exactly `<dir> <import>` before `->`",
                    ln + 1
                ));
                continue;
            };
            if entries.iter().any(|e| e.dir == dir) {
                problems.push(format!("line {}: duplicate crate `{dir}`", ln + 1));
                continue;
            }
            if entries.iter().any(|e| e.import == import) {
                problems.push(format!("line {}: duplicate import ident `{import}`", ln + 1));
                continue;
            }
            let allowed: BTreeSet<String> = deps.split_whitespace().map(str::to_string).collect();
            if allowed.contains(dir) {
                problems.push(format!("line {}: `{dir}` lists itself as a dependency", ln + 1));
                continue;
            }
            entries.push(LayerEntry { dir: dir.to_string(), import: import.to_string(), allowed });
        }
        let dirs: BTreeSet<&str> = entries.iter().map(|e| e.dir.as_str()).collect();
        for e in &entries {
            for d in &e.allowed {
                if !dirs.contains(d.as_str()) {
                    problems.push(format!("crate `{}` allows unknown dependency `{d}`", e.dir));
                }
            }
        }
        if let Some(cycle) = find_cycle(&entries) {
            problems.push(format!(
                "allowed-dependency graph is not a DAG: cycle {}",
                cycle.join(" -> ")
            ));
        }
        if problems.is_empty() {
            Ok(LayeringPolicy { entries })
        } else {
            Err(problems)
        }
    }

    /// Row for a crate directory.
    pub fn entry(&self, dir: &str) -> Option<&LayerEntry> {
        self.entries.iter().find(|e| e.dir == dir)
    }

    /// Row matching an import identifier.
    pub fn by_import(&self, import: &str) -> Option<&LayerEntry> {
        self.entries.iter().find(|e| e.import == import)
    }

    /// All declared crate rows.
    pub fn entries(&self) -> &[LayerEntry] {
        &self.entries
    }
}

/// DFS cycle detection over the allowed-dependency edges.
fn find_cycle(entries: &[LayerEntry]) -> Option<Vec<String>> {
    let index: BTreeMap<&str, usize> =
        entries.iter().enumerate().map(|(i, e)| (e.dir.as_str(), i)).collect();
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; entries.len()];
    let mut stack: Vec<usize> = Vec::new();
    fn dfs(
        i: usize,
        entries: &[LayerEntry],
        index: &BTreeMap<&str, usize>,
        state: &mut [u8],
        stack: &mut Vec<usize>,
    ) -> Option<Vec<String>> {
        state[i] = 1;
        stack.push(i);
        for d in &entries[i].allowed {
            let Some(&j) = index.get(d.as_str()) else { continue };
            match state[j] {
                1 => {
                    let from = stack.iter().position(|&s| s == j).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[from..].iter().map(|&s| entries[s].dir.clone()).collect();
                    cycle.push(entries[j].dir.clone());
                    return Some(cycle);
                }
                0 => {
                    if let Some(c) = dfs(j, entries, index, state, stack) {
                        return Some(c);
                    }
                }
                _ => {}
            }
        }
        stack.pop();
        state[i] = 2;
        None
    }
    for i in 0..entries.len() {
        if state[i] == 0 {
            if let Some(c) = dfs(i, entries, &index, &mut state, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

/// Runs R009 over the analyzed files. Findings carry suppression kind
/// `layering`.
pub(crate) fn check(
    analyses: &[FileAnalysis<'_>],
    policy: &LayeringPolicy,
) -> Vec<(usize, Finding)> {
    let mut out = Vec::new();
    let mut missing_reported: BTreeSet<String> = BTreeSet::new();
    for (fi, fa) in analyses.iter().enumerate() {
        let dir = fa.crate_name();
        if dir.is_empty() {
            continue;
        }
        let Some(entry) = policy.entry(dir) else {
            if missing_reported.insert(dir.to_string()) {
                out.push((
                    fi,
                    Finding {
                        kind: "layering",
                        diag: fa
                            .ctx
                            .diagnostic_at(
                                0,
                                "R009",
                                format!(
                                    "crate `{dir}` is missing from the layering policy \
                                     (crates/xtask/layering.lint)"
                                ),
                            )
                            .with_suggestion("add a `<dir> <import> -> <deps…>` row for it"),
                    },
                ));
            }
            continue;
        };
        for c in 0..fa.ctx.code.len() {
            if fa.ctx.code_in_test(c) {
                continue;
            }
            if fa.ctx.code_token(c).map(|t| t.kind) != Some(TokenKind::Ident) {
                continue;
            }
            let ident = fa.ctx.code_text(c);
            let Some(target) = policy.by_import(ident) else { continue };
            if target.dir == dir {
                continue;
            }
            // Only import positions count: `use <ident>…` or `<ident>::…`.
            let prev = if c == 0 { "" } else { fa.ctx.code_text(c - 1) };
            let is_import = prev == "use" || fa.ctx.code_text(c + 1) == "::";
            if !is_import || prev == "::" || prev == "." {
                continue;
            }
            if entry.allowed.contains(&target.dir) {
                continue;
            }
            let allowed = if entry.allowed.is_empty() {
                "none (leaf crate)".to_string()
            } else {
                entry.allowed.iter().cloned().collect::<Vec<_>>().join(", ")
            };
            out.push((
                fi,
                Finding {
                    kind: "layering",
                    diag: fa
                        .ctx
                        .diagnostic_at(
                            c,
                            "R009",
                            format!(
                                "layering violation: crate `{dir}` must not depend on \
                                 `{}` (`{ident}`); allowed dependencies: {allowed}",
                                target.dir
                            ),
                        )
                        .with_suggestion(
                            "move the code to a crate that may take this dependency, or \
                             change the layering DAG deliberately",
                        ),
                },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WorkspaceFile;
    use crate::rules::role_of;

    const POLICY: &str = "\
        # workspace layering\n\
        events catalyze_events ->\n\
        obs    catalyze_obs    ->\n\
        core   catalyze        -> events obs\n\
        cli    catalyze_cli    -> core events obs\n";

    fn run(policy: &str, files: &[(&str, &str)]) -> Vec<(String, usize, usize, String)> {
        let policy = LayeringPolicy::parse(policy).expect("policy parses");
        let files: Vec<WorkspaceFile> = files
            .iter()
            .map(|(rel, src)| WorkspaceFile {
                rel: rel.to_string(),
                src: src.to_string(),
                role: role_of(rel),
            })
            .collect();
        let analyses: Vec<FileAnalysis<'_>> = files.iter().map(FileAnalysis::new).collect();
        check(&analyses, &policy)
            .into_iter()
            .map(|(_, f)| {
                let s = f.diag.span.unwrap();
                (f.diag.rule, s.line, s.column, f.diag.message)
            })
            .collect()
    }

    #[test]
    fn allowed_and_own_crate_imports_are_silent() {
        let got = run(
            POLICY,
            &[(
                "crates/core/src/lib.rs",
                "use catalyze_events::Event;\nuse catalyze_obs::Observer;\n\
                 pub fn f() { catalyze_events::emit(); }",
            )],
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn forbidden_import_is_flagged_with_exact_span() {
        let got = run(POLICY, &[("crates/core/src/pipeline.rs", "use catalyze_cli::Args;\n")]);
        assert_eq!(got.len(), 1);
        let (rule, line, column, msg) = &got[0];
        assert_eq!((rule.as_str(), *line, *column), ("R009", 1, 5));
        assert!(msg.contains("must not depend on `cli`"), "{msg}");
    }

    #[test]
    fn leaf_crate_may_import_nothing() {
        let got =
            run(POLICY, &[("crates/events/src/lib.rs", "pub fn f() { catalyze_obs::tick(); }")]);
        assert_eq!(got.len(), 1);
        assert!(got[0].3.contains("none (leaf crate)"), "{}", got[0].3);
    }

    #[test]
    fn test_code_is_exempt() {
        let got = run(
            POLICY,
            &[("crates/events/src/lib.rs", "#[cfg(test)]\nmod t { use catalyze_cli::Args; }")],
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn undeclared_crate_is_flagged_once() {
        let got = run(POLICY, &[("crates/mystery/src/lib.rs", "pub fn f() {}")]);
        assert_eq!(got.len(), 1);
        assert!(got[0].3.contains("missing from the layering policy"), "{}", got[0].3);
    }

    #[test]
    fn policy_validation_catches_cycles_and_unknowns() {
        let err = LayeringPolicy::parse("a ia -> b\nb ib -> a\n").unwrap_err();
        assert!(err.iter().any(|p| p.contains("cycle")), "{err:?}");
        let err = LayeringPolicy::parse("a ia -> ghost\n").unwrap_err();
        assert!(err.iter().any(|p| p.contains("unknown dependency `ghost`")), "{err:?}");
        let err = LayeringPolicy::parse("a ia -> a\n").unwrap_err();
        assert!(err.iter().any(|p| p.contains("lists itself")), "{err:?}");
        let err = LayeringPolicy::parse("a ia -> \na ib ->\n").unwrap_err();
        assert!(err.iter().any(|p| p.contains("duplicate crate")), "{err:?}");
    }
}
