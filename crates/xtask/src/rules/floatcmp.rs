//! R002 — exact float comparisons (`==` / `!=`), literals *and* variables.
//!
//! The line-based scanner could only see float literals next to the
//! operator. With the token stream plus local type inference, a comparison
//! whose operand is a float-typed variable (`fn f(x: f64)`,
//! `let c = 0.5;`, `const TAU: f64`) is flagged too — the cases
//! `clippy::float_cmp` catches but the old scanner documented as
//! unreachable.

use super::{FileContext, Finding, TokenKind};

/// Scans one file. Suppression kind: `float_cmp`.
pub fn check(ctx: &FileContext<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for c in 0..ctx.code.len() {
        let op = ctx.code_text(c);
        if op != "==" && op != "!=" {
            continue;
        }
        if ctx.code_in_test(c) {
            continue;
        }
        let left = if c == 0 { None } else { operand_kind(ctx, c - 1) };
        // A negated literal on the right: `x == -1.5`.
        let right_at = if ctx.code_text(c + 1) == "-" { c + 2 } else { c + 1 };
        let right = operand_kind(ctx, right_at);
        let Some(what) = left.or(right) else { continue };
        let message = match what {
            Operand::Literal => "exact float comparison against a literal",
            Operand::Variable => "exact float comparison between float-typed values",
        };
        out.push(Finding {
            kind: "float_cmp",
            diag: ctx.diagnostic_at(c, "R002", message).with_suggestion(
                "compare with a tolerance, or annotate the line with \
                 `// lint: allow(float_cmp): <reason>`",
            ),
        });
    }
    out
}

#[derive(Clone, Copy)]
enum Operand {
    Literal,
    Variable,
}

/// Float evidence for the operand token at code index `c`:
/// a float literal, or an identifier the inference pass resolved to
/// `f32`/`f64`.
fn operand_kind(ctx: &FileContext<'_>, c: usize) -> Option<Operand> {
    let tok = ctx.code_token(c)?;
    match tok.kind {
        TokenKind::Number if tok.is_float_literal(ctx.src) => Some(Operand::Literal),
        TokenKind::Ident if ctx.code_type(c).is_some_and(super::Ty::is_float) => {
            Some(Operand::Variable)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_source, FileRole};

    fn rules(src: &str) -> Vec<String> {
        lint_source("crates/x/src/a.rs", src, FileRole::Library)
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn literal_comparisons_are_flagged() {
        assert_eq!(rules("fn f(x: u8) -> bool { x as f64 == 0.5 }"), vec!["R002"]);
        assert_eq!(rules("fn f() -> bool { g() != -2.5 }"), vec!["R002"]);
        assert!(rules("fn f(x: u8) -> bool { x == 0 }").is_empty());
        assert!(rules("fn f(x: u8) -> bool { x <= 1 }").is_empty());
    }

    #[test]
    fn float_variables_are_flagged() {
        // Parameter with an explicit float type.
        assert_eq!(rules("fn f(a: f64, b: f64) -> bool { a == b }"), vec!["R002"]);
        // Let binding with a literal initializer.
        assert_eq!(rules("fn f(n: i64) -> bool { let c = 0.5; g(n) == c }"), vec!["R002"]);
        // Module const.
        assert_eq!(rules("const T: f64 = 0.5;\nfn f() -> bool { g() == T }"), vec!["R002"]);
    }

    #[test]
    fn integer_variables_are_not_flagged() {
        assert!(rules("fn f(a: usize, b: usize) -> bool { a == b }").is_empty());
        assert!(rules("fn f() -> bool { let n = 3; n == m() }").is_empty());
    }

    #[test]
    fn shadowing_masks_the_outer_float() {
        // The inner `let c` rebinds to an unknown type; only positive
        // float evidence may fire.
        let src = "fn f() -> bool { let c = 0.5; { let c = g(); c == h() } }";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn comments_doc_comments_and_strings_never_fire() {
        assert!(rules("/// doc says x == 0.0\nfn f() {}").is_empty());
        assert!(rules("fn f() -> &'static str { \"x == 0.5\" }").is_empty());
        assert!(rules("fn f() { let x = 1; /* 0.5 == y */ }").is_empty());
    }
}
