//! Local let-binding / parameter type inference.
//!
//! A single forward pass over the code tokens maintains a stack of
//! lexical scopes (pushed at `{`, popped at `}`) mapping binding names to
//! the small set of types the rules care about ([`Ty`]). Bindings come
//! from three places:
//!
//! * `fn` parameters with an explicit type (`fn f(x: f64, n: usize)`);
//! * `let` / `const` / `static` with an explicit type annotation;
//! * `let` with an evident initializer: a bare literal (`let c = 0.5;`)
//!   or a `HashMap::…` / `HashSet::…` constructor call.
//!
//! Every identifier *use* (not preceded by `.` or `::`, so fields and
//! paths don't leak) is then resolved against the scope stack and the
//! result recorded per token index. Patterns the pass cannot read
//! (tuples, closures, `if let`) simply bind nothing or bind [`Ty::Other`]
//! — a deliberate "shadow without evidence" so stale outer bindings are
//! masked rather than misattributed.

use super::Ty;
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeMap;

/// Runs the pass; returns resolved types keyed by token index.
pub fn run(src: &str, tokens: &[Token], code: &[usize]) -> BTreeMap<usize, Ty> {
    Pass {
        src,
        tokens,
        code,
        scopes: vec![BTreeMap::new()],
        pending: Vec::new(),
        awaiting_body: false,
        out: BTreeMap::new(),
    }
    .run()
}

struct Pass<'s> {
    src: &'s str,
    tokens: &'s [Token],
    code: &'s [usize],
    /// Innermost scope last.
    scopes: Vec<BTreeMap<String, Ty>>,
    /// Parameter bindings waiting for the function body's `{`.
    pending: Vec<(String, Ty)>,
    awaiting_body: bool,
    out: BTreeMap<usize, Ty>,
}

impl Pass<'_> {
    fn txt(&self, c: usize) -> &str {
        match self.code.get(c) {
            Some(&i) => self.tokens[i].text(self.src),
            None => "",
        }
    }

    fn kind(&self, c: usize) -> Option<TokenKind> {
        self.code.get(c).map(|&i| self.tokens[i].kind)
    }

    fn run(mut self) -> BTreeMap<usize, Ty> {
        let mut c = 0;
        while c < self.code.len() {
            match self.txt(c) {
                "{" => {
                    let mut scope = BTreeMap::new();
                    if self.awaiting_body {
                        for (name, ty) in self.pending.drain(..) {
                            scope.insert(name, ty);
                        }
                        self.awaiting_body = false;
                    }
                    self.scopes.push(scope);
                    c += 1;
                }
                "}" => {
                    if self.scopes.len() > 1 {
                        self.scopes.pop();
                    }
                    c += 1;
                }
                ";" if self.awaiting_body => {
                    // Trait method declaration without a body: drop params.
                    self.pending.clear();
                    self.awaiting_body = false;
                    c += 1;
                }
                "fn" => c = self.parse_fn_signature(c + 1),
                "let" => c = self.parse_let(c + 1),
                "const" | "static" => c = self.parse_typed_item(c + 1),
                "for" => {
                    // `for x in …` masks any outer `x` inside the loop.
                    if self.kind(c + 1) == Some(TokenKind::Ident) && self.txt(c + 2) == "in" {
                        self.pending.push((self.txt(c + 1).to_string(), Ty::Other));
                        self.awaiting_body = true;
                    }
                    c += 1;
                }
                _ => {
                    if self.kind(c) == Some(TokenKind::Ident)
                        && self.txt(c.wrapping_sub(1)) != "."
                        && (c == 0 || self.txt(c - 1) != "::")
                    {
                        let name = self.txt(c);
                        if let Some(ty) = self.lookup(name) {
                            if let Some(&ti) = self.code.get(c) {
                                let _ = &self.tokens[ti];
                                self.out.insert(ti, ty);
                            }
                        }
                    }
                    c += 1;
                }
            }
        }
        self.out
    }

    fn lookup(&self, name: &str) -> Option<Ty> {
        for scope in self.scopes.iter().rev() {
            if let Some(&ty) = scope.get(name) {
                return Some(ty);
            }
        }
        None
    }

    fn bind(&mut self, name: &str, ty: Ty) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.insert(name.to_string(), ty);
        }
    }

    /// Parses `name [<generics>] ( params )`, queueing typed parameters
    /// for the body scope. Returns the code index to resume from.
    fn parse_fn_signature(&mut self, mut c: usize) -> usize {
        // Function name (or nothing, for `fn(` pointer types — bail).
        if self.kind(c) != Some(TokenKind::Ident) {
            return c;
        }
        c += 1;
        if self.txt(c) == "<" {
            c = self.skip_generics(c);
        }
        if self.txt(c) != "(" {
            return c;
        }
        let mut depth = 0usize;
        let mut angle = 0isize;
        let mut param_start = true;
        while c < self.code.len() {
            let t = self.txt(c);
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        c += 1;
                        break;
                    }
                }
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "," if depth == 1 && angle <= 0 => {
                    param_start = true;
                    angle = 0;
                    c += 1;
                    continue;
                }
                _ => {}
            }
            // `name: Type` at parameter position.
            if param_start
                && depth == 1
                && self.kind(c) == Some(TokenKind::Ident)
                && self.txt(c + 1) == ":"
            {
                let name = self.txt(c).to_string();
                if let Some(ty) = self.read_type(c + 2) {
                    self.pending.push((name, ty));
                }
                param_start = false;
            } else if t != "(" {
                param_start = false;
            }
            c += 1;
        }
        self.awaiting_body = true;
        c
    }

    /// Parses `let [mut] name (: Type)? (= init)?`, binding what it can.
    fn parse_let(&mut self, mut c: usize) -> usize {
        if self.txt(c) == "mut" {
            c += 1;
        }
        if self.kind(c) != Some(TokenKind::Ident) {
            return c; // tuple / struct pattern: bind nothing
        }
        let name = self.txt(c).to_string();
        let after = self.txt(c + 1);
        let ty = if after == ":" {
            self.read_type(c + 2).unwrap_or(Ty::Other)
        } else if after == "=" {
            self.infer_init(c + 2)
        } else {
            Ty::Other
        };
        self.bind(&name, ty);
        c + 1
    }

    /// Parses `NAME: Type` after `const` / `static` (skipping `mut`).
    fn parse_typed_item(&mut self, mut c: usize) -> usize {
        if self.txt(c) == "mut" {
            c += 1;
        }
        if self.kind(c) == Some(TokenKind::Ident) && self.txt(c + 1) == ":" {
            let name = self.txt(c).to_string();
            let ty = self.read_type(c + 2).unwrap_or(Ty::Other);
            self.bind(&name, ty);
        }
        c + 1
    }

    /// Reads the head of a type at `c`, skipping references, `mut`, and
    /// lifetimes: the first path identifier decides.
    fn read_type(&self, mut c: usize) -> Option<Ty> {
        loop {
            match self.txt(c) {
                "&" | "&&" | "mut" => c += 1,
                _ if self.kind(c) == Some(TokenKind::Lifetime) => c += 1,
                _ => break,
            }
        }
        if self.kind(c) != Some(TokenKind::Ident) {
            return None;
        }
        Some(ty_of_ident(self.txt(c)))
    }

    /// Infers the type of a `let` initializer when it is evident: a bare
    /// (possibly negated) literal ending the statement, or a
    /// `HashMap::…` / `HashSet::…` constructor.
    fn infer_init(&self, mut c: usize) -> Ty {
        if self.txt(c) == "-" {
            c += 1;
        }
        if self.kind(c) == Some(TokenKind::Number) && self.txt(c + 1) == ";" {
            if let Some(&ti) = self.code.get(c) {
                let tok = self.tokens[ti];
                let text = tok.text(self.src);
                if text.ends_with("f32") {
                    return Ty::F32;
                }
                if text.ends_with("u64") {
                    return Ty::U64;
                }
                if tok.is_float_literal(self.src) {
                    return Ty::F64;
                }
            }
            return Ty::Other;
        }
        if matches!(self.txt(c), "HashMap" | "HashSet") && self.txt(c + 1) == "::" {
            return Ty::Hash;
        }
        Ty::Other
    }

    /// Skips a `<…>` generics list starting at `c` (which holds `<`).
    fn skip_generics(&self, mut c: usize) -> usize {
        let mut angle = 0isize;
        while c < self.code.len() {
            match self.txt(c) {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
            c += 1;
            if angle <= 0 {
                break;
            }
        }
        c
    }
}

/// Maps a type-head identifier to the rule-relevant type set.
fn ty_of_ident(name: &str) -> Ty {
    match name {
        "f32" => Ty::F32,
        "f64" => Ty::F64,
        "u64" => Ty::U64,
        "HashMap" | "HashSet" => Ty::Hash,
        _ => Ty::Other,
    }
}
