//! The rule engine: shared per-file context plus the `R…` rules.
//!
//! Each rule walks the token stream produced by [`crate::lexer`] and emits
//! [`Finding`]s — a candidate diagnostic tagged with the annotation kind
//! that may suppress it. The engine then resolves suppressions against the
//! file's `// lint: allow(<kind>): <reason>` annotations: a finding on
//! line *L* is suppressed by a matching annotation on line *L* (trailing)
//! or *L−1* (preceding comment). Annotations that suppress nothing are
//! themselves findings (R004), which is what keeps the allowlist honest.
//!
//! Context shared by the rules:
//!
//! * **Test mask** — tokens inside any item carrying `#[cfg(test)]` (or
//!   `#[test]`) are exempt, wherever the item sits in the file. The mask
//!   is computed by attribute tracking + brace matching, not by the old
//!   "everything after the first `#[cfg(test)]` line" convention.
//! * **Local type inference** — a forward pass resolves identifier uses
//!   to the type of their nearest `let` binding or `fn` parameter when
//!   that type is evident (explicit `f64`/`f32`/`u64` annotation, a
//!   literal initializer, or a `HashMap`/`HashSet` constructor). This is
//!   what lets R002 flag float *variable* comparisons and R005/R006 see
//!   through variable names without a full type checker. Unresolved names
//!   stay unresolved — rules only act on positive evidence, so the
//!   inference can be incomplete but never inventive.

pub(crate) mod calls;
pub(crate) mod casts;
pub mod dataflow;
pub(crate) mod deadpub;
pub(crate) mod floatcmp;
pub(crate) mod header;
mod inference;
pub(crate) mod instant;
pub mod layering;
pub(crate) mod locks;
pub(crate) mod reach;
pub(crate) mod stale;

use crate::graph::{load_workspace, FileAnalysis, UsageSets, WorkspaceFile, WorkspaceGraph};
use crate::lexer::{tokenize, Token, TokenKind};
use catalyze_check::{Diagnostic, Report, Severity, Span};
use layering::LayeringPolicy;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::path::Path;

/// Repo-relative path of the layering declaration consumed by R009.
pub(crate) const LAYERING_POLICY_PATH: &str = "crates/xtask/layering.lint";

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// A library source file: all rules apply.
    Library,
    /// A crate-root `lib.rs`: all rules plus the library R003 header.
    LibraryRoot,
    /// Binary code (`src/main.rs`, `src/bin/…`): exempt from R001/R005 —
    /// entry points may panic and cast at the edge of the process.
    Binary,
    /// A crate-root `main.rs`: binary exemptions plus the binary R003
    /// header requirement.
    BinaryRoot,
}

impl FileRole {
    fn panic_and_cast_rules_apply(self) -> bool {
        matches!(self, FileRole::Library | FileRole::LibraryRoot)
    }
}

/// A type the local inference pass can establish for a binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint: allow(dead_api): returned by FileContext::code_type, part of the context's public surface
pub enum Ty {
    /// `f32`
    F32,
    /// `f64`
    F64,
    /// `u64`
    U64,
    /// `HashMap<…>` or `HashSet<…>`
    Hash,
    /// Known binding of some other type (shadows outer bindings without
    /// contributing evidence to any rule).
    Other,
}

impl Ty {
    /// Whether the type is a floating-point scalar.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }
}

/// One `// lint: allow(<kind>): <reason>` annotation.
#[derive(Debug, Clone)]
// lint: allow(dead_api): annotation record in FileContext's public fields
pub struct Annotation {
    /// The suppression kind: `panic`, `float_cmp`, `lossy_cast`, ….
    pub kind: String,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Span of the comment token.
    pub span: Span,
    /// Set when some finding was suppressed by this annotation.
    pub used: bool,
}

/// A candidate diagnostic plus the annotation kind that may suppress it.
#[derive(Debug, Clone)]
pub(crate) struct Finding {
    /// Annotation kind that suppresses this finding (`panic`, …).
    pub kind: &'static str,
    /// The assembled diagnostic (location, span, message already set).
    pub diag: Diagnostic,
}

/// Everything a rule needs to know about one source file.
pub struct FileContext<'s> {
    /// Repo-relative path used in diagnostic locations.
    pub rel: String,
    /// The source text.
    pub src: &'s str,
    /// The lossless token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of code tokens (not whitespace, not comments).
    pub code: Vec<usize>,
    /// Per-token flag: true inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: Vec<bool>,
    /// Resolved type per token index, for `Ident` tokens the inference
    /// pass could bind.
    pub types: BTreeMap<usize, Ty>,
    /// The file's suppression annotations, in source order.
    pub annotations: Vec<Annotation>,
    /// The file's `// lint: contract(<kind>)` annotations, in source
    /// order. The recognized kind is `deterministic`; unknown kinds are
    /// reported by the dataflow rules instead of being silently dropped.
    pub contracts: Vec<Annotation>,
    /// The file's lint role.
    pub role: FileRole,
}

impl<'s> FileContext<'s> {
    /// Lexes and analyzes one file.
    pub fn new(rel: impl Into<String>, src: &'s str, role: FileRole) -> Self {
        let tokens = tokenize(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let in_test = test_mask(src, &tokens, &code);
        let annotations = collect_annotations(src, &tokens);
        let contracts = collect_contracts(src, &tokens);
        let types = inference::run(src, &tokens, &code);
        FileContext {
            rel: rel.into(),
            src,
            tokens,
            code,
            in_test,
            types,
            annotations,
            contracts,
            role,
        }
    }

    /// The `c`-th code token (by position in `self.code`).
    pub fn code_token(&self, c: usize) -> Option<&Token> {
        self.code.get(c).map(|&i| &self.tokens[i])
    }

    /// Source text of the `c`-th code token (empty past the end).
    pub fn code_text(&self, c: usize) -> &str {
        match self.code_token(c) {
            Some(t) => t.text(self.src),
            None => "",
        }
    }

    /// True when the `c`-th code token sits inside a test item.
    pub fn code_in_test(&self, c: usize) -> bool {
        self.code.get(c).is_some_and(|&i| self.in_test[i])
    }

    /// Resolved type of the `c`-th code token, when it is an identifier
    /// bound by local inference.
    pub fn code_type(&self, c: usize) -> Option<Ty> {
        self.code.get(c).and_then(|i| self.types.get(i)).copied()
    }

    /// Builds an error diagnostic pointing at the `c`-th code token.
    pub fn diagnostic_at(&self, c: usize, rule: &str, message: impl Into<String>) -> Diagnostic {
        let span = match self.code_token(c) {
            Some(t) => t.span,
            None => Span { start: 0, end: 0, line: 1, column: 1 },
        };
        Diagnostic::new(
            rule,
            Severity::Error,
            format!("{}:{}:{}", self.rel, span.line, span.column),
            message,
        )
        .with_span(span)
    }
}

/// Single audited wall-clock read behind `--timings` — the linter measures
/// itself, and `catalyze-obs` may not be a dependency of `xtask` (the
/// layering DAG points the other way).
fn clock() -> std::time::Instant {
    // lint: allow(raw_timing): --timings measures the linter itself; obs is not an allowed xtask dependency
    std::time::Instant::now()
}

/// Runs `f`, returning its result plus elapsed wall-clock nanoseconds.
fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let t0 = clock();
    let r = f();
    (r, t0.elapsed().as_nanos())
}

/// Runs the per-file token rules (R001–R007 plus R013's rendering form)
/// over one analyzed file, recording per-rule wall-clock for `--timings`.
fn per_file_findings_timed(fa: &FileAnalysis<'_>) -> (Vec<Finding>, Vec<(&'static str, u128)>) {
    let ctx = &fa.ctx;
    let mut findings: Vec<Finding> = Vec::new();
    let mut rules: Vec<(&'static str, u128)> = Vec::new();
    if matches!(ctx.role, FileRole::LibraryRoot | FileRole::BinaryRoot) {
        let (f, ns) = timed(|| header::check(ctx));
        findings.extend(f);
        rules.push(("R003", ns));
    }
    if ctx.role.panic_and_cast_rules_apply() {
        let (f, ns) = timed(|| calls::check(ctx));
        findings.extend(f);
        rules.push(("R001", ns));
        let (f, ns) = timed(|| casts::check(ctx));
        findings.extend(f);
        rules.push(("R005", ns));
    }
    let (f, ns) = timed(|| floatcmp::check(ctx));
    findings.extend(f);
    rules.push(("R002", ns));
    let (f, ns) = timed(|| instant::check(ctx));
    findings.extend(f);
    rules.push(("R007", ns));
    let (f, ns) = timed(|| dataflow::check_file(fa));
    findings.extend(f);
    rules.push(("R013-render", ns));
    (findings, rules)
}

/// [`per_file_findings_timed`] without the timing channel.
fn per_file_findings(fa: &FileAnalysis<'_>) -> Vec<Finding> {
    per_file_findings_timed(fa).0
}

/// Resolves suppressions for one file's findings, appends the stale-
/// annotation diagnostics (R004), and returns the file's report in span
/// order.
fn resolve_file(ctx: &mut FileContext<'_>, findings: Vec<Finding>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in findings {
        if suppress(&mut ctx.annotations, f.kind, &f.diag) {
            continue;
        }
        out.push(f.diag);
    }
    out.extend(stale::check(ctx));
    out.sort_by_key(|d| d.span.map(|s| s.start).unwrap_or(0));
    out
}

/// Runs every applicable per-file rule over one file and resolves
/// suppressions. This is the per-file engine behind [`lint_workspace`];
/// fixture tests call it directly with synthetic paths. The graph rules
/// (R008–R011) need the whole workspace and only run in workspace mode.
pub fn lint_source(rel: &str, src: &str, role: FileRole) -> Vec<Diagnostic> {
    let file = WorkspaceFile { rel: rel.to_string(), src: src.to_string(), role };
    let mut fa = FileAnalysis::new(&file);
    let findings = per_file_findings(&fa);
    resolve_file(&mut fa.ctx, findings)
}

/// The result of a full workspace lint: the report plus the analyzed
/// files with their post-resolution annotation state (`used` flags), which
/// is what `--fix` consumes to rewrite stale annotations.
// lint: allow(dead_api): result type of lint_workspace_full, which the lint tests consume
pub struct WorkspaceLint<'s> {
    /// Per-file analyses, annotations carrying resolved `used` flags.
    pub analyses: Vec<FileAnalysis<'s>>,
    /// All diagnostics, in file order and span order within each file.
    pub report: Report,
    /// Wall-clock accounting for the run (`--timings`).
    pub timings: LintTimings,
}

/// Per-rule and per-file wall-clock accounting for one lint run
/// (`--timings`, schema `lint-timings.v1`).
#[derive(Debug, Clone, Default)]
// lint: allow(dead_api): public fields of WorkspaceLint::timings, consumed by the CLI and tests
pub struct LintTimings {
    /// Total wall-clock of the workspace lint, in nanoseconds.
    pub total_nanos: u128,
    /// Per-file wall-clock (lex + parse + per-file rules), input order.
    pub files: Vec<(String, u128)>,
    /// Per-rule wall-clock, summed across files, sorted by label.
    pub rules: Vec<(String, u128)>,
}

impl LintTimings {
    /// Renders the stable `lint-timings.v1` JSON document consumed by
    /// `results/BENCH_lint.json` and the CI regression gate.
    pub fn render_json(&self) -> String {
        use serde_json::Value;
        let nanos = |n: u128| Value::U64(u64::try_from(n).unwrap_or(u64::MAX));
        let entries = |items: &[(String, u128)]| {
            Value::Array(
                items
                    .iter()
                    .map(|(name, ns)| {
                        Value::Object(vec![
                            ("name".to_string(), Value::Str(name.clone())),
                            ("nanos".to_string(), nanos(*ns)),
                        ])
                    })
                    .collect(),
            )
        };
        let doc = Value::Object(vec![
            ("schema".to_string(), Value::Str("lint-timings.v1".to_string())),
            ("total_nanos".to_string(), nanos(self.total_nanos)),
            ("files".to_string(), entries(&self.files)),
            ("rules".to_string(), entries(&self.rules)),
        ]);
        serde_json::to_string_pretty(&doc).unwrap_or_default()
    }
}

/// The whole-workspace engine: per-file rules plus the graph rules
/// (R008 lock hygiene, R009 layering, R010 reachable panics, R011 dead
/// public API) over the linked module/call graph.
pub fn lint_workspace(
    files: &[WorkspaceFile],
    references: &[WorkspaceFile],
    policy: &LayeringPolicy,
) -> Report {
    lint_workspace_full(files, references, policy).report
}

/// One file's parallel-scan result: analysis, findings, per-rule nanos,
/// and the file's total wall-clock.
type ScannedFile<'s> = (FileAnalysis<'s>, Vec<Finding>, Vec<(&'static str, u128)>, u128);

/// [`lint_workspace`], additionally returning the per-file analyses.
pub fn lint_workspace_full<'s>(
    files: &'s [WorkspaceFile],
    references: &[WorkspaceFile],
    policy: &LayeringPolicy,
) -> WorkspaceLint<'s> {
    let run_t0 = clock();
    // Lex + parse + per-file rules are embarrassingly parallel. The
    // vendored rayon stub collects in input order, and the final report is
    // explicitly re-sorted by (path, span) below, so the parallel schedule
    // can never leak into the output — the linter holds itself to the
    // determinism bar it enforces.
    let scanned: Vec<ScannedFile<'s>> = files
        .par_iter()
        .map(|file| {
            let ((fa, findings, rules), ns) = timed(|| {
                let fa = FileAnalysis::new(file);
                let (findings, rules) = per_file_findings_timed(&fa);
                (fa, findings, rules)
            });
            (fa, findings, rules, ns)
        })
        .collect();
    let mut analyses: Vec<FileAnalysis<'s>> = Vec::with_capacity(scanned.len());
    let mut buckets: Vec<Vec<Finding>> = Vec::with_capacity(scanned.len());
    let mut file_nanos: Vec<(String, u128)> = Vec::with_capacity(scanned.len());
    let mut rule_nanos: BTreeMap<String, u128> = BTreeMap::new();
    for (fa, findings, rules, ns) in scanned {
        file_nanos.push((fa.ctx.rel.clone(), ns));
        for (label, n) in rules {
            *rule_nanos.entry(label.to_string()).or_default() += n;
        }
        analyses.push(fa);
        buckets.push(findings);
    }

    // Call edges across crates are only believable when the dependency is
    // allowed — the same DAG R009 enforces prunes false R010 witnesses.
    let deps: BTreeMap<String, std::collections::BTreeSet<String>> = policy
        .entries()
        .iter()
        .map(|e| (e.dir.clone(), e.allowed.iter().cloned().collect()))
        .collect();
    let (graph, ns) = timed(|| WorkspaceGraph::build_filtered(&analyses, &deps));
    *rule_nanos.entry("graph-build".to_string()).or_default() += ns;
    let (usage, ns) = timed(|| UsageSets::collect(&analyses, references));
    *rule_nanos.entry("graph-build".to_string()).or_default() += ns;
    let mut workspace_rule = |label: &str, found: (Vec<(usize, Finding)>, u128)| {
        let (findings, ns) = found;
        *rule_nanos.entry(label.to_string()).or_default() += ns;
        findings
    };
    for (fi, finding) in workspace_rule("R008", timed(|| locks::check(&analyses))) {
        buckets[fi].push(finding);
    }
    for (fi, finding) in workspace_rule("R009", timed(|| layering::check(&analyses, policy))) {
        buckets[fi].push(finding);
    }
    for (fi, finding) in workspace_rule("R010", timed(|| reach::check(&analyses, &graph))) {
        buckets[fi].push(finding);
    }
    for (fi, finding) in workspace_rule("R011", timed(|| deadpub::check(&analyses, &usage))) {
        buckets[fi].push(finding);
    }
    for (fi, finding) in
        workspace_rule("R012-R015", timed(|| dataflow::check_workspace(&analyses, &graph)))
    {
        buckets[fi].push(finding);
    }

    // Resolve per file, then sort the whole report by (path, span start):
    // the output order is a function of the sources alone, never of the
    // file-walk or thread schedule.
    let mut resolved: Vec<(String, Vec<Diagnostic>)> = Vec::with_capacity(analyses.len());
    for (fa, findings) in analyses.iter_mut().zip(buckets) {
        resolved.push((fa.ctx.rel.clone(), resolve_file(&mut fa.ctx, findings)));
    }
    resolved.sort_by(|a, b| a.0.cmp(&b.0));
    let mut report = Report::new();
    for (_, diags) in resolved {
        report.extend(diags);
    }
    let timings = LintTimings {
        total_nanos: run_t0.elapsed().as_nanos(),
        files: file_nanos,
        rules: rule_nanos.into_iter().collect(),
    };
    WorkspaceLint { analyses, report, timings }
}

/// Marks matching annotations used and reports whether one was found.
fn suppress(annotations: &mut [Annotation], kind: &str, diag: &Diagnostic) -> bool {
    let Some(span) = diag.span else { return false };
    let mut hit = false;
    for a in annotations.iter_mut() {
        if a.kind == kind && (a.line == span.line || a.line + 1 == span.line) {
            a.used = true;
            hit = true;
        }
    }
    hit
}

/// Lints the whole workspace under `crates/`: every `crates/*/src` tree
/// through the per-file rules, plus the graph rules (R008–R011) over the
/// linked module/call graph, with `tests/`, `examples/`, and crate
/// `benches/` trees loaded as usage references for R011. Fixtures and
/// `vendor/` stand-ins are outside the walk entirely. The layering DAG is
/// read from [`LAYERING_POLICY_PATH`]; a missing or invalid declaration is
/// itself an error diagnostic.
pub fn lint_repo(repo: &Path) -> Report {
    let (files, references, policy) = match load_repo_inputs(repo) {
        Ok(inputs) => inputs,
        Err(report) => return report,
    };
    lint_workspace(&files, &references, &policy)
}

/// Loads everything [`lint_repo`] (and `--fix`) needs from disk: the lint
/// and reference file sets plus the parsed layering policy. On failure,
/// returns the error report to print instead.
pub fn load_repo_inputs(
    repo: &Path,
) -> Result<(Vec<WorkspaceFile>, Vec<WorkspaceFile>, LayeringPolicy), Report> {
    let mut report = Report::new();
    let (files, references) = match load_workspace(repo) {
        Ok(loaded) => loaded,
        Err(e) => {
            report.push(Diagnostic::new(
                "R000",
                Severity::Error,
                repo.join("crates").display().to_string(),
                format!("cannot enumerate crates: {e}"),
            ));
            return Err(report);
        }
    };
    let policy_path = repo.join(LAYERING_POLICY_PATH);
    let policy = match std::fs::read_to_string(&policy_path) {
        Ok(text) => match LayeringPolicy::parse(&text) {
            Ok(policy) => policy,
            Err(problems) => {
                for p in problems {
                    report.push(Diagnostic::new(
                        "R009",
                        Severity::Error,
                        LAYERING_POLICY_PATH,
                        format!("invalid layering policy: {p}"),
                    ));
                }
                return Err(report);
            }
        },
        Err(e) => {
            report.push(Diagnostic::new(
                "R009",
                Severity::Error,
                LAYERING_POLICY_PATH,
                format!("cannot read layering policy: {e}"),
            ));
            return Err(report);
        }
    };
    Ok((files, references, policy))
}

/// Lint role derived from a repo-relative path.
pub fn role_of(rel: &str) -> FileRole {
    if rel.ends_with("src/main.rs") {
        FileRole::BinaryRoot
    } else if rel.contains("/src/bin/") {
        FileRole::Binary
    } else if rel.ends_with("src/lib.rs") {
        FileRole::LibraryRoot
    } else {
        FileRole::Library
    }
}

/// Computes the per-token test mask: true for every token inside an item
/// annotated `#[cfg(test)]` (any cfg predicate mentioning `test`) or
/// `#[test]`. Works at any position in the file — mid-file test modules
/// are exempt, and code *after* a test module is linted again.
fn test_mask(src: &str, tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut c = 0;
    while c < code.len() {
        if code_text_at(src, tokens, code, c) != "#"
            || code_text_at(src, tokens, code, c + 1) != "["
        {
            c += 1;
            continue;
        }
        let attr_start = c;
        let Some(attr_end) = matching(src, tokens, code, c + 1, "[", "]") else { break };
        if !attr_marks_test(src, tokens, code, c + 2, attr_end) {
            c = attr_end + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut item = attr_end + 1;
        while code_text_at(src, tokens, code, item) == "#"
            && code_text_at(src, tokens, code, item + 1) == "["
        {
            match matching(src, tokens, code, item + 1, "[", "]") {
                Some(e) => item = e + 1,
                None => break,
            }
        }
        // The item ends at the first `;` before any `{` (e.g. `mod t;`),
        // or at the brace matching its first `{`.
        let mut end = None;
        let mut d = item;
        while d < code.len() {
            let t = code_text_at(src, tokens, code, d);
            if t == ";" {
                end = Some(d);
                break;
            }
            if t == "{" {
                end = matching(src, tokens, code, d, "{", "}");
                break;
            }
            d += 1;
        }
        let end = match end {
            Some(e) => e,
            None => code.len().saturating_sub(1), // unterminated: mask to EOF
        };
        for ci in attr_start..=end {
            if let Some(&ti) = code.get(ci) {
                mask[ti] = true;
            }
        }
        c = end + 1;
    }
    mask
}

/// Text of the `c`-th code token, or `""` past the end.
fn code_text_at<'s>(src: &'s str, tokens: &[Token], code: &[usize], c: usize) -> &'s str {
    match code.get(c) {
        Some(&i) => tokens[i].text(src),
        None => "",
    }
}

/// Whether the attribute body `(from..to)` marks a test item: `#[test]`
/// exactly, or a `cfg(…)` predicate mentioning `test`.
fn attr_marks_test(src: &str, tokens: &[Token], code: &[usize], from: usize, to: usize) -> bool {
    if to == from + 1 && code_text_at(src, tokens, code, from) == "test" {
        return true;
    }
    code_text_at(src, tokens, code, from) == "cfg"
        && (from..to).any(|c| code_text_at(src, tokens, code, c) == "test")
}

/// Code-index of the delimiter matching `open` at code-index `at` (which
/// must hold `open`).
fn matching(
    src: &str,
    tokens: &[Token],
    code: &[usize],
    at: usize,
    open: &str,
    close: &str,
) -> Option<usize> {
    let mut depth = 0usize;
    let mut c = at;
    while c < code.len() {
        let t = code_text_at(src, tokens, code, c);
        if t == open {
            depth += 1;
        } else if t == close {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(c);
            }
        }
        c += 1;
    }
    None
}

/// Collects `// lint: contract(<kind>)` annotations — the determinism
/// certification markers checked by the dataflow rules (R012–R015). The
/// comment must sit on the `fn` line or the line directly above, same
/// placement contract as `allow`. A trailing `: <reason>` is accepted and
/// ignored (the contract itself is the reason). The parsed kind is kept
/// verbatim — unknown kinds are *reported* by
/// [`dataflow::check_workspace`], not silently dropped, so a typo'd
/// contract can never silently certify nothing.
fn collect_contracts(src: &str, tokens: &[Token]) -> Vec<Annotation> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let text = t.text(src);
        let Some(rest) = text.strip_prefix("// lint:") else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("contract(") else { continue };
        let Some(close) = rest.find(')') else { continue };
        let kind = rest[..close].trim();
        if kind.is_empty() {
            continue;
        }
        out.push(Annotation {
            kind: kind.to_string(),
            line: t.span.line,
            span: t.span,
            used: false,
        });
    }
    out
}

/// Collects `// lint: allow(<kinds>): <reason>` annotations. Doc comments
/// (`///`, `//!`) never count — the marker must open a plain `//` comment.
/// Annotations without a reason are ignored (they do not suppress), same
/// as the line-based scanner's contract. The kind list may be
/// comma-separated (`allow(panic, reachable_panic): …`) — each kind
/// becomes its own [`Annotation`] sharing the comment's span, so a site
/// flagged by several rules is suppressed (and tracked for staleness,
/// R004) per kind.
fn collect_annotations(src: &str, tokens: &[Token]) -> Vec<Annotation> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let text = t.text(src);
        let Some(rest) = text.strip_prefix("// lint:") else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else { continue };
        let Some(close) = rest.find(')') else { continue };
        let kinds = &rest[..close];
        let Some(reason) = rest[close + 1..].strip_prefix(':') else { continue };
        if kinds.is_empty() || reason.trim().is_empty() {
            continue;
        }
        for kind in kinds.split(',') {
            let kind = kind.trim();
            if kind.is_empty() {
                continue;
            }
            out.push(Annotation {
                kind: kind.to_string(),
                line: t.span.line,
                span: t.span,
                used: false,
            });
        }
    }
    out
}
