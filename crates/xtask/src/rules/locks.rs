//! R008 — lock hygiene across parallelism and nested acquisition.
//!
//! Tracks every `Mutex`/`RwLock` acquisition (`.lock()`, `.read()`,
//! `.write()`) in non-test code together with the range over which its
//! guard stays live:
//!
//! * a `let`-bound guard (`let g = m.lock();`) lives to the end of its
//!   enclosing block — or to an explicit `drop(g)`;
//! * a temporary guard (`m.lock().unwrap().push(x)`) lives to the end of
//!   its statement.
//!
//! Three hazards are flagged, all as R008 with suppression kind
//! `lock_hygiene`:
//!
//! 1. **Guard live across a rayon call** — `.par_iter()` and friends, or
//!    `rayon::join`/`rayon::scope`/`rayon::spawn`, while a guard is live.
//!    Worker threads that touch the same lock deadlock against the
//!    blocked pool, and even when they do not, the serial section is
//!    silently as long as the whole parallel region.
//! 2. **Re-acquiring a held lock** — a second acquisition whose receiver
//!    chain is identical to a live guard's (`self.inner.lock()` twice) is
//!    a self-deadlock with `std::sync::Mutex`.
//! 3. **Inconsistent acquisition order** — when somewhere in the
//!    workspace lock *B* is acquired while *A* is held, and somewhere else
//!    *A* is acquired while *B* is held, the two sites can deadlock
//!    against each other. Both sites are flagged, each pointing at the
//!    other.
//!
//! Receivers are identified by their canonicalized source text
//! (`self.inner`, `CACHE`) — a deliberate approximation: two different
//! objects reached through the same field path are conflated (false
//! positive risk), and the same lock reached through different aliases is
//! missed (false negative). Both classes are documented in DESIGN.md §7.

use super::Finding;
use crate::graph::FileAnalysis;
use crate::lexer::TokenKind;
use std::collections::BTreeMap;

/// Methods that acquire a guard.
const ACQUIRE: [&str; 3] = ["lock", "read", "write"];
/// Rayon parallel-iterator adaptors (called as methods).
const PAR_METHODS: [&str; 8] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
    "par_extend",
    "par_sort",
];
/// Rayon free functions (called as `rayon::<name>` paths).
const PAR_FREE: [&str; 3] = ["join", "scope", "spawn"];

/// One lock acquisition and the liveness range of its guard.
struct Acquisition {
    /// Code index of the `lock`/`read`/`write` identifier.
    site: usize,
    /// Canonicalized receiver chain (`self.inner`, `CACHE`).
    receiver: String,
    /// Code index (exclusive) where the guard's liveness ends.
    end: usize,
}

/// Runs R008 over every analyzed file, including the workspace-wide
/// acquisition-order check. Returns findings tagged with their file index.
pub fn check(analyses: &[FileAnalysis<'_>]) -> Vec<(usize, Finding)> {
    let mut out = Vec::new();
    // (first-held, then-acquired) -> acquisition sites, for the global
    // ordering pass.
    let mut order: BTreeMap<(String, String), Vec<(usize, usize)>> = BTreeMap::new();

    for (fi, fa) in analyses.iter().enumerate() {
        let acqs = collect_acquisitions(fa);
        for a in &acqs {
            // Scan the guard's live range for rayon calls.
            let mut c = a.site + 2; // past `lock` and `(`
            while c < a.end {
                if fa.ctx.code_in_test(c) {
                    c += 1;
                    continue;
                }
                let t = fa.ctx.code_text(c);
                let prev = if c == 0 { "" } else { fa.ctx.code_text(c - 1) };
                if (PAR_METHODS.contains(&t) && prev == ".")
                    || (PAR_FREE.contains(&t)
                        && prev == "::"
                        && c >= 2
                        && fa.ctx.code_text(c - 2) == "rayon")
                {
                    out.push((
                        fi,
                        Finding {
                            kind: "lock_hygiene",
                            diag: fa
                                .ctx
                                .diagnostic_at(
                                    c,
                                    "R008",
                                    format!(
                                        "`{t}` runs while the guard on `{}` (acquired at line \
                                         {}) is still live",
                                        a.receiver,
                                        line_of(fa, a.site),
                                    ),
                                )
                                .with_suggestion(
                                    "drop the guard (narrow scope or explicit drop()) before \
                                     entering the parallel region, or annotate with \
                                     `// lint: allow(lock_hygiene): <reason>`",
                                ),
                        },
                    ));
                }
                c += 1;
            }
            // Nested acquisitions inside the live range.
            for b in &acqs {
                if b.site <= a.site || b.site >= a.end {
                    continue;
                }
                if b.receiver == a.receiver {
                    out.push((
                        fi,
                        Finding {
                            kind: "lock_hygiene",
                            diag: fa
                                .ctx
                                .diagnostic_at(
                                    b.site,
                                    "R008",
                                    format!(
                                        "`{}` is re-acquired while its own guard (line {}) is \
                                         still live — self-deadlock with std::sync locks",
                                        a.receiver,
                                        line_of(fa, a.site),
                                    ),
                                )
                                .with_suggestion("reuse the existing guard or end its scope first"),
                        },
                    ));
                } else {
                    order
                        .entry((a.receiver.clone(), b.receiver.clone()))
                        .or_default()
                        .push((fi, b.site));
                }
            }
        }
    }

    // Workspace-wide ordering: (a then b) and (b then a) both observed.
    for ((a, b), sites) in &order {
        let Some(reverse) = order.get(&(b.clone(), a.clone())) else { continue };
        let Some(&(rfi, rsite)) = reverse.first() else { continue };
        let rloc = analyses[rfi].ctx.diagnostic_at(rsite, "R008", "").location.clone();
        for &(fi, site) in sites {
            let fa = &analyses[fi];
            out.push((
                fi,
                Finding {
                    kind: "lock_hygiene",
                    diag: fa
                        .ctx
                        .diagnostic_at(
                            site,
                            "R008",
                            format!(
                                "inconsistent lock order: `{b}` is acquired while `{a}` is \
                                 held here, but `{a}` is acquired while `{b}` is held at {rloc}"
                            ),
                        )
                        .with_suggestion(
                            "pick one global acquisition order for these locks and use it at \
                             both sites",
                        ),
                },
            ));
        }
    }
    out
}

/// 1-based source line of a code token.
fn line_of(fa: &FileAnalysis<'_>, c: usize) -> usize {
    fa.ctx.code_token(c).map(|t| t.span.line).unwrap_or(0)
}

/// Collects every non-test lock acquisition in the file with its guard's
/// liveness range.
fn collect_acquisitions(fa: &FileAnalysis<'_>) -> Vec<Acquisition> {
    let ctx = &fa.ctx;
    let mut acqs: Vec<Acquisition> = Vec::new();
    let mut brace_stack: Vec<usize> = Vec::new();
    let mut c = 0;
    while c < ctx.code.len() {
        match ctx.code_text(c) {
            "{" => brace_stack.push(c),
            "}" => {
                brace_stack.pop();
            }
            "let" if !ctx.code_in_test(c) => {
                let stmt_end = statement_end(fa, c);
                // Guard binding name: `let [mut] name = …`.
                let mut n = c + 1;
                if ctx.code_text(n) == "mut" {
                    n += 1;
                }
                let name = if ctx.code_token(n).map(|t| t.kind) == Some(TokenKind::Ident) {
                    ctx.code_text(n).to_string()
                } else {
                    String::new()
                };
                let mut first_in_stmt = true;
                for d in n..stmt_end {
                    if let Some(receiver) = acquisition_at(fa, d) {
                        let end = if first_in_stmt && !name.is_empty() && name != "_" {
                            // The binding holds the guard: live to the end
                            // of the enclosing block, or to `drop(name)`.
                            let scope_end = brace_stack
                                .last()
                                .and_then(|&open| matching_brace(fa, open))
                                .unwrap_or(ctx.code.len());
                            drop_site(fa, &name, stmt_end, scope_end).unwrap_or(scope_end)
                        } else {
                            stmt_end
                        };
                        acqs.push(Acquisition { site: d, receiver, end });
                        first_in_stmt = false;
                    }
                }
                c = stmt_end;
                continue;
            }
            _ => {
                if !ctx.code_in_test(c) && !already_seen(&acqs, c) {
                    if let Some(receiver) = acquisition_at(fa, c) {
                        let end = statement_end(fa, c);
                        acqs.push(Acquisition { site: c, receiver, end });
                    }
                }
            }
        }
        c += 1;
    }
    acqs
}

fn already_seen(acqs: &[Acquisition], c: usize) -> bool {
    acqs.iter().any(|a| a.site == c)
}

/// When code index `c` holds an acquisition method call (`.lock(` /
/// `.read(` / `.write(`), returns the canonicalized receiver chain.
fn acquisition_at(fa: &FileAnalysis<'_>, c: usize) -> Option<String> {
    let ctx = &fa.ctx;
    if !ACQUIRE.contains(&ctx.code_text(c)) || ctx.code_text(c + 1) != "(" {
        return None;
    }
    if c == 0 || ctx.code_text(c - 1) != "." {
        return None;
    }
    // Walk the receiver chain backwards: identifiers joined by `.`/`::`.
    let mut parts: Vec<&str> = Vec::new();
    let mut d = c - 1; // the `.` before the method name
    while d > 0 {
        let prev = d - 1;
        let t = ctx.code_text(prev);
        let is_link = t == "." || t == "::";
        let is_name = ctx.code_token(prev).map(|t| t.kind) == Some(TokenKind::Ident);
        if is_link || is_name {
            parts.push(t);
            d = prev;
        } else {
            break;
        }
    }
    // The walk stops on the token *before* the chain; parts are reversed.
    parts.reverse();
    // Trim a leading link token left by the walk (e.g. from `(x).lock()`).
    while parts.first().is_some_and(|t| *t == "." || *t == "::") {
        parts.remove(0);
    }
    // Drop the trailing `.` that separates receiver from method.
    while parts.last().is_some_and(|t| *t == ".") {
        parts.pop();
    }
    if parts.is_empty() {
        return None;
    }
    Some(parts.concat())
}

/// Code index one past the end of the statement containing `c`: the next
/// `;` at or above the nesting level of `c`, or the `}` that closes the
/// surrounding block.
fn statement_end(fa: &FileAnalysis<'_>, from: usize) -> usize {
    let ctx = &fa.ctx;
    let mut depth = 0isize;
    let mut c = from;
    while c < ctx.code.len() {
        match ctx.code_text(c) {
            "{" | "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return c;
                }
            }
            ";" if depth <= 0 => return c,
            _ => {}
        }
        c += 1;
    }
    ctx.code.len()
}

/// Code index of the brace matching the `{` at `open`.
fn matching_brace(fa: &FileAnalysis<'_>, open: usize) -> Option<usize> {
    let ctx = &fa.ctx;
    let mut depth = 0usize;
    let mut c = open;
    while c < ctx.code.len() {
        match ctx.code_text(c) {
            "{" => depth += 1,
            "}" => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(c);
                }
            }
            _ => {}
        }
        c += 1;
    }
    None
}

/// First `drop(name)` call in `[from, to)`, if any.
fn drop_site(fa: &FileAnalysis<'_>, name: &str, from: usize, to: usize) -> Option<usize> {
    let ctx = &fa.ctx;
    (from..to).find(|&c| {
        ctx.code_text(c) == "drop"
            && ctx.code_text(c + 1) == "("
            && ctx.code_text(c + 2) == name
            && ctx.code_text(c + 3) == ")"
    })
}

#[cfg(test)]
mod tests {
    use crate::graph::{FileAnalysis, WorkspaceFile};
    use crate::rules::FileRole;

    fn findings(src: &str) -> Vec<(String, usize, String)> {
        let file = WorkspaceFile {
            rel: "crates/x/src/a.rs".into(),
            src: src.into(),
            role: FileRole::Library,
        };
        let analyses = vec![FileAnalysis::new(&file)];
        super::check(&analyses)
            .into_iter()
            .map(|(_, f)| {
                (f.diag.rule.clone(), f.diag.span.map(|s| s.line).unwrap_or(0), f.diag.message)
            })
            .collect()
    }

    #[test]
    fn guard_across_par_iter_is_flagged() {
        let src = "fn f(m: &std::sync::Mutex<Vec<u8>>, xs: &[u8]) {\n\
                   let g = m.lock().unwrap();\n\
                   xs.par_iter().for_each(|x| consume(*x));\n\
                   g.len();\n}";
        let got = findings(src);
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].0.as_str(), got[0].1), ("R008", 3));
        assert!(got[0].2.contains("par_iter"), "{}", got[0].2);
        assert!(got[0].2.contains('m'), "{}", got[0].2);
    }

    #[test]
    fn temporary_guard_in_par_statement_is_flagged() {
        let src = "fn f(s: &Shared, xs: &[u8]) {\n\
                   s.inner.lock().extend(xs.par_iter().map(|x| *x));\n}";
        let got = findings(src);
        assert_eq!(got.len(), 1);
        assert!(got[0].2.contains("s.inner"), "{}", got[0].2);
    }

    #[test]
    fn dropped_guard_is_not_flagged() {
        let src = "fn f(m: &std::sync::Mutex<Vec<u8>>, xs: &[u8]) {\n\
                   let g = m.lock().unwrap();\n\
                   drop(g);\n\
                   xs.par_iter().for_each(|x| consume(*x));\n}";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn scoped_guard_is_not_flagged() {
        let src = "fn f(m: &std::sync::Mutex<Vec<u8>>, xs: &[u8]) {\n\
                   { let g = m.lock().unwrap(); g.len(); }\n\
                   xs.par_iter().for_each(|x| consume(*x));\n}";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn self_deadlock_is_flagged() {
        let src = "fn f(&self) {\n\
                   let a = self.inner.lock().unwrap();\n\
                   let b = self.inner.lock().unwrap();\n\
                   use_both(a, b);\n}";
        let got = findings(src);
        assert_eq!(got.len(), 1);
        assert!(got[0].2.contains("re-acquired"), "{}", got[0].2);
        assert_eq!(got[0].1, 3);
    }

    #[test]
    fn inconsistent_order_is_flagged_at_both_sites() {
        let src = "fn f(a: &L, b: &L) {\n\
                   let ga = a.lock();\n\
                   let gb = b.lock();\n\
                   use_both(ga, gb);\n}\n\
                   fn g(a: &L, b: &L) {\n\
                   let gb = b.lock();\n\
                   let ga = a.lock();\n\
                   use_both(ga, gb);\n}";
        let got = findings(src);
        let order: Vec<&(String, usize, String)> =
            got.iter().filter(|f| f.2.contains("inconsistent lock order")).collect();
        assert_eq!(order.len(), 2, "{got:?}");
        assert_eq!(order[0].1, 3);
        assert_eq!(order[1].1, 8);
    }

    #[test]
    fn consistent_order_and_test_code_stay_silent() {
        let src = "fn f(a: &L, b: &L) {\n\
                   let ga = a.lock();\n\
                   let gb = b.lock();\n\
                   use_both(ga, gb);\n}\n\
                   #[cfg(test)]\nmod t {\n\
                   fn h(m: &L, xs: &[u8]) { let g = m.lock(); xs.par_iter().count(); }\n}";
        assert!(findings(src).is_empty());
    }
}
