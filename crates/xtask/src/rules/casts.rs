//! R005 — lossy numeric `as` casts in library non-test code.
//!
//! Flags the three silent-truncation families on positive type evidence:
//!
//! * `f64 → f32` (precision loss),
//! * float → integer (truncation toward zero, saturation on overflow),
//! * `u64 → usize` / narrower integers (truncation on 32-bit targets or
//!   always).
//!
//! The source type comes from a float literal directly before `as`, or
//! from an identifier the inference pass resolved. Unknown sources are
//! never flagged — the rule prefers false negatives over annotation
//! noise.

use super::{FileContext, Finding, TokenKind, Ty};

/// Integer target types a float or `u64` cannot round-trip through.
const NARROW_INTS: [&str; 9] = ["i8", "i16", "i32", "i64", "isize", "u8", "u16", "u32", "usize"];

fn is_int_target(name: &str) -> bool {
    NARROW_INTS.contains(&name) || matches!(name, "u64" | "u128" | "i128")
}

/// Scans one file. Suppression kind: `lossy_cast`.
pub fn check(ctx: &FileContext<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for c in 1..ctx.code.len() {
        if ctx.code_text(c) != "as" || ctx.code_in_test(c) {
            continue;
        }
        // `use path as alias;` is not a cast.
        if ctx.code_text(c.saturating_sub(2)) == "use" {
            continue;
        }
        let target = ctx.code_text(c + 1);
        let Some(prev) = ctx.code_token(c - 1) else { continue };
        let source: Option<(&str, Ty)> = match prev.kind {
            TokenKind::Number if prev.is_float_literal(ctx.src) => Some(("float literal", Ty::F64)),
            TokenKind::Ident => ctx.code_type(c - 1).map(|ty| ("value", ty)),
            _ => None,
        };
        let Some((what, ty)) = source else { continue };
        let lossy = match ty {
            Ty::F64 if target == "f32" => {
                Some(format!("`f64 as f32` halves the {what}'s precision"))
            }
            Ty::F32 | Ty::F64 if is_int_target(target) => {
                Some(format!("float {what} truncated by `as {target}`"))
            }
            Ty::U64 if NARROW_INTS.contains(&target) => {
                Some(format!("`u64 as {target}` can truncate the {what}"))
            }
            _ => None,
        };
        if let Some(message) = lossy {
            out.push(Finding {
                kind: "lossy_cast",
                diag: ctx.diagnostic_at(c, "R005", message).with_suggestion(
                    "use a checked conversion (`try_from`, `round`), or annotate the \
                     line with `// lint: allow(lossy_cast): <reason>`",
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_source, FileRole};

    fn rules(src: &str) -> Vec<String> {
        lint_source("crates/x/src/a.rs", src, FileRole::Library)
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn f64_to_f32_is_flagged() {
        assert_eq!(rules("fn f(x: f64) -> f32 { x as f32 }"), vec!["R005"]);
    }

    #[test]
    fn float_to_int_is_flagged() {
        assert_eq!(rules("fn f(x: f64) -> i64 { x as i64 }"), vec!["R005"]);
        assert_eq!(rules("fn f() -> u32 { 2.5 as u32 }"), vec!["R005"]);
    }

    #[test]
    fn u64_to_usize_is_flagged() {
        assert_eq!(rules("fn f(n: u64) -> usize { n as usize }"), vec!["R005"]);
        assert_eq!(rules("fn f(n: u64) -> u32 { n as u32 }"), vec!["R005"]);
    }

    #[test]
    fn lossless_and_unknown_casts_pass() {
        assert!(rules("fn f(n: u32) -> usize { n as usize }").is_empty());
        assert!(rules("fn f(n: u64) -> u128 { n as u128 }").is_empty());
        assert!(rules("fn f(x: f32) -> f64 { x as f64 }").is_empty());
        // Unknown source: no positive evidence, no finding.
        assert!(rules("fn f() -> usize { g() as usize }").is_empty());
        assert!(rules("pub use core::fmt as formatting;").is_empty());
    }

    #[test]
    fn binary_code_and_tests_are_exempt() {
        let src = "fn main() { let x: f64 = 1.5; let _ = x as f32; }";
        assert!(lint_source("crates/x/src/main.rs", src, FileRole::BinaryRoot)
            .iter()
            .all(|d| d.rule != "R005"));
        let test = "#[cfg(test)]\nmod t { fn f(x: f64) -> f32 { x as f32 } }\nfn g() {}";
        assert!(rules(test).is_empty());
    }

    #[test]
    fn annotation_suppresses() {
        let src = "fn f(x: f64) -> f32 { x as f32 // lint: allow(lossy_cast): display only\n}";
        assert!(rules(src).is_empty());
    }
}
