//! R012–R015 — the determinism dataflow rules.
//!
//! An intraprocedural taint analysis over the per-function CFGs built by
//! [`crate::cfg`], plus interprocedural *contract scoping* over the
//! approximate call graph in [`crate::graph`]. The taint lattice tracks,
//! per local binding, which nondeterminism **sources** may have fed it:
//!
//! * `HashIter` — `HashMap`/`HashSet` iteration (order is randomized per
//!   process);
//! * `FloatReduce` — a rayon parallel-iterator reduction (`sum`, `product`,
//!   `fold`, `reduce`) with float evidence (float literal, float-typed
//!   binding, or an `::<f32|f64>` turbofish) — float addition is not
//!   associative, so the split schedule changes the result bits;
//! * `RelaxedLoad` — atomic reads at `Ordering::Relaxed` (`load`,
//!   value-returning `fetch_*`);
//! * `TimeRng` — wall-clock (`Instant::now`, `SystemTime::now`),
//!   unseeded RNG (`thread_rng`, `from_entropy`), thread id, process id.
//!   Seeded construction (`seed_from_u64`, `from_seed`) is *not* a source.
//!
//! **Sinks** are where a tainted value escapes the function: the returned
//! value (trailing tail expression or `return`), writes through out-params
//! (`*out = …`, `out.field = …`), writes to `self` fields, and — for
//! `HashIter` only — rendering sinks (`push_str`, `format!`, `join`, …),
//! which is the R006 behaviour this module subsumes as R013.
//!
//! Interprocedural propagation needs no call summaries: the returned value
//! *is* a sink, so a tainted flow crossing a function boundary is flagged
//! in the function where the source lives, and contract scoping makes that
//! function's membership in a certified call tree explicit. A function is
//! in scope when it is reachable (over the dependency-filtered call graph)
//! from any function annotated `// lint: contract(deterministic)`;
//! findings carry the witness call chain from the contract entry, same UX
//! as R010. R013's rendering-sink form fires everywhere, contract or not,
//! preserving R006's coverage.
//!
//! Sanitizers: binding into a `BTree*` collection and in-place `.sort*()`
//! calls clear `HashIter` taint — those are exactly the deterministic
//! fixes the suggestions recommend.

use super::{FileContext, Finding, Ty};
use crate::cfg::{Cfg, Stmt, StmtKind};
use crate::graph::{FileAnalysis, WorkspaceGraph};
use crate::lexer::TokenKind;
use catalyze_check::{Diagnostic, Severity};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A nondeterminism source kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Source {
    /// `HashMap`/`HashSet` iteration.
    HashIter,
    /// Parallel float reduction.
    FloatReduce,
    /// `Ordering::Relaxed` atomic read.
    RelaxedLoad,
    /// Wall-clock / unseeded RNG / thread- or process-id value.
    TimeRng,
}

/// Where a tainted value escaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Sink {
    /// The function's returned value.
    Return,
    /// A write through a caller-visible out-parameter.
    OutParam,
    /// A write to a field of `self`.
    SelfField,
    /// A rendering sink (`push_str`, `format!`, `join`, …).
    Render,
}

/// One source-to-sink flow found in a function.
#[derive(Debug, Clone)]
pub(crate) struct Hit {
    /// What kind of nondeterminism fed the sink.
    pub source: Source,
    /// How the value escaped.
    pub sink: Sink,
    /// Code-token index of the source site (what the diagnostic anchors
    /// to).
    pub origin: usize,
    /// How many further flows of the same (source, sink) shape were
    /// folded into this hit.
    pub more: usize,
}

/// Per-binding taint: the code-token origin of the first evidence for
/// each source kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Taints {
    hash: Option<usize>,
    reduce: Option<usize>,
    relaxed: Option<usize>,
    time: Option<usize>,
}

impl Taints {
    fn set(&mut self, source: Source, origin: usize) {
        let slot = self.slot(source);
        *slot = Some(slot.map_or(origin, |o| o.min(origin)));
    }

    fn slot(&mut self, source: Source) -> &mut Option<usize> {
        match source {
            Source::HashIter => &mut self.hash,
            Source::FloatReduce => &mut self.reduce,
            Source::RelaxedLoad => &mut self.relaxed,
            Source::TimeRng => &mut self.time,
        }
    }

    fn union(&mut self, other: &Taints) {
        for (source, origin) in other.iter() {
            self.set(source, origin);
        }
    }

    fn iter(&self) -> impl Iterator<Item = (Source, usize)> {
        [
            (Source::HashIter, self.hash),
            (Source::FloatReduce, self.reduce),
            (Source::RelaxedLoad, self.relaxed),
            (Source::TimeRng, self.time),
        ]
        .into_iter()
        .filter_map(|(s, o)| o.map(|o| (s, o)))
    }
}

type State = BTreeMap<String, Taints>;

/// Rendering sinks (kept in sync with the old R006 list).
const RENDER_SINKS: [&str; 10] = [
    "push_str",
    "write_str",
    "write",
    "writeln",
    "print",
    "println",
    "eprint",
    "eprintln",
    "format",
    "join",
];

/// Iteration entry points on a hash container.
const ITER_METHODS: [&str; 8] =
    ["iter", "keys", "values", "into_iter", "drain", "par_iter", "iter_mut", "values_mut"];

/// Rayon parallel-iterator constructors.
const PAR_ITERS: [&str; 6] =
    ["par_iter", "into_par_iter", "par_iter_mut", "par_chunks", "par_chunks_mut", "par_bridge"];

/// Order-sensitive reduction adapters.
const REDUCERS: [&str; 4] = ["sum", "product", "fold", "reduce"];

/// Atomic read methods whose result carries the relaxed-ordering value.
const ATOMIC_READS: [&str; 8] = [
    "load",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
];

/// Unseeded RNG constructors.
const RNG_CALLS: [&str; 2] = ["thread_rng", "from_entropy"];

/// Assignment operators (single tokens, maximal munch).
const ASSIGN_OPS: [&str; 11] = ["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="];

/// Words that appear in patterns but never bind a value.
const PAT_NON_BINDERS: [&str; 11] =
    ["mut", "ref", "box", "if", "in", "as", "move", "self", "true", "false", "_"];

/// Runs the taint analysis over one function body (`body` is the
/// inclusive brace range from the item parser) and returns the deduplicated
/// source-to-sink flows.
pub(crate) fn analyze_fn(
    ctx: &FileContext<'_>,
    body: (usize, usize),
    params: &[String],
) -> Vec<Hit> {
    let cfg = Cfg::build(ctx, body.0, body.1);
    let nb = cfg.blocks.len();
    let mut in_states: Vec<Option<State>> = vec![None; nb];
    in_states[cfg.entry] = Some(State::new());
    let mut work: VecDeque<usize> = VecDeque::from([cfg.entry]);
    let mut steps = 0usize;
    while let Some(b) = work.pop_front() {
        steps += 1;
        if steps > nb.saturating_mul(64) + 256 {
            break; // defensive bound; the lattice converges long before this
        }
        let Some(state) = in_states[b].clone() else { continue };
        let mut out = state;
        let mut scratch = Vec::new();
        for stmt in &cfg.blocks[b].stmts {
            transfer(ctx, params, stmt, &mut out, &mut scratch);
        }
        for &succ in &cfg.blocks[b].succs {
            let changed = if let Some(existing) = in_states[succ].as_mut() {
                join_into(existing, &out)
            } else {
                in_states[succ] = Some(out.clone());
                true
            };
            if changed && !work.contains(&succ) {
                work.push_back(succ);
            }
        }
    }
    // Collection pass with the converged states.
    let mut hits = Vec::new();
    for b in cfg.order() {
        let Some(state) = in_states[b].clone() else { continue };
        let mut st = state;
        for stmt in &cfg.blocks[b].stmts {
            transfer(ctx, params, stmt, &mut st, &mut hits);
        }
    }
    dedup(hits)
}

fn join_into(dst: &mut State, src: &State) -> bool {
    let mut changed = false;
    for (k, v) in src {
        match dst.get_mut(k) {
            Some(d) => {
                let before = d.clone();
                d.union(v);
                if *d != before {
                    changed = true;
                }
            }
            None => {
                dst.insert(k.clone(), v.clone());
                changed = true;
            }
        }
    }
    changed
}

/// One hit per (source, sink) for result sinks; one per (source, sink,
/// origin) for rendering sinks (R006 parity: each render site reports).
fn dedup(hits: Vec<Hit>) -> Vec<Hit> {
    let mut best: BTreeMap<(Source, Sink, usize), Hit> = BTreeMap::new();
    for h in hits {
        let key = match h.sink {
            Sink::Render => (h.source, h.sink, h.origin),
            _ => (h.source, h.sink, 0),
        };
        match best.get_mut(&key) {
            Some(b) => {
                if h.origin < b.origin {
                    b.origin = h.origin;
                }
                b.more += 1;
            }
            None => {
                best.insert(key, h);
            }
        }
    }
    let mut out: Vec<Hit> = best.into_values().collect();
    out.sort_by_key(|h| (h.origin, h.source, h.sink));
    out
}

fn transfer(
    ctx: &FileContext<'_>,
    params: &[String],
    stmt: &Stmt,
    state: &mut State,
    hits: &mut Vec<Hit>,
) {
    match &stmt.kind {
        StmtKind::Let => transfer_let(ctx, stmt, state, hits),
        StmtKind::Return => {
            let t = eval(ctx, (stmt.lo + 1, stmt.hi), state, false, hits);
            sink_all(&t, Sink::Return, hits);
        }
        StmtKind::Tail => {
            let t = eval(ctx, (stmt.lo, stmt.hi), state, false, hits);
            sink_all(&t, Sink::Return, hits);
        }
        StmtKind::BindFrom { pat, expr, iterates } => {
            let mut t = eval(ctx, *expr, state, false, hits);
            if *iterates {
                // `for k in &m`: iterating the container itself.
                for c in expr.0..expr.1 {
                    if ctx.code_type(c) == Some(Ty::Hash)
                        || matches!(ctx.code_text(c), "HashMap" | "HashSet")
                    {
                        t.set(Source::HashIter, c);
                        break;
                    }
                }
            }
            bind_pattern(ctx, *pat, &t, state);
        }
        StmtKind::Expr => transfer_expr(ctx, params, stmt, state, hits),
    }
}

fn sink_all(t: &Taints, sink: Sink, hits: &mut Vec<Hit>) {
    for (source, origin) in t.iter() {
        hits.push(Hit { source, sink, origin, more: 0 });
    }
}

fn transfer_let(ctx: &FileContext<'_>, stmt: &Stmt, state: &mut State, hits: &mut Vec<Hit>) {
    let lo = stmt.lo; // at `let`
    let hi = stmt.hi;
    match find_depth0(ctx, lo + 1, hi, "=") {
        Some(eq) => {
            let colon = find_depth0(ctx, lo + 1, eq, ":");
            let pat = (lo + 1, colon.unwrap_or(eq));
            let ty = colon.map(|c| (c + 1, eq));
            let expect_float =
                ty.is_some_and(|(a, b)| (a..b).any(|c| matches!(ctx.code_text(c), "f32" | "f64")));
            let ty_sanitizes =
                ty.is_some_and(|(a, b)| (a..b).any(|c| ctx.code_text(c).starts_with("BTree")));
            let mut t = eval(ctx, (eq + 1, hi), state, expect_float, hits);
            if ty_sanitizes || (eq + 1..hi).any(|c| ctx.code_text(c).starts_with("BTree")) {
                // Collecting into an ordered container restores
                // determinism for iteration order.
                t.hash = None;
            }
            bind_pattern(ctx, pat, &t, state);
        }
        None => {
            // `let x;` — declared, nothing known yet.
            bind_pattern(ctx, (lo + 1, hi), &Taints::default(), state);
        }
    }
}

fn transfer_expr(
    ctx: &FileContext<'_>,
    params: &[String],
    stmt: &Stmt,
    state: &mut State,
    hits: &mut Vec<Hit>,
) {
    // Sanitizer: an in-place `x.sort*(…)` makes x's order deterministic.
    if is_ident(ctx, stmt.lo)
        && ctx.code_text(stmt.lo + 1) == "."
        && ctx.code_text(stmt.lo + 2).starts_with("sort")
        && ctx.code_text(stmt.lo + 3) == "("
    {
        if let Some(t) = state.get_mut(ctx.code_text(stmt.lo)) {
            t.hash = None;
        }
        return;
    }
    // Assignment: `[*]head(.field | [idx])* <op>= rhs`.
    let mut i = stmt.lo;
    let deref = ctx.code_text(i) == "*";
    if deref {
        i += 1;
    }
    if is_ident(ctx, i) {
        let head = ctx.code_text(i).to_string();
        let mut j = i + 1;
        let mut saw_proj = false;
        loop {
            if ctx.code_text(j) == "." && is_ident(ctx, j + 1) && ctx.code_text(j + 2) != "(" {
                saw_proj = true;
                j += 2;
            } else if ctx.code_text(j) == "[" {
                saw_proj = true;
                j = match_close(ctx, j, stmt.hi) + 1;
            } else {
                break;
            }
        }
        if j < stmt.hi && ASSIGN_OPS.contains(&ctx.code_text(j)) {
            let op = ctx.code_text(j).to_string();
            let t = eval(ctx, (j + 1, stmt.hi), state, false, hits);
            if head == "self" && saw_proj {
                sink_all(&t, Sink::SelfField, hits);
            } else if params.contains(&head) && (deref || saw_proj) {
                sink_all(&t, Sink::OutParam, hits);
            } else if !saw_proj && !deref && op == "=" {
                state.insert(head, t);
            } else {
                let entry = state.entry(head).or_default();
                entry.union(&t);
            }
            return;
        }
    }
    let _ = eval(ctx, (stmt.lo, stmt.hi), state, false, hits);
}

/// Binds every plausible value binder in a pattern range to `t`.
/// Lowercase-first identifiers only (enum variants and types start
/// uppercase by convention); struct-pattern field names (`x:` …) and
/// non-binding keywords are skipped.
fn bind_pattern(ctx: &FileContext<'_>, pat: (usize, usize), t: &Taints, state: &mut State) {
    for c in pat.0..pat.1 {
        if !is_ident(ctx, c) {
            continue;
        }
        let txt = ctx.code_text(c);
        let prev = if c == 0 { "" } else { ctx.code_text(c - 1) };
        // A struct-pattern field name (`Point { x: px }`) is the token
        // before a `:` *inside* the pattern — a `:` just past the range is
        // the binding's own type annotation, which must not skip it.
        if prev == "::" || prev == "." || (c + 1 < pat.1 && ctx.code_text(c + 1) == ":") {
            continue;
        }
        let Some(first) = txt.chars().next() else { continue };
        if first.is_uppercase() || PAT_NON_BINDERS.contains(&txt) {
            continue;
        }
        state.insert(txt.to_string(), t.clone());
    }
}

/// Evaluates an expression range: unions the taints of every identifier
/// use, adds source taints for source patterns in the range, and records
/// a rendering-sink hit when hash-iteration taint meets a rendering sink
/// in the same range.
fn eval(
    ctx: &FileContext<'_>,
    range: (usize, usize),
    state: &State,
    expect_float: bool,
    hits: &mut Vec<Hit>,
) -> Taints {
    let (lo, hi) = range;
    let mut t = Taints::default();
    // Float evidence pre-scan for the parallel-reduction source.
    let mut float_evidence = expect_float;
    for c in lo..hi {
        if let Some(tok) = ctx.code_token(c) {
            if tok.kind == TokenKind::Number && tok.is_float_literal(ctx.src) {
                float_evidence = true;
            }
        }
        if matches!(ctx.code_type(c), Some(ty) if ty.is_float())
            || matches!(ctx.code_text(c), "f32" | "f64")
        {
            float_evidence = true;
        }
    }
    let mut par_seen = false;
    let mut render_at: Option<usize> = None;
    for c in lo..hi {
        if !is_ident(ctx, c) {
            continue;
        }
        let txt = ctx.code_text(c);
        let prev = if c == 0 { "" } else { ctx.code_text(c - 1) };
        let next = ctx.code_text(c + 1);
        // Identifier use resolving to a tainted binding.
        if prev != "." && prev != "::" && next != ":" {
            if let Some(vt) = state.get(txt) {
                t.union(vt);
            }
        }
        // Sources.
        if (ctx.code_type(c) == Some(Ty::Hash) || matches!(txt, "HashMap" | "HashSet"))
            && next == "."
            && ITER_METHODS.contains(&ctx.code_text(c + 2))
            && ctx.code_text(c + 3) == "("
        {
            t.set(Source::HashIter, c);
        }
        if prev == "." && ATOMIC_READS.contains(&txt) && next == "(" && mentions_relaxed(ctx, c + 1)
        {
            t.set(Source::RelaxedLoad, c);
        }
        if next == "(" {
            if txt == "now"
                && prev == "::"
                && matches!(ctx.code_text(c.wrapping_sub(2)), "Instant" | "SystemTime")
            {
                t.set(Source::TimeRng, c - 2);
            }
            if RNG_CALLS.contains(&txt) {
                t.set(Source::TimeRng, c);
            }
            if txt == "current" && prev == "::" && ctx.code_text(c.wrapping_sub(2)) == "thread" {
                t.set(Source::TimeRng, c - 2);
            }
            if txt == "id" && prev == "::" && ctx.code_text(c.wrapping_sub(2)) == "process" {
                t.set(Source::TimeRng, c - 2);
            }
        }
        if prev == "." && PAR_ITERS.contains(&txt) && next == "(" {
            par_seen = true;
        }
        if par_seen && prev == "." && REDUCERS.contains(&txt) && (next == "(" || next == "::") {
            let turbo_float = next == "::"
                && (c + 2..(c + 6).min(hi)).any(|d| matches!(ctx.code_text(d), "f32" | "f64"));
            if float_evidence || turbo_float {
                t.set(Source::FloatReduce, c);
            }
        }
        if RENDER_SINKS.contains(&txt) && (next == "(" || next == "!") && render_at.is_none() {
            render_at = Some(c);
        }
    }
    if let (Some(origin), Some(_)) = (t.hash, render_at) {
        hits.push(Hit { source: Source::HashIter, sink: Sink::Render, origin, more: 0 });
    }
    t
}

fn is_ident(ctx: &FileContext<'_>, c: usize) -> bool {
    ctx.code_token(c).map(|t| t.kind) == Some(TokenKind::Ident)
}

/// Whether the call whose `(` sits at `open` mentions `Relaxed` in its
/// arguments.
fn mentions_relaxed(ctx: &FileContext<'_>, open: usize) -> bool {
    let mut depth = 0usize;
    let mut c = open;
    while c < ctx.code.len() {
        match ctx.code_text(c) {
            "(" => depth += 1,
            ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return false;
                }
            }
            "Relaxed" => return true,
            _ => {}
        }
        c += 1;
    }
    false
}

/// Index of the first `what` at delimiter depth 0 in `[from, hi)`.
fn find_depth0(ctx: &FileContext<'_>, from: usize, hi: usize, what: &str) -> Option<usize> {
    let mut depth = 0usize;
    for c in from..hi {
        let t = ctx.code_text(c);
        match t {
            "(" | "[" | "{" => {
                if depth == 0 && t == what {
                    return Some(c);
                }
                depth += 1;
            }
            ")" | "]" | "}" => depth = depth.saturating_sub(1),
            _ => {
                if depth == 0 && t == what {
                    return Some(c);
                }
            }
        }
    }
    None
}

/// Matching close bracket for the `[` at `at`, clamped to `hi`.
fn match_close(ctx: &FileContext<'_>, at: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    for c in at..hi {
        match ctx.code_text(c) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return c;
                }
            }
            _ => {}
        }
    }
    hi.saturating_sub(1).max(at)
}

// ---------------------------------------------------------------------------
// Rule emitters.

/// Per-file pass: R013's rendering-sink form (the old R006), contract or
/// not. Suppression kind: `nondet_iter`.
pub(crate) fn check_file(fa: &FileAnalysis<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    fa.tree.walk(|_path, item| {
        if item.kind != crate::parser::ItemKind::Fn {
            return;
        }
        let Some(body) = item.body else { return };
        if fa.ctx.code_in_test(item.name_code) {
            return;
        }
        for h in analyze_fn(&fa.ctx, body, &item.params) {
            if h.sink != Sink::Render {
                continue;
            }
            out.push(Finding {
                kind: "nondet_iter",
                diag: fa
                    .ctx
                    .diagnostic_at(
                        h.origin,
                        "R013",
                        "HashMap/HashSet iteration feeds rendered output; hash order is \
                         nondeterministic across runs",
                    )
                    .with_suggestion(
                        "use a BTreeMap/BTreeSet, sort before rendering, or annotate with \
                         `// lint: allow(nondet_iter): <reason>`",
                    ),
            });
        }
    });
    out
}

/// The contract entry points: every function carrying a
/// `// lint: contract(deterministic)` annotation.
pub(crate) fn contract_entries(graph: &WorkspaceGraph) -> Vec<usize> {
    graph.fns.iter().enumerate().filter(|(_, f)| f.is_contract).map(|(i, _)| i).collect()
}

/// Workspace pass: R012/R014/R015 and R013's result-sink form, scoped to
/// functions reachable from a deterministic contract, with witness chains.
/// Also reports contract annotations that attach to no function (R004
/// family, kind `stale_contract`).
pub(crate) fn check_workspace(
    analyses: &[FileAnalysis<'_>],
    graph: &WorkspaceGraph,
) -> Vec<(usize, Finding)> {
    let mut out = Vec::new();
    for (fi, fa) in analyses.iter().enumerate() {
        for a in &fa.ctx.contracts {
            let location = format!("{}:{}:{}", fa.ctx.rel, a.span.line, a.span.column);
            if a.kind != "deterministic" {
                out.push((
                    fi,
                    Finding {
                        kind: "stale_contract",
                        diag: Diagnostic::new(
                            "R004",
                            Severity::Error,
                            location,
                            format!(
                                "unknown contract kind `{}` (the recognized kind is \
                                 `deterministic`)",
                                a.kind
                            ),
                        )
                        .with_span(a.span),
                    },
                ));
                continue;
            }
            let attached = graph
                .fns
                .iter()
                .any(|f| f.file == fi && (f.span.line == a.line || f.span.line == a.line + 1));
            if !attached {
                out.push((
                    fi,
                    Finding {
                        kind: "stale_contract",
                        diag: Diagnostic::new(
                            "R004",
                            Severity::Error,
                            location,
                            "`// lint: contract(deterministic)` attaches to no function \
                             (it must sit on the `fn` line or the line above)",
                        )
                        .with_span(a.span),
                    },
                ));
            }
        }
    }
    let entries = contract_entries(graph);
    if entries.is_empty() {
        return out;
    }
    let parent = graph.reachable_from(&entries);
    for (i, f) in graph.fns.iter().enumerate() {
        if parent[i].is_none() || f.is_test {
            continue;
        }
        let Some(body) = f.body else { continue };
        let fa = &analyses[f.file];
        let hits = analyze_fn(&fa.ctx, body, &f.params);
        let chain = graph.chain_to(&parent, i);
        let render_origins: BTreeSet<usize> =
            hits.iter().filter(|h| h.sink == Sink::Render).map(|h| h.origin).collect();
        for h in &hits {
            if h.sink == Sink::Render {
                continue; // the per-file pass owns rendering sinks
            }
            if h.source == Source::HashIter && render_origins.contains(&h.origin) {
                continue; // already flagged at this origin by the render form
            }
            let (rule, kind, what, sugg) = describe(h.source);
            let sink_txt = match h.sink {
                Sink::OutParam => "out-parameter",
                Sink::SelfField => "written field",
                // Render is filtered above; fold it with Return so this
                // match stays total without a panic site.
                Sink::Return | Sink::Render => "returned value",
            };
            let more =
                if h.more > 0 { format!(" (+{} more such flows)", h.more) } else { String::new() };
            out.push((
                f.file,
                Finding {
                    kind,
                    diag: fa
                        .ctx
                        .diagnostic_at(
                            h.origin,
                            rule,
                            format!(
                                "{what} reaches the {sink_txt}{more}; within deterministic \
                                 contract: {chain}"
                            ),
                        )
                        .with_suggestion(sugg),
                },
            ));
        }
    }
    out
}

fn describe(source: Source) -> (&'static str, &'static str, &'static str, &'static str) {
    match source {
        Source::FloatReduce => (
            "R012",
            "nondet_reduce",
            "parallel float reduction (order-dependent rounding)",
            "reduce sequentially over the parallel map's collected results, or annotate with \
             `// lint: allow(nondet_reduce): <reason>`",
        ),
        Source::HashIter => (
            "R013",
            "nondet_iter",
            "HashMap/HashSet iteration-order-dependent value",
            "use a BTreeMap/BTreeSet or sort before accumulating, or annotate with \
             `// lint: allow(nondet_iter): <reason>`",
        ),
        Source::RelaxedLoad => (
            "R014",
            "relaxed_result",
            "Ordering::Relaxed atomic read",
            "certified results need a stronger ordering or a deterministic data path; telemetry \
             counters stay exempt via `// lint: allow(relaxed_result): <reason>`",
        ),
        Source::TimeRng => (
            "R015",
            "nondet_time",
            "wall-clock/RNG-derived value",
            "thread a seed or an explicit clock through the caller, or annotate with \
             `// lint: allow(nondet_time): <reason>`",
        ),
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_source, FileRole};

    fn rules(src: &str) -> Vec<String> {
        lint_source("crates/x/src/a.rs", src, FileRole::Library)
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    // --- R013 rendering form: R006 parity ---------------------------------

    #[test]
    fn rendering_for_loop_is_flagged() {
        let src = "fn f() -> String {\n\
                   let m: HashMap<String, u32> = HashMap::new();\n\
                   let mut out = String::new();\n\
                   for (k, v) in &m { out.push_str(k); }\n\
                   out\n}";
        assert_eq!(rules(src), vec!["R013"]);
    }

    #[test]
    fn chain_into_join_is_flagged() {
        let src = "fn f() -> String {\n\
                   let s = HashSet::new();\n\
                   s.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(\",\")\n}";
        assert_eq!(rules(src), vec!["R013"]);
    }

    #[test]
    fn membership_and_sorted_uses_pass() {
        // Insert/lookup only: no iteration, no finding.
        let src = "fn f(x: &str) -> bool {\n\
                   let mut s = HashSet::new();\n\
                   s.insert(x.to_string());\n\
                   s.contains(x)\n}";
        assert!(rules(src).is_empty());
        // Vec iteration with a sink: not a hash container.
        let vec_render = "fn f(v: &[String]) -> String {\n\
                          let mut out = String::new();\n\
                          for s in v { out.push_str(s); }\n\
                          out\n}";
        assert!(rules(vec_render).is_empty());
    }

    #[test]
    fn multi_statement_flow_is_caught_and_sort_sanitizes() {
        // R006 could not see across statements; the dataflow form can.
        let flow = "fn f() -> String {\n\
                    let m = HashMap::new();\n\
                    let v: Vec<String> = m.keys().cloned().collect();\n\
                    v.join(\",\")\n}";
        assert_eq!(rules(flow), vec!["R013"]);
        // …and sorting in between is the sanctioned fix.
        let sorted = "fn f() -> String {\n\
                      let m = HashMap::new();\n\
                      let mut v: Vec<String> = m.keys().cloned().collect();\n\
                      v.sort();\n\
                      v.join(\",\")\n}";
        assert!(rules(sorted).is_empty(), "{:?}", rules(sorted));
        // Collecting into a BTreeMap sanitizes too.
        let btree = "fn f() -> String {\n\
                     let m = HashMap::new();\n\
                     let b: BTreeMap<String, u32> = m.iter().collect();\n\
                     let mut out = String::new();\n\
                     for (k, _v) in &b { out.push_str(k); }\n\
                     out\n}";
        assert!(rules(btree).is_empty(), "{:?}", rules(btree));
    }

    #[test]
    fn annotation_suppresses() {
        let src = "fn f() -> String {\n\
                   let m = HashMap::new();\n\
                   let mut out = String::new();\n\
                   // lint: allow(nondet_iter): debug dump, order is irrelevant\n\
                   for k in m.keys() { out.push_str(k); }\n\
                   out\n}";
        assert!(rules(src).is_empty());
    }
}
