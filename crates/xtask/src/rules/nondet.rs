//! R006 — `HashMap`/`HashSet` iteration feeding ordered or rendered
//! output.
//!
//! Hash iteration order is randomized per process; a report, table, or
//! serialized artifact built by iterating a hash container differs from
//! run to run, which breaks the repository's bit-for-bit reproducibility
//! contract. The rule fires on positive evidence only:
//!
//! * a `for … in <hash>` loop whose body contains a rendering sink
//!   (`push_str`, `write!`/`writeln!`, `print!`/`println!`, `format!`,
//!   `join`, …), or
//! * a method chain `<hash>.iter()/.keys()/.values()` that reaches a
//!   rendering sink in the same statement.
//!
//! Collecting into a `Vec` and sorting, or collecting into a `BTreeMap`,
//! never matches — those are the deterministic fixes the suggestion
//! recommends.

use super::{FileContext, Finding, Ty};

/// Identifiers that turn iteration output into rendered/ordered artifacts.
const SINKS: [&str; 10] = [
    "push_str",
    "write_str",
    "write",
    "writeln",
    "print",
    "println",
    "eprint",
    "eprintln",
    "format",
    "join",
];

/// Hash iteration entry points.
const ITERATORS: [&str; 5] = ["iter", "keys", "values", "into_iter", "drain"];

/// Scans one file. Suppression kind: `nondet_iter`.
pub fn check(ctx: &FileContext<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for c in 0..ctx.code.len() {
        if ctx.code_in_test(c) {
            continue;
        }
        if ctx.code_text(c) == "for" {
            if let Some(f) = check_for_loop(ctx, c) {
                out.push(f);
            }
        } else if is_hash_ident(ctx, c) && ctx.code_text(c + 1) == "." {
            if let Some(f) = check_chain(ctx, c) {
                out.push(f);
            }
        }
    }
    out
}

fn is_hash_ident(ctx: &FileContext<'_>, c: usize) -> bool {
    ctx.code_type(c) == Some(Ty::Hash)
}

fn finding(ctx: &FileContext<'_>, c: usize) -> Finding {
    Finding {
        kind: "nondet_iter",
        diag: ctx
            .diagnostic_at(
                c,
                "R006",
                "HashMap/HashSet iteration feeds rendered output; hash order is \
                 nondeterministic across runs",
            )
            .with_suggestion(
                "use a BTreeMap/BTreeSet, sort before rendering, or annotate with \
                 `// lint: allow(nondet_iter): <reason>`",
            ),
    }
}

/// `for <pat> in <expr> { <body> }` where `<expr>` mentions a hash
/// container and `<body>` contains a sink.
fn check_for_loop(ctx: &FileContext<'_>, at: usize) -> Option<Finding> {
    // Locate `in`, then the loop brace at bracket depth 0.
    let mut c = at + 1;
    while c < ctx.code.len() && ctx.code_text(c) != "in" {
        if ctx.code_text(c) == "{" {
            return None; // no `in`: malformed or not a for loop
        }
        c += 1;
    }
    let expr_start = c + 1;
    let mut depth = 0usize;
    let mut brace = None;
    let mut hash_at = None;
    let mut d = expr_start;
    while d < ctx.code.len() {
        let t = ctx.code_text(d);
        match t {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => {
                brace = Some(d);
                break;
            }
            _ => {}
        }
        if hash_at.is_none() && (is_hash_ident(ctx, d) || t == "HashMap" || t == "HashSet") {
            hash_at = Some(d);
        }
        d += 1;
    }
    let brace = brace?;
    let hash_at = hash_at?;
    let body_end = super::matching(ctx.src, &ctx.tokens, &ctx.code, brace, "{", "}")
        .unwrap_or(ctx.code.len().saturating_sub(1));
    let has_sink = (brace + 1..body_end).any(|b| SINKS.contains(&ctx.code_text(b)));
    has_sink.then(|| finding(ctx, hash_at))
}

/// `<hash>.iter()…` chains: flagged when the same statement reaches a
/// sink. A statement that opens a block before its `;` (a `for`/`if`
/// header) is left to the loop form above.
fn check_chain(ctx: &FileContext<'_>, at: usize) -> Option<Finding> {
    if !ITERATORS.contains(&ctx.code_text(at + 2)) {
        return None;
    }
    let mut c = at + 2;
    let mut saw_sink = false;
    while c < ctx.code.len() {
        let t = ctx.code_text(c);
        if t == ";" {
            break;
        }
        if t == "{" {
            return None; // header of a block construct: loop form owns it
        }
        if SINKS.contains(&t) {
            saw_sink = true;
        }
        c += 1;
    }
    saw_sink.then(|| finding(ctx, at))
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_source, FileRole};

    fn rules(src: &str) -> Vec<String> {
        lint_source("crates/x/src/a.rs", src, FileRole::Library)
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn rendering_for_loop_is_flagged() {
        let src = "fn f() -> String {\n\
                   let m: HashMap<String, u32> = HashMap::new();\n\
                   let mut out = String::new();\n\
                   for (k, v) in &m { out.push_str(k); }\n\
                   out\n}";
        assert_eq!(rules(src), vec!["R006"]);
    }

    #[test]
    fn chain_into_join_is_flagged() {
        let src = "fn f() -> String {\n\
                   let s = HashSet::new();\n\
                   s.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(\",\")\n}";
        assert_eq!(rules(src), vec!["R006"]);
    }

    #[test]
    fn membership_and_sorted_uses_pass() {
        // Insert/lookup only: no iteration, no finding.
        let src = "fn f(x: &str) -> bool {\n\
                   let mut s = HashSet::new();\n\
                   s.insert(x.to_string());\n\
                   s.contains(x)\n}";
        assert!(rules(src).is_empty());
        // Collect to a Vec (caller sorts): no sink in the statement.
        let collect = "fn f() -> Vec<String> {\n\
                       let m = HashMap::new();\n\
                       let v: Vec<String> = m.keys().cloned().collect();\n\
                       v\n}";
        assert!(rules(collect).is_empty());
        // Vec iteration with a sink: not a hash container.
        let vec_render = "fn f(v: &[String]) -> String {\n\
                          let mut out = String::new();\n\
                          for s in v { out.push_str(s); }\n\
                          out\n}";
        assert!(rules(vec_render).is_empty());
    }

    #[test]
    fn annotation_suppresses() {
        let src = "fn f() -> String {\n\
                   let m = HashMap::new();\n\
                   let mut out = String::new();\n\
                   // lint: allow(nondet_iter): debug dump, order is irrelevant\n\
                   for k in m.keys() { out.push_str(k); }\n\
                   out\n}";
        assert!(rules(src).is_empty());
    }
}
