//! # xtask — the repository lint engine
//!
//! Token-level static analysis of the workspace's own sources, exposed to
//! the `cargo xtask lint` binary and to the fixture-based integration
//! tests. The engine is a hand-rolled, dependency-free [`lexer`] (lossless
//! token stream with byte/line spans) plus a [`rules`] layer that walks the
//! stream with a little shared context: a `#[cfg(test)]` mask computed by
//! attribute tracking, the `// lint: allow(…)` annotation table, and local
//! let-binding/parameter type inference.
//!
//! Rules (all `Error` severity, all reported as
//! [`catalyze_check::Diagnostic`]s with precise spans):
//!
//! | Rule | Finding |
//! |------|---------|
//! | R001 | panic-family call (`.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`) in library non-test code without a `panic` annotation |
//! | R002 | exact float `==`/`!=` — against a literal or between float-typed variables — without a `float_cmp` annotation |
//! | R003 | crate root missing the lint header (`#![warn(missing_docs)]` + `#![forbid(unsafe_code)]` for libraries, forbid-only for binaries) |
//! | R004 | stale `// lint: allow(…)` annotation that suppresses nothing |
//! | R005 | lossy numeric `as` cast (`f64→f32`, float→int, `u64→usize`/narrower) without a `lossy_cast` annotation |
//! | R007 | raw `Instant::now()` outside `crates/obs/` without a `raw_timing` annotation |
//! | R008 | `Mutex`/`RwLock` guard held across a rayon call, re-acquired, or acquired in inconsistent order (`lock_hygiene`) |
//! | R009 | crate import outside the declarative layering DAG in `crates/xtask/layering.lint` (`layering`) |
//! | R010 | panic site or caller-controlled index reachable from a service entry point (`reachable_panic`) |
//! | R011 | `pub` item referenced by no other crate, test, example, or bench (`dead_api`) |
//! | R012 | rayon parallel float reduction (`par_iter().sum/product/fold/reduce` with float evidence) inside a deterministic contract (`nondet_reduce`) |
//! | R013 | `HashMap`/`HashSet` iteration feeding rendered output anywhere, or numeric/result state inside a deterministic contract (`nondet_iter`; subsumes the retired R006, SARIF-aliased) |
//! | R014 | `Ordering::Relaxed` atomic read feeding a certified result inside a deterministic contract (`relaxed_result`) |
//! | R015 | wall-clock/unseeded-RNG/thread-id value feeding a result inside a deterministic contract (`nondet_time`) |
//!
//! R001–R007 are per-file token rules; R008–R011 run on the workspace
//! graph built by [`parser`] (per-file item trees) and [`graph`]
//! (cross-crate module inventory plus approximate call graph). R012–R015
//! are the determinism dataflow rules: a taint analysis over per-function
//! control-flow graphs ([`cfg`]) whose contract-scoped forms fire in
//! functions reachable from a `// lint: contract(deterministic)`
//! annotation, with witness call chains in the message (same UX as R010).
//!
//! Annotations are `// lint: allow(<kinds>): <reason>` with a mandatory
//! reason, on the flagged line or the line above; the kind list may be
//! comma-separated when several rules flag one site. Deterministic
//! contracts are `// lint: contract(deterministic)` with the same
//! placement. Test items (`#[cfg(test)]`, `#[test]`) are exempt wherever
//! they appear in a file; `src/main.rs` and `src/bin/` are additionally
//! exempt from R001/R005/R010/R011.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cfg;
pub mod fix;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use rules::{lint_repo, lint_source, lint_workspace, role_of, FileRole};
