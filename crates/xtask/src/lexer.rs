//! A hand-rolled, dependency-free Rust lexer.
//!
//! Produces a **lossless** token stream: concatenating every token's source
//! slice reproduces the input byte-for-byte (whitespace and comments are
//! tokens too). Every token carries a byte span plus the 1-based line and
//! column of its first byte, so rules built on top can emit diagnostics
//! that point at the exact flagged token rather than a whole line.
//!
//! The lexer understands the constructs that defeat line-based scanning:
//!
//! * line comments vs. doc comments (`//`, `///`, `//!`);
//! * block comments, **nested** block comments, and block doc comments;
//! * string, raw-string (`r"…"`, `r#"…"#`, any number of hashes), byte-,
//!   raw-byte-, and C-string literals — a `panic!` inside any of them is
//!   literal text, not code;
//! * char literals vs. lifetimes (`'a'` vs. `'a`);
//! * numeric literals with underscores, exponents, radix prefixes, and
//!   type suffixes (float-ness is exposed via [`Token::is_float_literal`]);
//! * multi-character operators (`==`, `!=`, `->`, `::`, …) as single
//!   tokens, so `<=` can never be mistaken for `=`.
//!
//! It does **not** parse: there is no AST, no name resolution, no types.
//! The rule layer (`crate::rules`) adds the small amount of context it
//! needs (attribute tracking, local let-binding type inference) on top of
//! this stream.

use catalyze_check::Span;

/// What a token is. `Whitespace` and the comment kinds make the stream
/// lossless; rules usually iterate "code tokens" (everything else).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers `r#move`).
    Ident,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// Integer or float literal, including suffix (`1_000u64`, `2.5e-3`).
    Number,
    /// String-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
    /// `c"…"`, or a char/byte-char literal `'x'` / `b'x'`.
    Literal,
    /// `//` comment, including `///` and `//!` doc comments.
    LineComment,
    /// `/* … */` comment (nesting handled), including `/** … */`.
    BlockComment,
    /// One operator or delimiter, maximal-munch (`==` is one token).
    Punct,
    /// Horizontal/vertical whitespace run.
    Whitespace,
}

/// One token: a kind plus the byte/line/column span of its source slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification of the slice.
    pub kind: TokenKind,
    /// Where the slice sits in the source (byte offsets, 1-based line/col).
    pub span: Span,
}

impl Token {
    /// The token's source text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.span.start..self.span.end]
    }

    /// True for `Number` tokens that are float literals: a decimal point,
    /// a decimal exponent, or an explicit `f32`/`f64` suffix (radix-prefixed
    /// integers like `0x1e5` are not floats).
    pub fn is_float_literal(&self, src: &str) -> bool {
        if self.kind != TokenKind::Number {
            return false;
        }
        let t = self.text(src);
        if t.ends_with("f32") || t.ends_with("f64") {
            return true;
        }
        if t.starts_with("0x") || t.starts_with("0X") || t.starts_with("0b") || t.starts_with("0o")
        {
            return false;
        }
        // `e`/`E` only marks an exponent when followed by an optional sign
        // and a digit; the `e` in integer suffixes (`0usize`) does not.
        t.contains('.') || has_exponent(t)
    }
}

/// True when `t` contains a decimal exponent: `e`/`E` followed by an
/// optional `+`/`-` and at least one digit (`2e5`, `1E-3`).
fn has_exponent(t: &str) -> bool {
    let b = t.as_bytes();
    b.iter().enumerate().any(|(i, &c)| {
        (c == b'e' || c == b'E')
            && match b.get(i + 1) {
                Some(b'+' | b'-') => b.get(i + 2).is_some_and(u8::is_ascii_digit),
                Some(d) => d.is_ascii_digit(),
                None => false,
            }
    })
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the table in order.
const OPERATORS: [&str; 25] = [
    "<<=", ">>=", "...", "..=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "!",
];

/// Tokenizes `src` into a lossless stream. The lexer never fails: bytes it
/// cannot classify become single-character `Punct` tokens, so rules stay
/// robust on adversarial input.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1, out: Vec::new() }.run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let kind = self.next_kind();
            self.push(kind, start);
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Classifies and consumes one token starting at `self.pos`.
    fn next_kind(&mut self) -> TokenKind {
        let b = self.bytes[self.pos];
        match b {
            b if b.is_ascii_whitespace() => {
                while self.peek(0).is_some_and(|c| c.is_ascii_whitespace()) {
                    self.pos += 1;
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|c| c != b'\n') {
                    self.pos += 1;
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.pos += 2;
                let mut depth = 1usize;
                while depth > 0 && self.pos < self.bytes.len() {
                    if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                        depth += 1;
                        self.pos += 2;
                    } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                        depth -= 1;
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                self.pos += 1;
                self.consume_quoted(b'"');
                TokenKind::Literal
            }
            b'\'' => self.lex_quote(),
            b if b.is_ascii_digit() => self.lex_number(),
            b if is_ident_start(b) => {
                if let Some(kind) = self.try_prefixed_literal() {
                    return kind;
                }
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
                TokenKind::Ident
            }
            _ => {
                for op in OPERATORS {
                    if self.src[self.pos..].starts_with(op) {
                        self.pos += op.len();
                        return TokenKind::Punct;
                    }
                }
                // One char (not byte): keep multi-byte UTF-8 intact.
                let ch_len = self.src[self.pos..].chars().next().map(char::len_utf8).unwrap_or(1);
                self.pos += ch_len;
                TokenKind::Punct
            }
        }
    }

    /// Tries to lex a prefixed literal at an identifier-start position:
    /// raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`, `br#"…"#`),
    /// byte chars (`b'x'`), C strings (`c"…"`, `cr"…"`), and raw
    /// identifiers (`r#move`). Returns `None` when the identifier is just
    /// an identifier — nothing has been consumed in that case.
    fn try_prefixed_literal(&mut self) -> Option<TokenKind> {
        let rest = &self.src[self.pos..];
        let (prefix_len, raw) = if rest.starts_with("br") || rest.starts_with("cr") {
            (2, true)
        } else if rest.starts_with('r') {
            (1, true)
        } else if rest.starts_with('b') || rest.starts_with('c') {
            (1, false)
        } else {
            return None;
        };

        if !raw {
            // b"…" / c"…" with escapes, or b'x'.
            match self.bytes.get(self.pos + prefix_len) {
                Some(b'"') => {
                    self.pos += prefix_len + 1;
                    self.consume_quoted(b'"');
                    Some(TokenKind::Literal)
                }
                Some(b'\'') if rest.starts_with('b') => {
                    self.pos += prefix_len + 1;
                    self.consume_quoted(b'\'');
                    Some(TokenKind::Literal)
                }
                _ => None,
            }
        } else {
            let mut hashes = 0usize;
            while self.bytes.get(self.pos + prefix_len + hashes) == Some(&b'#') {
                hashes += 1;
            }
            match self.bytes.get(self.pos + prefix_len + hashes) {
                Some(b'"') => {
                    self.pos += prefix_len + hashes + 1;
                    self.consume_raw_string(hashes);
                    Some(TokenKind::Literal)
                }
                Some(&b) if prefix_len == 1 && hashes == 1 && is_ident_start(b) => {
                    // r#ident raw identifier.
                    self.pos += 2;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.pos += 1;
                    }
                    Some(TokenKind::Ident)
                }
                _ => None,
            }
        }
    }

    /// Consumes a raw-string body: ends at `"` followed by `hashes` `#`s.
    /// No escapes exist inside raw strings.
    fn consume_raw_string(&mut self, hashes: usize) {
        while let Some(b) = self.peek(0) {
            self.pos += 1;
            if b == b'"' {
                let mut k = 0;
                while k < hashes && self.peek(0) == Some(b'#') {
                    self.pos += 1;
                    k += 1;
                }
                if k == hashes {
                    return;
                }
            }
        }
    }

    /// Consumes to the closing `delim`, honoring backslash escapes.
    fn consume_quoted(&mut self, delim: u8) {
        while let Some(b) = self.peek(0) {
            self.pos += 1;
            if b == b'\\' {
                self.pos += 1; // skip the escaped byte
            } else if b == delim {
                break;
            }
        }
        self.pos = self.pos.min(self.bytes.len());
    }

    /// `'a'` is a char literal, `'a` a lifetime, `'outer` a label.
    fn lex_quote(&mut self) -> TokenKind {
        self.pos += 1; // the opening quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal. Do not consume the backslash here:
                // `consume_quoted` skips escape pairs itself, and eating the
                // backslash first would make it treat the *escaped* byte as
                // a fresh escape — `'\\'` would then swallow its closing
                // quote and the rest of the line.
                self.consume_quoted(b'\'');
                TokenKind::Literal
            }
            Some(b) if is_ident_start(b) => {
                if self.peek(1) == Some(b'\'') {
                    self.pos += 2;
                    TokenKind::Literal // 'x'
                } else {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.pos += 1;
                    }
                    TokenKind::Lifetime
                }
            }
            Some(b'\'') => {
                self.pos += 1; // degenerate '' — treat as literal
                TokenKind::Literal
            }
            _ => {
                // Char literal with non-ident content, e.g. '+' or a
                // multi-byte char like 'τ'.
                self.consume_quoted(b'\'');
                TokenKind::Literal
            }
        }
    }

    fn lex_number(&mut self) -> TokenKind {
        let radix_prefixed =
            self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'X' | b'b' | b'o'));
        if radix_prefixed {
            self.pos += 2;
            while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                self.pos += 1;
            }
            return TokenKind::Number;
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            self.pos += 1;
        }
        // A decimal point only belongs to the number when it is not the
        // start of a range (`1..10`) or a method call (`1.max(2)`).
        if self.peek(0) == Some(b'.')
            && self.peek(1) != Some(b'.')
            && !self.peek(1).is_some_and(is_ident_start)
        {
            self.pos += 1;
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E'))
            && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek(1), Some(b'+' | b'-'))
                    && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
        {
            self.pos += 1;
            if matches!(self.peek(0), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                self.pos += 1;
            }
        }
        // Type suffix (`u64`, `f32`, `usize`, …).
        while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        TokenKind::Number
    }

    /// Emits the token covering `[start, self.pos)` and advances the
    /// line/column bookkeeping over its text.
    fn push(&mut self, kind: TokenKind, start: usize) {
        let span = Span { start, end: self.pos, line: self.line, column: self.col };
        for ch in self.src[start..self.pos].chars() {
            if ch == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        self.out.push(Token { kind, span });
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn lossless_reassembly() {
        let src = r##"fn f() -> u64 { let s = r#"panic!("x")"#; s.len() as u64 } // tail"##;
        let toks = tokenize(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn raw_string_swallows_panic() {
        let src = r##"let s = r#"panic!("boom") // not code"#;"##;
        let toks = texts(src);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Literal && t.contains("panic!")));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let x = 1;";
        let toks = texts(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "let".to_string()));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = texts("fn f<'a>(x: &'a str) { let c = 'x'; let t = '\\n'; }");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Literal && t == "'x'"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Literal && t == "'\\n'"));
    }

    #[test]
    fn backslash_and_quote_char_literals_terminate() {
        // `'\\'` must not treat its escaped backslash as a fresh escape
        // (which would swallow the closing quote and the code after it).
        let toks = texts(r#"let bs = '\\'; let q = '\''; let d = '"'; let x = 1;"#);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Literal && t == r"'\\'"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Literal && t == r"'\''"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Literal && t == "'\"'"));
        assert_eq!(toks.iter().filter(|(_, t)| t == "x").count(), 1);
    }

    #[test]
    fn float_literal_detection() {
        let src = "1.5 2e3 0.5f32 7 1_000u64 0x1e5 1..2 0usize 7isize 1E-3";
        let toks: Vec<Token> =
            tokenize(src).into_iter().filter(|t| t.kind == TokenKind::Number).collect();
        let flags: Vec<bool> = toks.iter().map(|t| t.is_float_literal(src)).collect();
        // The `e` in `0usize`/`7isize` is an integer suffix, not an exponent.
        assert_eq!(
            flags,
            vec![true, true, true, false, false, false, false, false, false, false, true]
        );
    }

    #[test]
    fn multichar_operators_are_single_tokens() {
        let toks = texts("a == b != c <= d >= e .. f ..= g :: h -> i");
        let puncts: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Punct).map(|(_, t)| t.as_str()).collect();
        assert_eq!(puncts, vec!["==", "!=", "<=", ">=", "..", "..=", "::", "->"]);
    }

    #[test]
    fn spans_carry_lines_and_columns() {
        let src = "let a = 1;\n  let b = 2.5;";
        let toks = tokenize(src);
        let b25 = toks
            .iter()
            .find(|t| t.kind == TokenKind::Number && t.text(src) == "2.5")
            .expect("2.5 token");
        assert_eq!((b25.span.line, b25.span.column), (2, 11));
        assert_eq!(&src[b25.span.start..b25.span.end], "2.5");
    }

    #[test]
    fn doc_comments_are_line_comments() {
        let toks = texts("/// doc == 0.0\n//! inner\n// lint: allow(panic): reason");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::LineComment).count(), 3);
    }
}
