//! Per-function control-flow graphs over the item parser's opaque
//! function bodies.
//!
//! The item parser ([`crate::parser`]) deliberately leaves `fn` bodies as
//! raw code-token ranges. This module structures one such range into a
//! small CFG for the dataflow rules (R012–R015): basic blocks of
//! statements connected by edges that follow the statement-level subset of
//! Rust's control flow the lint engine understands —
//!
//! * straight-line statements (`let`, assignments, expression statements,
//!   `return`, the trailing tail expression);
//! * `if` / `else if` / `else` chains and `if let` (branch + join);
//! * `match` with one branch per arm, arm patterns binding from the
//!   scrutinee;
//! * `for` / `while` / `while let` / `loop` with a loop-head block, a back
//!   edge, and an exit edge (so taint reaching the end of a loop body
//!   flows back around);
//! * bare `{ … }` and `unsafe { … }` blocks, flattened inline.
//!
//! Everything else — closures, `if`/`match` *inside* expressions,
//! `break`/`continue` targets — stays inside a single statement whose
//! token range the taint evaluator scans conservatively. Like the item
//! parser, the builder is **total** (bounds-checked accessors, guaranteed
//! progress) and **recovering**: a construct that does not parse (an `if`
//! with no block, an unmatched delimiter) becomes an [`BlockKind::Unknown`]
//! block covering the salvaged token range, and building resumes at the
//! next statement boundary. One broken construct never hides the rest of
//! the function.
//!
//! Edges are over-approximate on purpose (loops always have an exit edge,
//! `break`/`continue` fall through) — extra paths can only add taint, and
//! the dataflow rules act on positive evidence, so over-approximation is
//! the safe direction.

use crate::rules::FileContext;

/// How a block participates in control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// An ordinary run of statements.
    Basic,
    /// The head of a `for`/`while`/`loop`; has a back edge into it.
    LoopHead,
    /// Recovery block for a construct the grammar subset does not cover.
    Unknown,
}

/// What a statement is, as far as the taint transfer needs to know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `let <pat>(: <ty>)? = <init>;` (including `let … else`).
    Let,
    /// `return <expr>?;`
    Return,
    /// The function's trailing tail expression — its value is returned.
    Tail,
    /// A pattern binding from an expression: `for <pat> in <expr>`,
    /// `if let <pat> = <expr>`, or a match arm binding from its scrutinee.
    BindFrom {
        /// Code-token range `[lo, hi)` of the pattern.
        pat: (usize, usize),
        /// Code-token range `[lo, hi)` of the bound-from expression.
        expr: (usize, usize),
        /// True for `for` loops: the expression is *iterated*, so a bare
        /// hash container in it is itself an unordered-iteration source.
        iterates: bool,
    },
    /// Anything else: assignments, calls, condition expressions.
    Expr,
}

/// One statement: a code-token range plus its classification.
#[derive(Debug, Clone)]
// lint: allow(dead_api): statement record in Block's public fields, walked by the dataflow rules
pub struct Stmt {
    /// First code-token index of the statement.
    pub lo: usize,
    /// One past the last code-token index (the terminating `;` excluded).
    pub hi: usize,
    /// The statement's classification.
    pub kind: StmtKind,
}

/// One basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// The block's kind.
    pub kind: BlockKind,
    /// Statements in execution order.
    pub stmts: Vec<Stmt>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// The control-flow graph of one function body.
pub struct Cfg {
    /// All blocks; `blocks[entry]` and `blocks[exit]` are empty sentinels.
    pub blocks: Vec<Block>,
    /// Index of the entry block.
    pub entry: usize,
    /// Index of the exit block.
    pub exit: usize,
}

impl Cfg {
    /// Builds the CFG for a body given as the code-token indices of its
    /// opening and closing braces (inclusive), as recorded by the item
    /// parser.
    pub fn build(ctx: &FileContext<'_>, open: usize, close: usize) -> Cfg {
        let mut b = Builder { ctx, blocks: Vec::new() };
        let entry = b.new_block(BlockKind::Basic);
        let exit = b.new_block(BlockKind::Basic);
        let first = b.new_block(BlockKind::Basic);
        b.link(entry, first);
        let lo = open + 1;
        let hi = close.min(ctx.code.len());
        let last = b.stmts(lo, hi, first, true, exit);
        b.link(last, exit);
        Cfg { blocks: b.blocks, entry, exit }
    }

    /// Reverse-post-order-ish visit order: block indices reachable from
    /// the entry, breadth-first. Deterministic.
    pub fn order(&self) -> Vec<usize> {
        let mut seen = vec![false; self.blocks.len()];
        let mut queue = std::collections::VecDeque::from([self.entry]);
        seen[self.entry] = true;
        let mut out = Vec::new();
        while let Some(i) = queue.pop_front() {
            out.push(i);
            for &s in &self.blocks[i].succs {
                if !seen[s] {
                    seen[s] = true;
                    queue.push_back(s);
                }
            }
        }
        out
    }
}

struct Builder<'a, 's> {
    ctx: &'a FileContext<'s>,
    blocks: Vec<Block>,
}

impl Builder<'_, '_> {
    fn txt(&self, c: usize) -> &str {
        self.ctx.code_text(c)
    }

    fn new_block(&mut self, kind: BlockKind) -> usize {
        self.blocks.push(Block { kind, stmts: Vec::new(), succs: Vec::new() });
        self.blocks.len() - 1
    }

    fn link(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn push(&mut self, block: usize, stmt: Stmt) {
        if stmt.lo < stmt.hi {
            self.blocks[block].stmts.push(stmt);
        }
    }

    /// Index of the first `what` at delimiter depth 0 in `[from, hi)`.
    fn find_depth0(&self, from: usize, hi: usize, what: &str) -> Option<usize> {
        let mut depth = 0usize;
        for c in from..hi {
            let t = self.txt(c);
            match t {
                "(" | "[" | "{" => {
                    if depth == 0 && t == what {
                        return Some(c);
                    }
                    depth += 1;
                }
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                _ => {
                    if depth == 0 && t == what {
                        return Some(c);
                    }
                }
            }
        }
        None
    }

    /// Matching `}` for the `{` at `at`, clamped to `hi - 1`.
    fn match_brace(&self, at: usize, hi: usize) -> usize {
        let mut depth = 0usize;
        for c in at..hi {
            match self.txt(c) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return c;
                    }
                }
                _ => {}
            }
        }
        hi.saturating_sub(1).max(at)
    }

    /// Parses the statements of `[lo, hi)` starting in block `cur`;
    /// returns the block control falls out of. `tail_return` marks the
    /// range as one whose trailing expression is the function's return
    /// value.
    fn stmts(
        &mut self,
        lo: usize,
        hi: usize,
        mut cur: usize,
        tail_return: bool,
        exit: usize,
    ) -> usize {
        let mut c = lo;
        while c < hi {
            let start = c;
            let (next_cur, end) = match self.txt(c) {
                ";" => (cur, c + 1),
                "if" => self.parse_if(c, hi, cur, tail_return, exit),
                "match" => self.parse_match(c, hi, cur, tail_return, exit),
                "for" => self.parse_for(c, hi, cur, exit),
                "while" => self.parse_while(c, hi, cur, exit),
                "loop" => self.parse_loop(c, hi, cur, exit),
                "{" => {
                    let cb = self.match_brace(c, hi);
                    let is_tail = tail_return && cb + 1 >= hi;
                    let b = self.stmts(c + 1, cb, cur, is_tail, exit);
                    (b, cb + 1)
                }
                "unsafe" if self.txt(c + 1) == "{" => {
                    let cb = self.match_brace(c + 1, hi);
                    let is_tail = tail_return && cb + 1 >= hi;
                    let b = self.stmts(c + 2, cb, cur, is_tail, exit);
                    (b, cb + 1)
                }
                _ => self.parse_simple(c, hi, cur, tail_return, exit),
            };
            cur = next_cur;
            c = end.max(start + 1);
        }
        cur
    }

    /// A `let`/`return`/expression statement ending at the next depth-0
    /// `;` (or at `hi` for the trailing tail expression).
    fn parse_simple(
        &mut self,
        c: usize,
        hi: usize,
        cur: usize,
        tail_return: bool,
        exit: usize,
    ) -> (usize, usize) {
        let head = self.txt(c);
        match self.find_depth0(c, hi, ";") {
            Some(s) => {
                let kind = match head {
                    "let" => StmtKind::Let,
                    "return" => StmtKind::Return,
                    _ => StmtKind::Expr,
                };
                let is_return = kind == StmtKind::Return;
                self.push(cur, Stmt { lo: c, hi: s, kind });
                if is_return {
                    // Control leaves through the exit; following
                    // statements land in a fresh (unreachable) block.
                    self.link(cur, exit);
                    let dead = self.new_block(BlockKind::Basic);
                    return (dead, s + 1);
                }
                (cur, s + 1)
            }
            None => {
                let kind = if head == "return" {
                    StmtKind::Return
                } else if head == "let" {
                    StmtKind::Let
                } else if tail_return {
                    StmtKind::Tail
                } else {
                    StmtKind::Expr
                };
                self.push(cur, Stmt { lo: c, hi, kind });
                (cur, hi)
            }
        }
    }

    /// Exclusive end of the `if`/`else if`/`else` chain starting at `c`.
    fn if_end(&self, mut c: usize, hi: usize) -> usize {
        loop {
            let Some(ob) = self.find_depth0(c + 1, hi, "{") else { return hi };
            let cb = self.match_brace(ob, hi);
            let e = cb + 1;
            if e < hi && self.txt(e) == "else" {
                if self.txt(e + 1) == "if" {
                    c = e + 1;
                    continue;
                }
                if self.txt(e + 1) == "{" {
                    let cb2 = self.match_brace(e + 1, hi);
                    return (cb2 + 1).min(hi);
                }
                return (e + 1).min(hi);
            }
            return e.min(hi);
        }
    }

    fn parse_if(
        &mut self,
        c: usize,
        hi: usize,
        cur: usize,
        tail_return: bool,
        exit: usize,
    ) -> (usize, usize) {
        let end = self.if_end(c, hi);
        let is_tail = tail_return && end >= hi;
        let join = self.new_block(BlockKind::Basic);
        let mut c2 = c;
        let mut head = cur;
        loop {
            let Some(ob) = self.find_depth0(c2 + 1, hi, "{") else {
                return self.unknown(c2, hi, head, join);
            };
            let cb = self.match_brace(ob, hi);
            let then_entry = self.new_block(BlockKind::Basic);
            self.link(head, then_entry);
            // `if let <pat> = <expr>` binds in the then-branch; a plain
            // condition is just an evaluated expression.
            if self.txt(c2 + 1) == "let" {
                if let Some(eq) = self.find_depth0(c2 + 2, ob, "=") {
                    self.push(
                        then_entry,
                        Stmt {
                            lo: c2 + 2,
                            hi: ob,
                            kind: StmtKind::BindFrom {
                                pat: (c2 + 2, eq),
                                expr: (eq + 1, ob),
                                iterates: false,
                            },
                        },
                    );
                }
            } else {
                self.push(head, Stmt { lo: c2 + 1, hi: ob, kind: StmtKind::Expr });
            }
            let then_exit = self.stmts(ob + 1, cb, then_entry, is_tail, exit);
            self.link(then_exit, join);
            let after = cb + 1;
            if after < hi && self.txt(after) == "else" {
                if self.txt(after + 1) == "if" {
                    let elif = self.new_block(BlockKind::Basic);
                    self.link(head, elif);
                    head = elif;
                    c2 = after + 1;
                    continue;
                }
                if self.txt(after + 1) == "{" {
                    let cb2 = self.match_brace(after + 1, hi);
                    let else_entry = self.new_block(BlockKind::Basic);
                    self.link(head, else_entry);
                    let else_exit = self.stmts(after + 2, cb2, else_entry, is_tail, exit);
                    self.link(else_exit, join);
                    return (join, (cb2 + 1).min(hi));
                }
                self.link(head, join);
                return (join, (after + 1).min(hi));
            }
            self.link(head, join);
            return (join, after.min(hi));
        }
    }

    fn parse_match(
        &mut self,
        c: usize,
        hi: usize,
        cur: usize,
        tail_return: bool,
        exit: usize,
    ) -> (usize, usize) {
        let join = self.new_block(BlockKind::Basic);
        let Some(ob) = self.find_depth0(c + 1, hi, "{") else {
            return self.unknown(c, hi, cur, join);
        };
        let scrutinee = (c + 1, ob);
        self.push(cur, Stmt { lo: c + 1, hi: ob, kind: StmtKind::Expr });
        let cb = self.match_brace(ob, hi);
        let end = (cb + 1).min(hi);
        let is_tail = tail_return && end >= hi;
        let mut p = ob + 1;
        let mut arms = 0usize;
        while p < cb {
            let Some(arrow) = self.find_depth0(p, cb, "=>") else { break };
            arms += 1;
            let pat = (p, arrow);
            let arm = self.new_block(BlockKind::Basic);
            self.link(cur, arm);
            self.push(
                arm,
                Stmt {
                    lo: pat.0,
                    hi: pat.1,
                    kind: StmtKind::BindFrom { pat, expr: scrutinee, iterates: false },
                },
            );
            let arm_exit;
            if self.txt(arrow + 1) == "{" {
                let ab = self.match_brace(arrow + 1, cb);
                arm_exit = self.stmts(arrow + 2, ab, arm, is_tail, exit);
                p = if self.txt(ab + 1) == "," { ab + 2 } else { ab + 1 };
            } else {
                let aend = self.find_depth0(arrow + 1, cb, ",").unwrap_or(cb);
                arm_exit = self.stmts(arrow + 1, aend, arm, is_tail, exit);
                p = aend + 1;
            }
            self.link(arm_exit, join);
        }
        if arms == 0 {
            // No arms parsed: fall through so the join is reachable.
            self.link(cur, join);
        }
        (join, end)
    }

    fn parse_for(&mut self, c: usize, hi: usize, cur: usize, exit: usize) -> (usize, usize) {
        let brace_guard = self.find_depth0(c + 1, hi, "{").unwrap_or(hi);
        let Some(inpos) = self.find_depth0(c + 1, brace_guard, "in") else {
            let join = self.new_block(BlockKind::Basic);
            return self.unknown(c, hi, cur, join);
        };
        let Some(ob) = self.find_depth0(inpos + 1, hi, "{") else {
            let join = self.new_block(BlockKind::Basic);
            return self.unknown(c, hi, cur, join);
        };
        let cb = self.match_brace(ob, hi);
        let head = self.new_block(BlockKind::LoopHead);
        self.link(cur, head);
        self.push(
            head,
            Stmt {
                lo: c + 1,
                hi: ob,
                kind: StmtKind::BindFrom {
                    pat: (c + 1, inpos),
                    expr: (inpos + 1, ob),
                    iterates: true,
                },
            },
        );
        let body = self.new_block(BlockKind::Basic);
        self.link(head, body);
        let body_exit = self.stmts(ob + 1, cb, body, false, exit);
        self.link(body_exit, head);
        let after = self.new_block(BlockKind::Basic);
        self.link(head, after);
        (after, (cb + 1).min(hi))
    }

    fn parse_while(&mut self, c: usize, hi: usize, cur: usize, exit: usize) -> (usize, usize) {
        let Some(ob) = self.find_depth0(c + 1, hi, "{") else {
            let join = self.new_block(BlockKind::Basic);
            return self.unknown(c, hi, cur, join);
        };
        let cb = self.match_brace(ob, hi);
        let head = self.new_block(BlockKind::LoopHead);
        self.link(cur, head);
        let body = self.new_block(BlockKind::Basic);
        self.link(head, body);
        if self.txt(c + 1) == "let" {
            // `while let <pat> = <expr>`: the binding is live in the body.
            if let Some(eq) = self.find_depth0(c + 2, ob, "=") {
                self.push(
                    body,
                    Stmt {
                        lo: c + 2,
                        hi: ob,
                        kind: StmtKind::BindFrom {
                            pat: (c + 2, eq),
                            expr: (eq + 1, ob),
                            iterates: false,
                        },
                    },
                );
            }
        } else {
            self.push(head, Stmt { lo: c + 1, hi: ob, kind: StmtKind::Expr });
        }
        let body_exit = self.stmts(ob + 1, cb, body, false, exit);
        self.link(body_exit, head);
        let after = self.new_block(BlockKind::Basic);
        self.link(head, after);
        (after, (cb + 1).min(hi))
    }

    fn parse_loop(&mut self, c: usize, hi: usize, cur: usize, exit: usize) -> (usize, usize) {
        let Some(ob) = self.find_depth0(c + 1, hi, "{") else {
            let join = self.new_block(BlockKind::Basic);
            return self.unknown(c, hi, cur, join);
        };
        let cb = self.match_brace(ob, hi);
        let head = self.new_block(BlockKind::LoopHead);
        self.link(cur, head);
        let body = self.new_block(BlockKind::Basic);
        self.link(head, body);
        let body_exit = self.stmts(ob + 1, cb, body, false, exit);
        self.link(body_exit, head);
        // `break` values and infinite loops are over-approximated with an
        // unconditional exit edge.
        let after = self.new_block(BlockKind::Basic);
        self.link(head, after);
        (after, (cb + 1).min(hi))
    }

    /// Recovery: salvage `[c, …)` up to the next depth-0 `;` (or `hi`)
    /// into an [`BlockKind::Unknown`] block and continue from `join`.
    fn unknown(&mut self, c: usize, hi: usize, cur: usize, join: usize) -> (usize, usize) {
        let (stmt_hi, end) = match self.find_depth0(c, hi, ";") {
            Some(s) => (s, s + 1),
            None => (hi, hi),
        };
        let ub = self.new_block(BlockKind::Unknown);
        self.link(cur, ub);
        self.push(ub, Stmt { lo: c, hi: stmt_hi, kind: StmtKind::Expr });
        self.link(ub, join);
        (join, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileRole;

    fn cfg_of(body_src: &str) -> (Cfg, FileContext<'static>) {
        let src = Box::leak(format!("fn f() {{ {body_src} }}").into_boxed_str());
        let ctx = FileContext::new("crates/x/src/a.rs", src, FileRole::Library);
        let tree = crate::parser::parse_items(src, &ctx.tokens, &ctx.code);
        let (open, close) = tree.items[0].body.expect("fn body");
        (Cfg::build(&ctx, open, close), ctx)
    }

    fn kinds(cfg: &Cfg) -> Vec<StmtKind> {
        cfg.order()
            .into_iter()
            .flat_map(|b| cfg.blocks[b].stmts.iter().map(|s| s.kind.clone()))
            .collect()
    }

    #[test]
    fn straight_line_statements_split() {
        let (cfg, _) = cfg_of("let a = 1; b(a); return a;");
        let ks = kinds(&cfg);
        assert_eq!(ks, vec![StmtKind::Let, StmtKind::Expr, StmtKind::Return]);
    }

    #[test]
    fn tail_expression_is_marked() {
        let (cfg, _) = cfg_of("let a = 1; a + 1");
        assert!(kinds(&cfg).contains(&StmtKind::Tail));
    }

    #[test]
    fn if_else_branches_and_joins() {
        let (cfg, _) = cfg_of("if c { a(); } else { b(); } d();");
        // entry, exit, first, join, then, else = 6 blocks.
        assert!(cfg.blocks.len() >= 6);
        // d() executes after the join: the join block (or a successor)
        // holds an Expr statement containing d.
        assert!(kinds(&cfg).len() >= 4, "cond + 2 branches + d()");
    }

    #[test]
    fn tail_if_marks_branch_tails() {
        let (cfg, _) = cfg_of("if c { a } else { b }");
        let tails = kinds(&cfg).into_iter().filter(|k| *k == StmtKind::Tail).count();
        assert_eq!(tails, 2, "both branch tails are return values");
    }

    #[test]
    fn non_tail_if_has_no_tails() {
        let (cfg, _) = cfg_of("if c { a() } else { b() } z();");
        let tails = kinds(&cfg).into_iter().filter(|k| *k == StmtKind::Tail).count();
        assert_eq!(tails, 0);
    }

    #[test]
    fn for_loop_has_back_edge_and_binding() {
        let (cfg, _) = cfg_of("for x in xs { use_it(x); }");
        let head =
            cfg.blocks.iter().position(|b| b.kind == BlockKind::LoopHead).expect("loop head block");
        // Some block loops back to the head.
        assert!(
            (0..cfg.blocks.len()).any(|i| i != head && cfg.blocks[i].succs.contains(&head)),
            "back edge"
        );
        assert!(kinds(&cfg).iter().any(|k| matches!(k, StmtKind::BindFrom { .. })));
    }

    #[test]
    fn match_arms_bind_from_scrutinee() {
        let (cfg, _) = cfg_of("match v { Some(x) => { a(x); } None => {} }");
        let binds =
            kinds(&cfg).into_iter().filter(|k| matches!(k, StmtKind::BindFrom { .. })).count();
        assert_eq!(binds, 2, "one binding statement per arm");
    }

    #[test]
    fn return_cuts_the_block() {
        let (cfg, _) = cfg_of("if c { return 1; } after();");
        // The statement after `return` is in a block that is still
        // reachable via the non-taken branch.
        assert!(kinds(&cfg).contains(&StmtKind::Return));
    }

    #[test]
    fn malformed_constructs_recover() {
        // `if` with no block: salvaged as Unknown, later statements kept.
        let (cfg, _) = cfg_of("if c; let a = 1;");
        assert!(cfg.blocks.iter().any(|b| b.kind == BlockKind::Unknown));
        assert!(kinds(&cfg).contains(&StmtKind::Let), "recovery keeps later statements");
    }

    #[test]
    fn builder_is_total_on_garbage() {
        // Unbalanced delimiters and stray arrows must not hang or panic.
        let (cfg, _) = cfg_of("match { => , } ( [ while");
        assert!(!cfg.blocks.is_empty());
    }

    #[test]
    fn while_let_binds_in_body() {
        let (cfg, _) = cfg_of("while let Some(x) = it.next() { go(x); }");
        assert!(kinds(&cfg).iter().any(|k| matches!(k, StmtKind::BindFrom { .. })));
    }
}
