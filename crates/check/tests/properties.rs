//! Property tests for the input validator: shipped inputs stay clean, and
//! injected corruptions trigger exactly the rule written for them.

use catalyze::basis::Basis;
use catalyze_cat::RunnerConfig;
use catalyze_check::shipped::{shipped_basis, shipped_domains};
use catalyze_check::{check_basis, check_preset_file, check_presets, Severity};
use catalyze_events::{
    EventCatalog, EventDomain, EventInfo, EventName, Preset, PresetTable, PresetTerm,
};
use proptest::prelude::*;

fn domain_strategy() -> impl Strategy<Value = &'static str> {
    (0..6usize).prop_map(|i| shipped_domains()[i])
}

fn rules(ds: &[catalyze_check::Diagnostic]) -> Vec<String> {
    ds.iter().map(|d| d.rule.clone()).collect()
}

proptest! {
    /// Every shipped basis passes the basis lints with zero errors, for
    /// every domain.
    #[test]
    fn shipped_bases_produce_zero_errors(domain in domain_strategy()) {
        let cfg = RunnerConfig::default_sim();
        let (basis, expected_rows) = shipped_basis(domain, &cfg).expect("shipped domain");
        let ds = check_basis(domain, &basis, Some(expected_rows));
        let errors: Vec<_> = ds.iter().filter(|d| d.severity == Severity::Error).collect();
        prop_assert!(errors.is_empty(), "{domain}: {errors:?}");
    }

    /// Duplicating any column of a shipped basis triggers B005 (identical
    /// columns) — the corruption is caught no matter which column.
    #[test]
    fn duplicated_column_is_caught(domain in domain_strategy(), pick in 0.0f64..1.0) {
        let cfg = RunnerConfig::default_sim();
        let (basis, _) = shipped_basis(domain, &cfg).expect("shipped domain");
        let dim = basis.matrix.cols();
        let src = ((pick * dim as f64) as usize).min(dim - 1);
        // Overwrite a different column with a copy of `src`.
        let dst = (src + 1) % dim;
        let mut cols: Vec<Vec<f64>> = (0..dim).map(|j| basis.matrix.col(j).to_vec()).collect();
        cols[dst] = cols[src].clone();
        let corrupted = Basis {
            labels: basis.labels.clone(),
            matrix: catalyze_linalg::Matrix::from_columns(&cols).expect("same shape"),
        };
        let ds = check_basis(domain, &corrupted, None);
        prop_assert!(rules(&ds).contains(&"B005".to_string()), "{domain} src={src}: {ds:?}");
    }

    /// Dropping any row of a shipped basis breaks the declared row count
    /// and triggers B006.
    #[test]
    fn dropped_row_is_caught(domain in domain_strategy(), pick in 0.0f64..1.0) {
        let cfg = RunnerConfig::default_sim();
        let (basis, expected_rows) = shipped_basis(domain, &cfg).expect("shipped domain");
        let rows = basis.matrix.rows();
        let drop = ((pick * rows as f64) as usize).min(rows - 1);
        let cols: Vec<Vec<f64>> = (0..basis.matrix.cols())
            .map(|j| {
                basis
                    .matrix
                    .col(j)
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != drop)
                    .map(|(_, &v)| v)
                    .collect()
            })
            .collect();
        let corrupted = Basis {
            labels: basis.labels.clone(),
            matrix: catalyze_linalg::Matrix::from_columns(&cols).expect("same shape"),
        };
        let ds = check_basis(domain, &corrupted, Some(expected_rows));
        prop_assert!(rules(&ds).contains(&"B006".to_string()), "{domain} drop={drop}: {ds:?}");
    }

    /// A preset whose term references an event missing from the catalog is
    /// always caught as C004, whatever the event name looks like.
    #[test]
    fn dangling_preset_event_is_caught(base in "[A-Z][A-Z_]{2,18}", coeff in 1.0f64..16.0) {
        let catalog = {
            let mut c = EventCatalog::new();
            c.add(EventInfo {
                name: EventName::cpu("PRESENT_EVENT"),
                description: "the only real event".into(),
                domain: EventDomain::Other,
            })
            .expect("unique");
            c
        };
        let dangling = EventName::cpu(format!("MISSING_{base}"));
        let table = PresetTable {
            title: "t".into(),
            presets: vec![Preset {
                metric: "M".into(),
                terms: vec![
                    PresetTerm { coefficient: coeff, event: EventName::cpu("PRESENT_EVENT") },
                    PresetTerm { coefficient: coeff, event: dangling },
                ],
                error: 1e-16,
            }],
        };
        let ds = check_presets("t", &table, &catalog);
        prop_assert_eq!(&rules(&ds), &vec!["C004".to_string()], "{:?}", ds);
    }

    /// Round-tripping an arbitrary valid preset table through the PAPI file
    /// format never invents diagnostics: what was clean stays clean.
    #[test]
    fn papi_round_trip_stays_clean(
        n_terms in 1usize..5,
        coeffs in proptest::collection::vec(-8.0f64..8.0, 5),
    ) {
        let mut catalog = EventCatalog::new();
        let mut terms = Vec::new();
        for (i, &c) in coeffs.iter().enumerate().take(n_terms) {
            let name = EventName::cpu(format!("EV_{i}"));
            catalog
                .add(EventInfo {
                    name: name.clone(),
                    description: format!("event {i}"),
                    domain: EventDomain::Other,
                })
                .expect("unique");
            // A coefficient inside C005's epsilon would (correctly) warn;
            // keep the generated table in the clean regime.
            prop_assume!(c.abs() >= 1e-6);
            terms.push(PresetTerm { coefficient: c, event: name });
        }
        let table = PresetTable {
            title: "round-trip".into(),
            presets: vec![Preset { metric: "Generated Metric".into(), terms, error: 1e-16 }],
        };
        prop_assert!(check_presets("t", &table, &catalog).is_empty());
        let text = catalyze_events::to_papi_format("prop-sim", &table);
        let ds = check_preset_file("t", &text, &catalog);
        prop_assert!(ds.is_empty(), "{:?}", ds);
    }
}
