//! Runs every lint over the inputs this workspace ships: the six domain
//! bases (with row counts cross-checked against the benchmark kernel
//! spaces in `catalyze-cat`), the three simulated event catalogs, and the
//! six per-domain pipeline configurations.
//!
//! This is what `catalyze check` runs by default, and what CI runs to keep
//! the shipped configuration honest.

use crate::basis::check_basis;
use crate::config::check_config;
use crate::diag::Report;
use crate::events::check_catalog;
use catalyze::basis::{self, Basis, CacheRegion};
use catalyze::pipeline::AnalysisConfig;
use catalyze_cat::{branch, dcache, dstore, dtlb, flops_cpu, flops_gpu, RunnerConfig};
use catalyze_sim::{mi250x_like, sapphire_rapids_like, zen_like};

/// The analysis domains this workspace ships inputs for.
pub fn shipped_domains() -> Vec<&'static str> {
    vec!["cpu-flops", "branch", "dcache", "gpu-flops", "dtlb", "dstore"]
}

/// The shipped expectation basis for one domain, plus the measurement-point
/// count its benchmark kernel space declares. Returns `None` for unknown
/// domains.
pub fn shipped_basis(domain: &str, cfg: &RunnerConfig) -> Option<(Basis, usize)> {
    match domain {
        // The FLOPs benchmarks run every kernel at 3 vector lengths.
        "cpu-flops" => Some((basis::cpu_flops_basis(), flops_cpu::kernel_space().len() * 3)),
        "branch" => Some((basis::branch_basis(), branch::kernel_space().len())),
        "gpu-flops" => Some((basis::gpu_flops_basis(), flops_gpu::kernel_space().len() * 3)),
        "dcache" => {
            let regions: Vec<CacheRegion> =
                dcache::point_regions(&cfg.core.hierarchy).into_iter().map(cache_region).collect();
            Some((basis::dcache_basis(&regions), dcache::sweep(&cfg.core.hierarchy).len()))
        }
        "dstore" => {
            let regions: Vec<CacheRegion> =
                dstore::point_regions(&cfg.core.hierarchy).into_iter().map(store_region).collect();
            Some((basis::dstore_basis(&regions), dstore::sweep(&cfg.core.hierarchy).len()))
        }
        "dtlb" => Some((
            basis::dtlb_basis(&dtlb::point_hit_regions(&cfg.core.tlb)),
            dtlb::sweep(&cfg.core.tlb).len(),
        )),
        _ => None,
    }
}

/// The shipped pipeline configuration for one domain.
pub fn shipped_config(domain: &str) -> Option<AnalysisConfig> {
    match domain {
        "cpu-flops" => Some(AnalysisConfig::cpu_flops()),
        "branch" => Some(AnalysisConfig::branch()),
        "dcache" => Some(AnalysisConfig::dcache()),
        "gpu-flops" => Some(AnalysisConfig::gpu_flops()),
        "dtlb" => Some(AnalysisConfig::dtlb()),
        "dstore" => Some(AnalysisConfig::dstore()),
        _ => None,
    }
}

fn cache_region(r: dcache::Region) -> CacheRegion {
    match r {
        dcache::Region::L1 => CacheRegion::L1,
        dcache::Region::L2 => CacheRegion::L2,
        dcache::Region::L3 => CacheRegion::L3,
        dcache::Region::Memory => CacheRegion::Memory,
    }
}

fn store_region(r: dstore::Region) -> CacheRegion {
    match r {
        dstore::Region::L1 => CacheRegion::L1,
        dstore::Region::L2 => CacheRegion::L2,
        dstore::Region::L3 => CacheRegion::L3,
        dstore::Region::Memory => CacheRegion::Memory,
    }
}

/// Checks every shipped input: all domain bases and configurations, and the
/// three event catalogs (`spr`, `zen`, and the 8-device GPU inventory).
pub fn check_shipped() -> Report {
    let cfg = RunnerConfig::default_sim();
    let mut report = Report::new();

    for domain in shipped_domains() {
        if let Some((basis, expected_rows)) = shipped_basis(domain, &cfg) {
            report.extend(check_basis(domain, &basis, Some(expected_rows)));
        }
        if let Some(acfg) = shipped_config(domain) {
            report.extend(check_config(domain, &acfg));
        }
    }

    report.extend(check_catalog("spr", sapphire_rapids_like().catalog()));
    report.extend(check_catalog("zen", zen_like().catalog()));
    report.extend(check_catalog("gpu", mi250x_like(cfg.gpu_devices).catalog()));

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_inputs_have_no_errors() {
        let report = check_shipped();
        assert!(!report.has_errors(), "shipped inputs must be clean:\n{}", report.render_human());
    }

    #[test]
    fn every_domain_has_basis_and_config() {
        let cfg = RunnerConfig::default_sim();
        for domain in shipped_domains() {
            assert!(shipped_basis(domain, &cfg).is_some(), "{domain} basis");
            assert!(shipped_config(domain).is_some(), "{domain} config");
        }
        assert!(shipped_basis("nope", &cfg).is_none());
    }

    #[test]
    fn basis_rows_match_kernel_spaces() {
        let cfg = RunnerConfig::default_sim();
        for domain in shipped_domains() {
            let (basis, expected) = shipped_basis(domain, &cfg).expect("known domain");
            assert_eq!(basis.matrix.rows(), expected, "{domain}");
        }
    }
}
