//! The structured diagnostic type shared by input validation
//! (`catalyze check`) and the repository linter (`cargo xtask lint`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is. `Error` fails the run (nonzero exit code);
/// `Warning` and `Note` are informational.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational observation.
    Note,
    /// Suspicious but not necessarily wrong.
    Warning,
    /// A violated invariant; the checked input must not be used.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A machine-readable source span: half-open byte range `[start, end)`
/// into the linted file, plus the 1-based line and column (in characters)
/// of `start`. Produced by token-level linters (`cargo xtask lint`);
/// data-validation linters (`catalyze check`) have no source text and
/// leave the span empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first flagged byte.
    pub start: usize,
    /// Byte offset one past the last flagged byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: usize,
    /// 1-based column (in characters, not bytes) of `start`.
    pub column: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// One finding: a rule id, a severity, where it was found, what is wrong,
/// and optionally how to fix it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule identifier (`B004`, `C001`, `P002`, `R001`, …).
    pub rule: String,
    /// Finding severity.
    pub severity: Severity,
    /// Human-oriented location: `basis cpu-flops, column 7 (D256)` or
    /// `crates/linalg/src/svd.rs:142:9`.
    pub location: String,
    /// What is wrong.
    pub message: String,
    /// Optional remediation hint.
    pub suggestion: Option<String>,
    /// Precise source span, when the finding points into a source file
    /// (serialized as `null` otherwise).
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Builds a diagnostic without a suggestion.
    pub fn new(
        rule: &str,
        severity: Severity,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule: rule.to_string(),
            severity,
            location: location.into(),
            message: message.into(),
            suggestion: None,
            span: None,
        }
    }

    /// Attaches a remediation hint.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Attaches a precise source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}: {}", self.severity, self.rule, self.location, self.message)?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  help: {s}")?;
        }
        Ok(())
    }
}

/// A collection of findings plus summary helpers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// All findings, in emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Adds many findings.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// Number of `Error` findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of `Warning` findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Whether any finding is an `Error`.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// All findings carrying the given rule id.
    pub fn with_rule(&self, rule: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// Human-readable rendering: one finding per line (plus help lines),
    /// then a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} finding(s) total\n",
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len()
        ));
        out
    }

    /// SARIF 2.1.0 rendering — the static-analysis interchange format
    /// consumed by code-scanning UIs. One run, one driver named
    /// `tool_name`, one `results` entry per diagnostic. Findings with a
    /// [`Span`] carry a `physicalLocation` (the file part of the location
    /// string plus a region with line/column and byte offsets); span-less
    /// findings (data validation) carry a `logicalLocations` entry with
    /// the human-oriented location text instead.
    pub fn render_sarif(&self, tool_name: &str) -> String {
        self.render_sarif_aliased(tool_name, &[])
    }

    /// [`Self::render_sarif`] with rule-id aliasing: each `(id, old_ids)`
    /// pair adds a SARIF `deprecatedIds` list to that rule's descriptor,
    /// which is how code-scanning UIs migrate findings across a rule
    /// rename (e.g. the linter's R006 → R013) without dropping history.
    pub fn render_sarif_aliased(&self, tool_name: &str, aliases: &[(&str, &[&str])]) -> String {
        use serde_json::Value;
        let s = |t: &str| Value::Str(t.to_string());
        let n = |v: usize| Value::U64(v as u64);
        let obj = |pairs: Vec<(&str, Value)>| {
            Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };

        let mut rule_ids: Vec<&str> = Vec::new();
        let mut results = Vec::new();
        for d in &self.diagnostics {
            if !rule_ids.contains(&d.rule.as_str()) {
                rule_ids.push(&d.rule);
            }
            let level = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
                Severity::Note => "note",
            };
            let mut message = d.message.clone();
            if let Some(sugg) = &d.suggestion {
                message.push_str("\nhelp: ");
                message.push_str(sugg);
            }
            let location = match d.span {
                Some(span) => {
                    // `path:line:col` — strip the positional suffix to get
                    // the artifact URI.
                    let uri = d
                        .location
                        .strip_suffix(&format!(":{}:{}", span.line, span.column))
                        .unwrap_or(&d.location);
                    obj(vec![(
                        "physicalLocation",
                        obj(vec![
                            ("artifactLocation", obj(vec![("uri", s(uri))])),
                            (
                                "region",
                                obj(vec![
                                    ("startLine", n(span.line)),
                                    ("startColumn", n(span.column)),
                                    ("charOffset", n(span.start)),
                                    ("charLength", n(span.end.saturating_sub(span.start))),
                                ]),
                            ),
                        ]),
                    )])
                }
                None => obj(vec![(
                    "logicalLocations",
                    Value::Array(vec![obj(vec![("fullyQualifiedName", s(&d.location))])]),
                )]),
            };
            results.push(obj(vec![
                ("ruleId", s(&d.rule)),
                ("level", s(level)),
                ("message", obj(vec![("text", s(&message))])),
                ("locations", Value::Array(vec![location])),
            ]));
        }
        let rules: Vec<Value> = rule_ids
            .iter()
            .map(|id| {
                let mut fields = vec![
                    ("id", s(id)),
                    ("shortDescription", obj(vec![("text", s(&format!("{tool_name} rule {id}")))])),
                ];
                if let Some((_, old)) = aliases.iter().find(|(new, _)| new == id) {
                    fields
                        .push(("deprecatedIds", Value::Array(old.iter().map(|o| s(o)).collect())));
                }
                obj(fields)
            })
            .collect();
        let sarif = obj(vec![
            ("$schema", s("https://json.schemastore.org/sarif-2.1.0.json")),
            ("version", s("2.1.0")),
            (
                "runs",
                Value::Array(vec![obj(vec![
                    (
                        "tool",
                        obj(vec![(
                            "driver",
                            obj(vec![("name", s(tool_name)), ("rules", Value::Array(rules))]),
                        )]),
                    ),
                    ("results", Value::Array(results)),
                ])]),
            ),
        ]);
        serde_json::to_string_pretty(&sarif).unwrap_or_default()
    }

    /// JSON rendering (stable shape: `{"diagnostics": [...], "errors": n,
    /// "warnings": n}`).
    pub fn render_json(&self) -> String {
        let diagnostics = serde_json::to_value(self).unwrap_or(serde_json::Value::Null);
        let mut obj = match diagnostics {
            serde_json::Value::Object(pairs) => pairs,
            _ => Vec::new(),
        };
        let count = |n: usize| serde_json::to_value(&n).unwrap_or(serde_json::Value::Null);
        obj.push(("errors".to_string(), count(self.error_count())));
        obj.push(("warnings".to_string(), count(self.warning_count())));
        serde_json::to_string_pretty(&serde_json::Value::Object(obj)).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_prints() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn report_counts_and_render() {
        let mut r = Report::new();
        r.push(Diagnostic::new("B001", Severity::Error, "basis x, column 1", "duplicate label"));
        r.push(
            Diagnostic::new("B007", Severity::Warning, "basis x", "ill-conditioned")
                .with_suggestion("rescale the expectations"),
        );
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert_eq!(r.with_rule("B001").len(), 1);
        let human = r.render_human();
        assert!(human.contains("error[B001]"));
        assert!(human.contains("help: rescale"));
        assert!(human.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn json_roundtrip() {
        let mut r = Report::new();
        r.push(Diagnostic::new("C004", Severity::Error, "preset m, term 0", "unknown event"));
        let json = r.render_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert_eq!(v["errors"].as_u64(), Some(1));
        assert_eq!(v["diagnostics"][0]["rule"].as_str(), Some("C004"));
        assert_eq!(v["diagnostics"][0]["severity"].as_str(), Some("Error"));
        // Unknown summary keys are ignored on the way back in.
        let back: Report = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, r);
    }

    #[test]
    fn sarif_rendering_has_the_standard_shape() {
        let mut r = Report::new();
        r.push(
            Diagnostic::new("R001", Severity::Error, "crates/x/src/lib.rs:3:5", "boom")
                .with_suggestion("do not boom")
                .with_span(Span { start: 40, end: 49, line: 3, column: 5 }),
        );
        r.push(Diagnostic::new("B001", Severity::Warning, "basis x, column 1", "duplicate"));
        let sarif = r.render_sarif("xtask-lint");
        let v: serde_json::Value = serde_json::from_str(&sarif).expect("valid json");
        assert_eq!(v["version"].as_str(), Some("2.1.0"));
        assert!(v["$schema"].as_str().unwrap_or("").contains("sarif-2.1.0"));
        let run = &v["runs"][0];
        assert_eq!(run["tool"]["driver"]["name"].as_str(), Some("xtask-lint"));
        let rules = run["tool"]["driver"]["rules"].as_array().expect("rules array");
        assert_eq!(rules.len(), 2, "one rule entry per distinct rule id");
        assert_eq!(rules[0]["id"].as_str(), Some("R001"));
        let results = run["results"].as_array().expect("results array");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0]["ruleId"].as_str(), Some("R001"));
        assert_eq!(results[0]["level"].as_str(), Some("error"));
        assert!(results[0]["message"]["text"].as_str().unwrap().contains("help: do not boom"));
        let phys = &results[0]["locations"][0]["physicalLocation"];
        assert_eq!(phys["artifactLocation"]["uri"].as_str(), Some("crates/x/src/lib.rs"));
        assert_eq!(phys["region"]["startLine"].as_u64(), Some(3));
        assert_eq!(phys["region"]["startColumn"].as_u64(), Some(5));
        assert_eq!(phys["region"]["charOffset"].as_u64(), Some(40));
        assert_eq!(phys["region"]["charLength"].as_u64(), Some(9));
        // Span-less diagnostics fall back to a logical location.
        assert_eq!(results[1]["level"].as_str(), Some("warning"));
        let logical = &results[1]["locations"][0]["logicalLocations"][0];
        assert_eq!(logical["fullyQualifiedName"].as_str(), Some("basis x, column 1"));
    }

    #[test]
    fn span_serializes_and_roundtrips() {
        let d = Diagnostic::new("R001", Severity::Error, "crates/x/src/lib.rs:3:5", "boom")
            .with_span(Span { start: 40, end: 49, line: 3, column: 5 });
        assert_eq!(d.span.map(|s| s.to_string()), Some("3:5".to_string()));
        let mut r = Report::new();
        r.push(d.clone());
        let json = r.render_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert_eq!(v["diagnostics"][0]["span"]["start"].as_u64(), Some(40));
        assert_eq!(v["diagnostics"][0]["span"]["line"].as_u64(), Some(3));
        // A span-less diagnostic serializes the field as null, keeping the
        // JSON shape stable for schema validation.
        let mut r2 = Report::new();
        r2.push(Diagnostic::new("B001", Severity::Error, "basis x", "dup"));
        let v2: serde_json::Value = serde_json::from_str(&r2.render_json()).expect("valid json");
        assert_eq!(v2["diagnostics"][0]["span"], serde_json::Value::Null);
        let back: Report = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, r);
    }
}
