//! # catalyze-check
//!
//! Static validation of analysis inputs. The pipeline (`catalyze`) assumes
//! its inputs are well-formed: expectation bases with independent, labeled
//! columns; event catalogs whose names survive a parse round-trip; preset
//! tables whose terms reference real events; stage thresholds inside the
//! ranges the paper validated. This crate checks those assumptions *before*
//! an analysis runs and reports violations as structured [`Diagnostic`]s —
//! the same type the repository linter (`cargo xtask lint`) emits — so both
//! layers render identically, human-readable or as JSON.
//!
//! Rule namespaces: `B…` basis lints, `C…` catalog/preset lints,
//! `P…` pipeline-configuration lints (and `R…`, reserved for the repository
//! linter in `xtask`). Every rule is documented in `DESIGN.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod basis;
pub mod config;
pub mod diag;
pub mod events;
pub mod shipped;

pub use basis::check_basis;
pub use config::check_config;
pub use diag::{Diagnostic, Report, Severity, Span};
pub use events::{check_catalog, check_preset_file, check_presets};
pub use shipped::{check_shipped, shipped_domains};
