//! Basis lints (`B…`): structural and numerical validation of an
//! expectation basis before it is used as the pipeline's coordinate system.
//!
//! | Rule | Severity | Finding |
//! |------|----------|---------|
//! | B001 | Error    | duplicate column label |
//! | B002 | Error    | empty (or whitespace) column label |
//! | B003 | Error    | label count disagrees with matrix width |
//! | B004 | Error    | all-zero expectation column |
//! | B005 | Error    | two identical expectation columns |
//! | B006 | Error    | row count disagrees with the kernel space |
//! | B007 | Error    | numerically rank-deficient basis (SVD) |
//! | B008 | Warning  | condition number above [`CONDITION_LIMIT`] |
//! | B009 | Error    | non-finite entry in the basis matrix |

use crate::diag::{Diagnostic, Severity};
use catalyze::basis::Basis;
use catalyze_linalg::singular_values;

/// Condition-number ceiling above which B008 fires. Least squares in f64
/// loses roughly `log10(cond)` digits; 1e8 leaves half the mantissa.
pub(crate) const CONDITION_LIMIT: f64 = 1e8;

/// Relative tolerance for the SVD rank decision in B007.
pub(crate) const RANK_REL_TOL: f64 = 1e-10;

/// Validates one expectation basis. `name` labels the diagnostics;
/// `expected_rows` is the measurement-point count declared by the
/// benchmark's kernel space, when known.
pub fn check_basis(name: &str, basis: &Basis, expected_rows: Option<usize>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let loc = |detail: String| format!("basis {name}, {detail}");

    // B002 / B001: labels well-formed and unique.
    for (j, label) in basis.labels.iter().enumerate() {
        if label.trim().is_empty() {
            out.push(Diagnostic::new(
                "B002",
                Severity::Error,
                loc(format!("column {j}")),
                "empty expectation label",
            ));
        }
    }
    for (j, label) in basis.labels.iter().enumerate() {
        if let Some(first) = basis.labels[..j].iter().position(|l| l == label) {
            out.push(
                Diagnostic::new(
                    "B001",
                    Severity::Error,
                    loc(format!("column {j} ({label})")),
                    format!("duplicate label, first used by column {first}"),
                )
                .with_suggestion("every expectation needs a distinct label"),
            );
        }
    }

    // B003: shape consistency between labels and matrix.
    if basis.labels.len() != basis.matrix.cols() {
        out.push(Diagnostic::new(
            "B003",
            Severity::Error,
            loc("shape".to_string()),
            format!("{} labels but {} matrix columns", basis.labels.len(), basis.matrix.cols()),
        ));
        // Column-wise checks below would index out of bounds.
        return out;
    }

    // B009: finite entries.
    if !basis.matrix.all_finite() {
        out.push(Diagnostic::new(
            "B009",
            Severity::Error,
            loc("matrix".to_string()),
            "non-finite entry in the expectation matrix",
        ));
        return out;
    }

    // B004: all-zero columns.
    for j in 0..basis.matrix.cols() {
        // lint: allow(float_cmp): B004 flags columns that are exactly zero; near-zero ones are B007/B008's job
        if basis.matrix.col(j).iter().all(|&v| v == 0.0) {
            out.push(
                Diagnostic::new(
                    "B004",
                    Severity::Error,
                    loc(format!("column {j} ({})", basis.labels[j])),
                    "expectation is identically zero over all points",
                )
                .with_suggestion("drop the column or fix the kernel expectation"),
            );
        }
    }

    // B005: bit-identical columns (scaled duplicates surface as B007).
    for j in 0..basis.matrix.cols() {
        for i in 0..j {
            if basis.matrix.col(i) == basis.matrix.col(j) {
                out.push(
                    Diagnostic::new(
                        "B005",
                        Severity::Error,
                        loc(format!("column {j} ({})", basis.labels[j])),
                        format!("identical to column {i} ({})", basis.labels[i]),
                    )
                    .with_suggestion("duplicated expectations make the basis singular"),
                );
            }
        }
    }

    // B006: row count against the benchmark's declared kernel space.
    if let Some(expected) = expected_rows {
        if basis.matrix.rows() != expected {
            out.push(Diagnostic::new(
                "B006",
                Severity::Error,
                loc("shape".to_string()),
                format!(
                    "{} rows but the kernel space declares {} measurement points",
                    basis.matrix.rows(),
                    expected
                ),
            ));
        }
    }

    // B007 / B008: numerical rank and conditioning. Skip when structural
    // errors already guarantee deficiency (zero/duplicate columns).
    let structurally_singular = out.iter().any(|d| d.rule == "B004" || d.rule == "B005");
    if basis.matrix.rows() >= basis.matrix.cols() && !structurally_singular {
        match singular_values(&basis.matrix) {
            Ok(svd) => {
                let rank = svd.rank(RANK_REL_TOL);
                if rank < basis.matrix.cols() {
                    out.push(Diagnostic::new(
                        "B007",
                        Severity::Error,
                        loc("matrix".to_string()),
                        format!(
                            "numerical rank {rank} below dimension {} (rel tol {RANK_REL_TOL:e})",
                            basis.matrix.cols()
                        ),
                    ));
                } else {
                    let cond = svd.condition_number();
                    if cond > CONDITION_LIMIT {
                        out.push(
                            Diagnostic::new(
                                "B008",
                                Severity::Warning,
                                loc("matrix".to_string()),
                                format!("condition number {cond:.3e} above {CONDITION_LIMIT:e}"),
                            )
                            .with_suggestion(
                                "expectations this correlated make coefficients unstable",
                            ),
                        );
                    }
                }
            }
            Err(e) => out.push(Diagnostic::new(
                "B007",
                Severity::Error,
                loc("matrix".to_string()),
                format!("SVD failed: {e}"),
            )),
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyze_linalg::Matrix;

    fn basis(labels: &[&str], cols: &[Vec<f64>]) -> Basis {
        Basis {
            labels: labels.iter().map(|s| s.to_string()).collect(),
            matrix: Matrix::from_columns(cols).expect("well-formed test matrix"),
        }
    }

    fn rules(ds: &[Diagnostic]) -> Vec<&str> {
        ds.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn clean_basis_has_no_findings() {
        let b = basis(&["a", "b"], &[vec![1.0, 0.0, 2.0], vec![0.0, 1.0, 1.0]]);
        assert!(check_basis("t", &b, Some(3)).is_empty());
    }

    #[test]
    fn duplicate_label_is_b001() {
        let b = basis(&["a", "a"], &[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(rules(&check_basis("t", &b, None)).contains(&"B001"));
    }

    #[test]
    fn empty_label_is_b002() {
        let b = basis(&["a", "  "], &[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(rules(&check_basis("t", &b, None)).contains(&"B002"));
    }

    #[test]
    fn label_shape_mismatch_is_b003() {
        let mut b = basis(&["a", "b"], &[vec![1.0, 0.0], vec![0.0, 1.0]]);
        b.labels.push("c".to_string());
        assert_eq!(rules(&check_basis("t", &b, None)), vec!["B003"]);
    }

    #[test]
    fn zero_column_is_b004() {
        let b = basis(&["a", "z"], &[vec![1.0, 2.0], vec![0.0, 0.0]]);
        assert!(rules(&check_basis("t", &b, None)).contains(&"B004"));
    }

    #[test]
    fn duplicated_column_is_b005() {
        let b = basis(&["a", "b"], &[vec![1.0, 2.0], vec![1.0, 2.0]]);
        assert!(rules(&check_basis("t", &b, None)).contains(&"B005"));
    }

    #[test]
    fn row_count_mismatch_is_b006() {
        let b = basis(&["a"], &[vec![1.0, 2.0, 3.0]]);
        assert!(rules(&check_basis("t", &b, Some(4))).contains(&"B006"));
    }

    #[test]
    fn scaled_duplicate_is_rank_deficient_b007() {
        let b = basis(&["a", "b"], &[vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 6.0]]);
        assert!(rules(&check_basis("t", &b, None)).contains(&"B007"));
    }

    #[test]
    fn non_finite_entry_is_b009() {
        let b = basis(&["a"], &[vec![1.0, f64::NAN]]);
        assert_eq!(rules(&check_basis("t", &b, None)), vec!["B009"]);
    }
}
