//! Pipeline-configuration lints (`P…`): range and consistency checks on
//! [`AnalysisConfig`] thresholds.
//!
//! The paper's pipeline has four thresholded decisions: clustering cut
//! height `tau`, selection score floor `alpha`, representation acceptance,
//! and coefficient rounding / composability. All of them are relative
//! errors or correlations compared against "small" cutoffs; a threshold
//! outside `(0, 0.5]` is outside the regime any of the paper's experiments
//! validated and almost certainly a typo (e.g. a percentage where a
//! fraction was meant).
//!
//! | Rule | Severity | Finding |
//! |------|----------|---------|
//! | P001 | Error    | `tau` outside `(0, 0.5]` |
//! | P002 | Error    | `alpha` outside `(0, 0.5]` |
//! | P003 | Error    | `rounding_tol` outside `(0, 0.5]` |
//! | P004 | Error    | `representation_threshold` or `composability_threshold` outside `(0, 0.5]` |
//! | P005 | Warning  | threshold ordering inconsistent (see [`check_config`]) |
//! | P006 | Error    | non-finite threshold |

use crate::diag::{Diagnostic, Severity};
use catalyze::pipeline::AnalysisConfig;

/// Inclusive upper bound of the validated threshold regime.
pub(crate) const THRESHOLD_MAX: f64 = 0.5;

fn in_range(v: f64) -> bool {
    v > 0.0 && v <= THRESHOLD_MAX
}

/// Validates one pipeline configuration. `name` labels the diagnostics.
///
/// Besides per-field ranges, P005 checks the orderings the stages rely on:
/// a preset accepted as composable must also round-trip through rounding
/// (`composability_threshold <= rounding_tol`), and both must be at most
/// the representation threshold that admitted the metric in the first
/// place. `alpha` above `representation_threshold` would discard metrics
/// the representation stage accepted.
pub fn check_config(name: &str, cfg: &AnalysisConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let fields: [(&str, f64, &str); 5] = [
        ("tau", cfg.tau, "P001"),
        ("alpha", cfg.alpha, "P002"),
        ("rounding_tol", cfg.rounding_tol, "P003"),
        ("representation_threshold", cfg.representation_threshold, "P004"),
        ("composability_threshold", cfg.composability_threshold, "P004"),
    ];

    for (field, value, rule) in fields {
        let loc = format!("config {name}, {field}");
        if !value.is_finite() {
            out.push(Diagnostic::new(
                "P006",
                Severity::Error,
                loc,
                format!("{field} = {value} is not finite"),
            ));
        } else if !in_range(value) {
            out.push(
                Diagnostic::new(
                    rule,
                    Severity::Error,
                    loc,
                    format!("{field} = {value} outside the validated range (0, {THRESHOLD_MAX}]"),
                )
                .with_suggestion("thresholds are fractions, not percentages"),
            );
        }
    }

    // P005: cross-field consistency (only meaningful when ranges hold).
    if out.is_empty() {
        let mut ordering = |lhs: &str, l: f64, rhs: &str, r: f64, why: &str| {
            if l > r {
                out.push(
                    Diagnostic::new(
                        "P005",
                        Severity::Warning,
                        format!("config {name}"),
                        format!("{lhs} ({l}) exceeds {rhs} ({r})"),
                    )
                    .with_suggestion(why),
                );
            }
        };
        ordering(
            "composability_threshold",
            cfg.composability_threshold,
            "rounding_tol",
            cfg.rounding_tol,
            "a composable preset should survive coefficient rounding",
        );
        ordering(
            "rounding_tol",
            cfg.rounding_tol,
            "representation_threshold",
            cfg.representation_threshold,
            "rounding should not cost more error than representation admitted",
        );
        ordering(
            "alpha",
            cfg.alpha,
            "representation_threshold",
            cfg.representation_threshold,
            "selection would discard metrics the representation stage accepted",
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(ds: &[Diagnostic]) -> Vec<&str> {
        ds.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn default_configs_are_clean() {
        for (name, cfg) in [
            ("cpu-flops", AnalysisConfig::cpu_flops()),
            ("branch", AnalysisConfig::branch()),
            ("gpu-flops", AnalysisConfig::gpu_flops()),
            ("dcache", AnalysisConfig::dcache()),
            ("dstore", AnalysisConfig::dstore()),
            ("dtlb", AnalysisConfig::dtlb()),
        ] {
            let ds = check_config(name, &cfg);
            assert!(ds.is_empty(), "{name}: {ds:?}");
        }
    }

    #[test]
    fn bad_tau_is_p001() {
        let cfg = AnalysisConfig { tau: 0.0, ..AnalysisConfig::cpu_flops() };
        assert_eq!(rules(&check_config("t", &cfg)), vec!["P001"]);
    }

    #[test]
    fn bad_alpha_is_p002() {
        let cfg = AnalysisConfig { alpha: 1.5, ..AnalysisConfig::cpu_flops() };
        assert_eq!(rules(&check_config("t", &cfg)), vec!["P002"]);
    }

    #[test]
    fn bad_rounding_tol_is_p003() {
        let cfg = AnalysisConfig { rounding_tol: -0.1, ..AnalysisConfig::cpu_flops() };
        assert_eq!(rules(&check_config("t", &cfg)), vec!["P003"]);
    }

    #[test]
    fn bad_representation_threshold_is_p004() {
        let cfg = AnalysisConfig { representation_threshold: 0.9, ..AnalysisConfig::cpu_flops() };
        assert_eq!(rules(&check_config("t", &cfg)), vec!["P004"]);
    }

    #[test]
    fn nan_threshold_is_p006() {
        let cfg = AnalysisConfig { tau: f64::NAN, ..AnalysisConfig::cpu_flops() };
        assert_eq!(rules(&check_config("t", &cfg)), vec!["P006"]);
    }

    #[test]
    fn inverted_ordering_is_p005() {
        let cfg = AnalysisConfig {
            composability_threshold: 0.3,
            rounding_tol: 0.01,
            ..AnalysisConfig::cpu_flops()
        };
        let ds = check_config("t", &cfg);
        assert!(rules(&ds).contains(&"P005"));
        assert!(ds.iter().all(|d| d.severity == Severity::Warning));
    }
}
